//! Integration tests for the observability layer: the Chrome-trace
//! exporter against the controller's own command trace and the viz
//! timeline, and the bit-identical-results guarantee of probe attachment.

use dramstack::dram::CycleView;
use dramstack::memctrl::{CtrlConfig, MemoryController};
use dramstack::obs::{ChromeTraceHandle, ChromeTraceProbe};
use dramstack::sim::{SimReport, Simulator, SystemConfig};
use dramstack::viz::timeline::command_timeline;
use dramstack::workloads::SyntheticPattern;

/// Drives one controller over a deterministic request mix (row hits, a
/// row conflict, a write and a refresh window) with both the command
/// trace and a Chrome-trace probe attached.
fn driven_controller() -> (MemoryController, ChromeTraceHandle) {
    let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
    ctrl.enable_command_trace();
    let (probe, handle) = ChromeTraceProbe::new(0, 0.8333);
    ctrl.attach_probe(Box::new(probe));

    ctrl.enqueue_read(0x0, 0); // cold miss: ACT + RD
    ctrl.enqueue_read(0x40, 1); // row hit
    ctrl.enqueue_read(1 << 17, 2); // row conflict: PRE + ACT + RD
    ctrl.enqueue_write(0x80); // write to the original row

    let t_refi = ctrl.device().timing().t_refi;
    let t_rfc = ctrl.device().timing().t_rfc;
    let mut view = CycleView::idle(ctrl.total_banks());
    // Run past one refresh interval so a REF lands in the trace too.
    for now in 0..t_refi + 2 * t_rfc {
        ctrl.tick(now, &mut view);
    }
    assert!(ctrl.is_idle(), "deterministic mix must drain");
    (ctrl, handle)
}

#[test]
fn chrome_trace_commands_match_dram_command_trace() {
    let (mut ctrl, handle) = driven_controller();
    let trace = handle.build();
    let golden: Vec<(u64, String)> = ctrl
        .take_command_trace()
        .iter()
        .map(|t| (t.at, t.cmd.kind.to_string()))
        .collect();
    assert!(!golden.is_empty());
    assert_eq!(
        trace.command_sequence(),
        golden,
        "probe saw every command, in issue order"
    );
    assert!(golden.iter().any(|(_, k)| k == "REF"), "refresh captured");
    assert!(
        golden.iter().any(|(_, k)| k == "PRE"),
        "conflict precharge captured"
    );
}

#[test]
fn chrome_trace_json_is_valid_and_spans_nest() {
    let (_ctrl, handle) = driven_controller();
    let trace = handle.build();
    // Valid JSON with the Chrome trace-event envelope.
    let json = trace.to_json();
    let v: serde::Value = serde_json::from_str(&json).expect("exporter emits valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_seq())
        .expect("traceEvents");
    assert!(events.len() > 5);

    // Every read request span fully contains its queued/burst children
    // (matched through args.id, which all request spans carry).
    let spans = trace.spans("request");
    let parents: Vec<_> = spans
        .iter()
        .filter(|(n, ..)| n.starts_with("read"))
        .collect();
    assert!(parents.len() >= 3, "three reads recorded: {spans:?}");
    for (name, start, end, tid) in &spans {
        if name == "queued" || name == "burst" {
            assert!(
                parents
                    .iter()
                    .any(|(_, ps, pe, ptid)| ps <= start && end <= pe && ptid == tid),
                "child span {name} [{start},{end}) on tid {tid} must nest in a read span"
            );
        }
    }

    // Refresh window matches the device's tRFC length.
    let ctrl_spans = trace.spans("controller");
    let refresh = ctrl_spans.iter().find(|(n, ..)| n.starts_with("refresh"));
    assert!(refresh.is_some(), "refresh span present: {ctrl_spans:?}");
}

#[test]
fn chrome_trace_cross_validates_against_viz_timeline() {
    let (mut ctrl, handle) = driven_controller();
    let timing = *ctrl.device().timing();
    let trace = handle.build();
    let commands = ctrl.take_command_trace();

    // First RD cycle according to the probe's trace.
    let (first_rd, _) = *trace
        .command_sequence()
        .iter()
        .find(|(_, k)| k == "RD")
        .expect("a read CAS was issued");

    // The viz timeline rendered from the *controller's* trace must paint
    // the data burst exactly CL cycles after that same CAS cycle.
    let width = 120usize;
    let chart = command_timeline(&commands, &timing, 0, width);
    let bus_line = chart
        .lines()
        .find(|l| l.starts_with("bus"))
        .expect("bus lane");
    let prefix = bus_line.find('|').unwrap() + 1;
    let burst_col = bus_line.find('R').expect("read burst painted") - prefix;
    assert_eq!(
        burst_col as u64,
        first_rd + timing.cl,
        "burst lands CL after the probe's CAS"
    );
}

/// Runs the same workload twice, once bare and once fully instrumented
/// (probes on every channel + self-profiling), and checks the simulation
/// results are identical.
fn run_instrumented(instrument: bool) -> (SimReport, Vec<ChromeTraceHandle>) {
    let cfg = SystemConfig::paper_default(2);
    let cycle_ns = cfg.dram_cycle_ns();
    let channels = cfg.channels;
    let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::random(0.3));
    let mut handles = Vec::new();
    if instrument {
        sim.enable_profiling();
        for ch in 0..channels {
            let (probe, handle) = ChromeTraceProbe::new(ch, cycle_ns);
            sim.attach_probe(ch, Box::new(probe));
            handles.push(handle);
        }
    }
    (sim.run_for_us(30.0), handles)
}

#[test]
fn probe_attachment_never_changes_results() {
    let (bare, _) = run_instrumented(false);
    let (probed, handles) = run_instrumented(true);

    // The probe genuinely recorded the run...
    assert!(!handles.is_empty());
    assert!(
        !handles[0].build().events.is_empty(),
        "probe captured events"
    );
    // ...profiling genuinely measured it...
    assert!(probed.perf.enabled);
    assert!(probed.perf.wall_seconds > 0.0);
    assert!(!bare.perf.enabled);
    // ...and the simulation results are bit-identical regardless.
    assert_eq!(bare.strip_perf(), probed.strip_perf());
}

#[test]
fn through_time_samples_carry_controller_health() {
    let (report, _) = run_instrumented(false);
    assert!(!report.samples.is_empty());
    let busy = report
        .samples
        .iter()
        .find(|s| s.ctrl.cas > 0)
        .expect("a random 30 µs run issues CAS commands");
    // One depth observation per cycle per channel.
    assert!(busy.ctrl.read_queue_depth.count >= busy.ctrl.cycles);
    assert_eq!(busy.ctrl.read_queue_depth.count % busy.ctrl.cycles, 0);
    assert!(busy.ctrl.row_hit_rate() >= 0.0 && busy.ctrl.row_hit_rate() <= 1.0);
    assert!(busy.ctrl.drain_occupancy() <= 1.0);
    // The run has stores (0.3 fraction): some window must see drains.
    assert!(
        report.samples.iter().any(|s| s.ctrl.drain_cycles > 0),
        "write drains observed in ctrl window stats"
    );
}
