//! Crash-safe execution: deterministic checkpoint/resume.
//!
//! A run that is interrupted at an arbitrary cycle, snapshotted to the
//! versioned JSON blob, parsed back, and restored into a freshly built
//! simulator must finish with a `SimReport::strip_perf()` bit-identical
//! to an uninterrupted run — across all five DDR4 speed grades and all
//! four synthetic traffic shapes, with the fast-forward paths enabled.
//! This file also pins the snapshot JSON roundtrip over random
//! configurations and guards the on-disk format with a golden fixture.

use proptest::prelude::*;

use dramstack::dram::TimingParams;
use dramstack::memctrl::PagePolicy;
use dramstack::sim::{SimReport, Simulator, Snapshot, SystemConfig, SNAPSHOT_FORMAT_VERSION};
use dramstack::workloads::{PatternKind, SyntheticPattern};

fn presets() -> [(&'static str, TimingParams); 5] {
    [
        ("ddr4_2133", TimingParams::ddr4_2133()),
        ("ddr4_2400", TimingParams::ddr4_2400()),
        ("ddr4_2666", TimingParams::ddr4_2666()),
        ("ddr4_2933", TimingParams::ddr4_2933()),
        ("ddr4_3200", TimingParams::ddr4_3200()),
    ]
}

fn shapes() -> [(&'static str, SyntheticPattern); 4] {
    let mut seq_rw = SyntheticPattern::sequential(0.3);
    seq_rw.seed = 7;
    let mut rand_mlp = SyntheticPattern::random(0.0);
    rand_mlp.chains = 8;
    let mut rand_rw = SyntheticPattern::random(0.2);
    rand_rw.chains = 2;
    rand_rw.seed = 21;
    [
        ("seq_read", SyntheticPattern::sequential(0.0)),
        ("seq_rw", seq_rw),
        ("rand_mlp", rand_mlp),
        ("rand_rw", rand_rw),
    ]
}

fn config(timing: TimingParams, cores: usize, channels: usize, policy: PagePolicy) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(cores);
    cfg.ctrl.device.timing = timing;
    cfg.ctrl.page_policy = policy;
    cfg.channels = channels;
    cfg
}

fn build(cfg: &SystemConfig, pattern: SyntheticPattern) -> Simulator {
    let mut sim = Simulator::with_synthetic(cfg.clone(), pattern);
    sim.set_busy_engine(true);
    sim
}

fn uninterrupted(cfg: &SystemConfig, pattern: SyntheticPattern, us: f64) -> SimReport {
    build(cfg, pattern).run_for_us(us)
}

/// Runs to `cut_us`, snapshots, serializes to JSON, parses the blob back,
/// restores it into a *freshly built* simulator, and finishes the run
/// there. Returns the resumed report.
fn interrupted(cfg: &SystemConfig, pattern: SyntheticPattern, us: f64, cut_us: f64) -> SimReport {
    let total = cfg.us_to_cycles(us);
    let cut = cfg.us_to_cycles(cut_us);
    assert!(cut > 0 && cut < total, "cut must fall inside the run");

    let mut victim = build(cfg, pattern);
    victim.advance_to_cycle(cut);
    let snap = victim.snapshot().expect("synthetic streams checkpoint");
    drop(victim);

    let blob = snap.to_json();
    let parsed = Snapshot::from_json(&blob).expect("snapshot JSON parses back");
    assert_eq!(parsed, snap, "JSON roundtrip altered the snapshot");

    let mut resumed = build(cfg, pattern);
    resumed.restore(&parsed).expect("restore accepts the blob");
    resumed.advance_to_cycle(total);
    resumed.report()
}

/// The acceptance matrix: every DDR4 speed grade × every traffic shape,
/// interrupted mid-window at an arbitrary (non-boundary) cycle.
#[test]
fn interrupt_and_resume_bit_identical_across_preset_matrix() {
    for (tname, timing) in presets() {
        for (pname, pattern) in shapes() {
            let cfg = config(timing, 2, 1, PagePolicy::Open);
            let full = uninterrupted(&cfg, pattern, 8.0);
            let resumed = interrupted(&cfg, pattern, 8.0, 3.3);
            assert_eq!(
                full.strip_perf(),
                resumed.strip_perf(),
                "{tname}/{pname}: resume diverged from the uninterrupted run"
            );
            assert!(
                full.ctrl_stats.reads_done > 0,
                "{tname}/{pname} did no work — the matrix proves nothing"
            );
            if full.audit.armed {
                assert!(
                    resumed.audit.is_clean(),
                    "{tname}/{pname}: auditor flagged the resumed run: {:?}",
                    resumed.audit.first_violation()
                );
                assert_eq!(
                    full.audit, resumed.audit,
                    "{tname}/{pname}: audit bookkeeping diverged"
                );
            }
        }
    }
}

/// Periodic checkpointing composes with the idle/busy fast-forward paths:
/// snapshots land exactly on the requested boundaries, the checkpointed
/// run's report is unchanged, and resuming from the *last* emitted
/// checkpoint finishes bit-identically.
#[test]
fn periodic_checkpoints_land_on_boundaries_and_resume_cleanly() {
    // 6us at the paper clock is ~7200 DRAM cycles, so this emits a
    // handful of checkpoints per run.
    let every = 1_000;
    for (pname, pattern) in shapes() {
        let cfg = config(TimingParams::ddr4_3200(), 2, 1, PagePolicy::Open);
        let total = cfg.us_to_cycles(6.0);

        let mut snaps: Vec<Snapshot> = Vec::new();
        let mut sim = build(&cfg, pattern);
        let report = sim
            .run_for_us_checkpointed(6.0, every, &mut |s| snaps.push(s.clone()))
            .expect("synthetic streams checkpoint");

        assert!(!snaps.is_empty(), "{pname}: no checkpoints were emitted");
        for s in &snaps {
            assert_eq!(
                s.dram_cycle % every,
                0,
                "{pname}: checkpoint off-boundary at cycle {}",
                s.dram_cycle
            );
            assert_eq!(s.version, SNAPSHOT_FORMAT_VERSION);
        }

        let plain = uninterrupted(&cfg, pattern, 6.0);
        assert_eq!(
            plain.strip_perf(),
            report.strip_perf(),
            "{pname}: periodic checkpointing perturbed the run"
        );

        let last = snaps.last().expect("checked non-empty");
        let mut resumed = build(&cfg, pattern);
        resumed.restore(last).expect("restore accepts the blob");
        resumed.advance_to_cycle(total);
        assert_eq!(
            plain.strip_perf(),
            resumed.report().strip_perf(),
            "{pname}: resume from last checkpoint diverged"
        );
    }
}

fn arbitrary_pattern() -> impl Strategy<Value = SyntheticPattern> {
    (
        prop_oneof![Just(PatternKind::Sequential), Just(PatternKind::Random)],
        0u32..=100,
        1u8..=8,
        any::<u64>(),
    )
        .prop_map(|(kind, store_pct, chains, seed)| {
            let mut p = match kind {
                PatternKind::Sequential => {
                    SyntheticPattern::sequential(f64::from(store_pct) / 100.0)
                }
                PatternKind::Random => SyntheticPattern::random(f64::from(store_pct) / 100.0),
            };
            p.chains = chains;
            p.seed = seed;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: snapshot → JSON → restore → snapshot roundtrip over
    /// random system configurations. The re-captured snapshot must equal
    /// the original blob field for field.
    #[test]
    fn snapshot_roundtrip_on_random_configs(
        preset in 0usize..5,
        pattern in arbitrary_pattern(),
        cores in 1usize..=4,
        channels in prop_oneof![Just(1usize), Just(2usize)],
        policy in prop_oneof![Just(PagePolicy::Open), Just(PagePolicy::Closed)],
        cut_permille in 50u64..=950,
    ) {
        let cfg = config(presets()[preset].1, cores, channels, policy);
        let total = cfg.us_to_cycles(4.0);
        let cut = (total * cut_permille / 1000).max(1);

        let mut victim = build(&cfg, pattern);
        victim.advance_to_cycle(cut);
        let snap = victim.snapshot().expect("synthetic streams checkpoint");

        let parsed = Snapshot::from_json(&snap.to_json())
            .expect("snapshot JSON parses back");
        prop_assert_eq!(&parsed, &snap);

        let mut resumed = build(&cfg, pattern);
        resumed.restore(&parsed).expect("restore accepts the blob");
        let recaptured = resumed.snapshot().expect("synthetic streams checkpoint");
        prop_assert_eq!(&recaptured, &snap);

        resumed.advance_to_cycle(total);
        victim.advance_to_cycle(total);
        prop_assert_eq!(
            resumed.report().strip_perf(),
            victim.report().strip_perf()
        );
    }
}

// ---------------------------------------------------------------------------
// Golden fixture: the serialized snapshot format is pinned byte for byte.
// ---------------------------------------------------------------------------

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/snapshot_v1.json");

/// Deterministic machine state used to mint the golden blob. Caches are
/// shrunk so the checked-in fixture stays small; the serialized *shape*
/// (every struct, every field) is identical to a full-size snapshot.
fn golden_snapshot() -> Snapshot {
    let mut pattern = SyntheticPattern::sequential(0.25);
    pattern.seed = 42;
    let mut cfg = config(TimingParams::ddr4_3200(), 1, 1, PagePolicy::Open);
    cfg.hierarchy.l1.size_bytes = 4 << 10;
    cfg.hierarchy.l1.ways = 8;
    cfg.hierarchy.l2.size_bytes = 8 << 10;
    cfg.hierarchy.l2.ways = 8;
    cfg.hierarchy.llc.size_bytes = 16 << 10;
    cfg.hierarchy.llc.ways = 8;
    let mut sim = build(&cfg, pattern);
    // The auditor arms by default only in debug/test builds; pin it on
    // so the blob is byte-identical across build profiles (and so the
    // fixture covers the AuditState shape).
    sim.set_audit(true);
    sim.advance_for_us(2.0);
    sim.snapshot().expect("synthetic streams checkpoint")
}

/// Satellite: any change to the serialized shape of the snapshot (or of
/// any component state embedded in it) without a version bump fails this
/// test loudly. Regenerate the fixture with
/// `DRAMSTACK_REGEN_GOLDEN=1 cargo test --test crash_resume golden` after
/// bumping `SNAPSHOT_FORMAT_VERSION`.
#[test]
fn golden_snapshot_format_is_stable() {
    let fresh = golden_snapshot().to_json();

    if std::env::var("DRAMSTACK_REGEN_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(GOLDEN_PATH, &fresh).expect("write golden fixture");
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {GOLDEN_PATH} ({e}); \
             regenerate with DRAMSTACK_REGEN_GOLDEN=1"
        )
    });

    let parsed = Snapshot::from_json(&golden).unwrap_or_else(|e| {
        panic!(
            "golden v{SNAPSHOT_FORMAT_VERSION} snapshot no longer parses: {e}. \
             The snapshot format changed — bump SNAPSHOT_FORMAT_VERSION and \
             regenerate the fixture with DRAMSTACK_REGEN_GOLDEN=1."
        )
    });
    assert_eq!(parsed.version, SNAPSHOT_FORMAT_VERSION);

    assert_eq!(
        golden, fresh,
        "serialized snapshot bytes diverged from the golden fixture. If the \
         format (or the state captured at a given cycle) changed on purpose, \
         bump SNAPSHOT_FORMAT_VERSION and regenerate with \
         DRAMSTACK_REGEN_GOLDEN=1; otherwise this is a determinism regression."
    );

    // The pinned blob must still restore and run.
    let mut pattern = SyntheticPattern::sequential(0.25);
    pattern.seed = 42;
    let mut sim = build(&parsed.config.clone(), pattern);
    sim.restore(&parsed).expect("golden blob restores");
    sim.advance_for_us(0.5);
}
