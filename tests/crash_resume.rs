//! Crash-safe execution: deterministic checkpoint/resume.
//!
//! A run that is interrupted at an arbitrary cycle, snapshotted, moved
//! through any supported transport — the versioned JSON blob, the
//! compact binary container, or a binary base + delta chain — and
//! restored into a freshly built simulator must finish with a
//! `SimReport::strip_perf()` bit-identical to an uninterrupted run,
//! across all five DDR4 speed grades and all four synthetic traffic
//! shapes, with the fast-forward paths enabled. This file also pins the
//! snapshot roundtrips over random configurations, exercises
//! format negotiation (bad magic, truncation, version skew, broken
//! delta chains — typed errors, never panics), and guards both on-disk
//! formats with byte-pinned golden fixtures.

use proptest::prelude::*;

use dramstack::dram::TimingParams;
use dramstack::memctrl::PagePolicy;
use dramstack::sim::{
    ckpt, CheckpointChain, SimReport, Simulator, Snapshot, SnapshotDelta, SnapshotError,
    SnapshotFormat, SystemConfig, SNAPSHOT_FORMAT_VERSION,
};
use dramstack::workloads::{PatternKind, SyntheticPattern};

fn presets() -> [(&'static str, TimingParams); 5] {
    [
        ("ddr4_2133", TimingParams::ddr4_2133()),
        ("ddr4_2400", TimingParams::ddr4_2400()),
        ("ddr4_2666", TimingParams::ddr4_2666()),
        ("ddr4_2933", TimingParams::ddr4_2933()),
        ("ddr4_3200", TimingParams::ddr4_3200()),
    ]
}

fn shapes() -> [(&'static str, SyntheticPattern); 4] {
    let mut seq_rw = SyntheticPattern::sequential(0.3);
    seq_rw.seed = 7;
    let mut rand_mlp = SyntheticPattern::random(0.0);
    rand_mlp.chains = 8;
    let mut rand_rw = SyntheticPattern::random(0.2);
    rand_rw.chains = 2;
    rand_rw.seed = 21;
    [
        ("seq_read", SyntheticPattern::sequential(0.0)),
        ("seq_rw", seq_rw),
        ("rand_mlp", rand_mlp),
        ("rand_rw", rand_rw),
    ]
}

fn config(timing: TimingParams, cores: usize, channels: usize, policy: PagePolicy) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(cores);
    cfg.ctrl.device.timing = timing;
    cfg.ctrl.page_policy = policy;
    cfg.channels = channels;
    cfg
}

fn build(cfg: &SystemConfig, pattern: SyntheticPattern) -> Simulator {
    let mut sim = Simulator::with_synthetic(cfg.clone(), pattern);
    sim.set_busy_engine(true);
    sim
}

fn uninterrupted(cfg: &SystemConfig, pattern: SyntheticPattern, us: f64) -> SimReport {
    build(cfg, pattern).run_for_us(us)
}

/// How the checkpoint travels from the interrupted process to the
/// resumed one. Every transport must reconstruct the identical snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transport {
    /// Full snapshot through the versioned JSON blob (the oracle path).
    JsonFull,
    /// Full snapshot through the compact binary container.
    BinaryFull,
    /// Binary base at an earlier cycle plus two deltas replayed on top —
    /// the default on-disk layout of periodic checkpointing.
    BinaryChain,
}

impl Transport {
    fn all() -> [Transport; 3] {
        [
            Transport::JsonFull,
            Transport::BinaryFull,
            Transport::BinaryChain,
        ]
    }
}

/// Runs to `cut_us`, checkpoints through `transport`, restores the
/// reconstructed snapshot into a *freshly built* simulator, and finishes
/// the run there. Returns the resumed report.
fn interrupted(
    cfg: &SystemConfig,
    pattern: SyntheticPattern,
    us: f64,
    cut_us: f64,
    transport: Transport,
) -> SimReport {
    let total = cfg.us_to_cycles(us);
    let cut = cfg.us_to_cycles(cut_us);
    assert!(cut > 1 && cut < total, "cut must fall inside the run");

    let mut victim = build(cfg, pattern);
    let parsed = match transport {
        Transport::JsonFull => {
            victim.advance_to_cycle(cut);
            let snap = victim.snapshot().expect("synthetic streams checkpoint");
            let parsed = Snapshot::from_json(&snap.to_json()).expect("snapshot JSON parses back");
            assert_eq!(parsed, snap, "JSON roundtrip altered the snapshot");
            parsed
        }
        Transport::BinaryFull => {
            victim.advance_to_cycle(cut);
            let snap = victim.snapshot().expect("synthetic streams checkpoint");
            let parsed =
                Snapshot::from_binary(&snap.to_binary()).expect("snapshot binary parses back");
            assert_eq!(parsed, snap, "binary roundtrip altered the snapshot");
            parsed
        }
        Transport::BinaryChain => {
            // Base well before the cut, one delta halfway to it, the
            // second delta exactly at it — the resumed state must come
            // entirely out of the replayed chain.
            let mid = cut / 2;
            victim.advance_to_cycle(mid / 2);
            let base = victim.snapshot_base().expect("base capture");
            let base_bytes = base.to_binary();
            victim.advance_to_cycle(mid);
            let d1_bytes = victim.snapshot_delta().expect("delta capture").to_binary();
            victim.advance_to_cycle(cut);
            let d2_bytes = victim.snapshot_delta().expect("delta capture").to_binary();

            let mut chained = Snapshot::from_binary(&base_bytes).expect("base parses back");
            for bytes in [&d1_bytes, &d2_bytes] {
                let delta = SnapshotDelta::from_binary(bytes).expect("delta parses back");
                chained.apply_delta(&delta).expect("delta applies in order");
            }
            let direct = victim.snapshot().expect("synthetic streams checkpoint");
            assert_eq!(
                chained, direct,
                "base+delta replay diverged from a directly captured snapshot"
            );
            chained
        }
    };
    drop(victim);

    let mut resumed = build(cfg, pattern);
    resumed.restore(&parsed).expect("restore accepts the blob");
    resumed.advance_to_cycle(total);
    resumed.report()
}

/// The acceptance matrix: every DDR4 speed grade × every traffic shape ×
/// every checkpoint transport, interrupted mid-window at an arbitrary
/// (non-boundary) cycle.
#[test]
fn interrupt_and_resume_bit_identical_across_preset_matrix() {
    for (tname, timing) in presets() {
        for (pname, pattern) in shapes() {
            let cfg = config(timing, 2, 1, PagePolicy::Open);
            let full = uninterrupted(&cfg, pattern, 8.0);
            assert!(
                full.ctrl_stats.reads_done > 0,
                "{tname}/{pname} did no work — the matrix proves nothing"
            );
            for transport in Transport::all() {
                let resumed = interrupted(&cfg, pattern, 8.0, 3.3, transport);
                assert_eq!(
                    full.strip_perf(),
                    resumed.strip_perf(),
                    "{tname}/{pname}/{transport:?}: resume diverged from the uninterrupted run"
                );
                if full.audit.armed {
                    assert!(
                        resumed.audit.is_clean(),
                        "{tname}/{pname}/{transport:?}: auditor flagged the resumed run: {:?}",
                        resumed.audit.first_violation()
                    );
                    assert_eq!(
                        full.audit, resumed.audit,
                        "{tname}/{pname}/{transport:?}: audit bookkeeping diverged"
                    );
                }
            }
        }
    }
}

/// Periodic checkpointing composes with the idle/busy fast-forward paths:
/// snapshots land exactly on the requested boundaries, the checkpointed
/// run's report is unchanged, and resuming from the *last* emitted
/// checkpoint finishes bit-identically.
#[test]
fn periodic_checkpoints_land_on_boundaries_and_resume_cleanly() {
    // 6us at the paper clock is ~7200 DRAM cycles, so this emits a
    // handful of checkpoints per run.
    let every = 1_000;
    for (pname, pattern) in shapes() {
        let cfg = config(TimingParams::ddr4_3200(), 2, 1, PagePolicy::Open);
        let total = cfg.us_to_cycles(6.0);

        let mut snaps: Vec<Snapshot> = Vec::new();
        let mut sim = build(&cfg, pattern);
        let report = sim
            .run_for_us_checkpointed(6.0, every, &mut |s| snaps.push(s.clone()))
            .expect("synthetic streams checkpoint");

        assert!(!snaps.is_empty(), "{pname}: no checkpoints were emitted");
        for s in &snaps {
            assert_eq!(
                s.dram_cycle % every,
                0,
                "{pname}: checkpoint off-boundary at cycle {}",
                s.dram_cycle
            );
            assert_eq!(s.version, SNAPSHOT_FORMAT_VERSION);
        }

        let plain = uninterrupted(&cfg, pattern, 6.0);
        assert_eq!(
            plain.strip_perf(),
            report.strip_perf(),
            "{pname}: periodic checkpointing perturbed the run"
        );

        let last = snaps.last().expect("checked non-empty");
        let mut resumed = build(&cfg, pattern);
        resumed.restore(last).expect("restore accepts the blob");
        resumed.advance_to_cycle(total);
        assert_eq!(
            plain.strip_perf(),
            resumed.report().strip_perf(),
            "{pname}: resume from last checkpoint diverged"
        );
    }
}

fn arbitrary_pattern() -> impl Strategy<Value = SyntheticPattern> {
    (
        prop_oneof![Just(PatternKind::Sequential), Just(PatternKind::Random)],
        0u32..=100,
        1u8..=8,
        any::<u64>(),
    )
        .prop_map(|(kind, store_pct, chains, seed)| {
            let mut p = match kind {
                PatternKind::Sequential => {
                    SyntheticPattern::sequential(f64::from(store_pct) / 100.0)
                }
                PatternKind::Random => SyntheticPattern::random(f64::from(store_pct) / 100.0),
            };
            p.chains = chains;
            p.seed = seed;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: snapshot → JSON/binary → restore → snapshot roundtrip
    /// over random system configurations. The re-captured snapshot must
    /// equal the original blob field for field.
    #[test]
    fn snapshot_roundtrip_on_random_configs(
        preset in 0usize..5,
        pattern in arbitrary_pattern(),
        cores in 1usize..=4,
        channels in prop_oneof![Just(1usize), Just(2usize)],
        policy in prop_oneof![Just(PagePolicy::Open), Just(PagePolicy::Closed)],
        cut_permille in 50u64..=950,
    ) {
        let cfg = config(presets()[preset].1, cores, channels, policy);
        let total = cfg.us_to_cycles(4.0);
        let cut = (total * cut_permille / 1000).max(1);

        let mut victim = build(&cfg, pattern);
        victim.advance_to_cycle(cut);
        let snap = victim.snapshot().expect("synthetic streams checkpoint");

        let parsed = Snapshot::from_json(&snap.to_json())
            .expect("snapshot JSON parses back");
        prop_assert_eq!(&parsed, &snap);

        let binary = Snapshot::from_binary(&snap.to_binary())
            .expect("snapshot binary parses back");
        prop_assert_eq!(&binary, &snap);

        let mut resumed = build(&cfg, pattern);
        resumed.restore(&parsed).expect("restore accepts the blob");
        let recaptured = resumed.snapshot().expect("synthetic streams checkpoint");
        prop_assert_eq!(&recaptured, &snap);

        resumed.advance_to_cycle(total);
        victim.advance_to_cycle(total);
        prop_assert_eq!(
            resumed.report().strip_perf(),
            victim.report().strip_perf()
        );
    }
}

// ---------------------------------------------------------------------------
// Format negotiation: corrupt, truncated, or version-skewed inputs must
// surface as typed `SnapshotError`s — never a panic — and on-disk resume
// must fall back to the last complete checkpoint.
// ---------------------------------------------------------------------------

/// A small but fully populated snapshot for the negotiation tests.
fn small_snapshot_sim() -> Simulator {
    let mut pattern = SyntheticPattern::sequential(0.25);
    pattern.seed = 42;
    let mut cfg = config(TimingParams::ddr4_3200(), 1, 1, PagePolicy::Open);
    cfg.hierarchy.l1.size_bytes = 4 << 10;
    cfg.hierarchy.l1.ways = 8;
    cfg.hierarchy.l2.size_bytes = 8 << 10;
    cfg.hierarchy.l2.ways = 8;
    cfg.hierarchy.llc.size_bytes = 16 << 10;
    cfg.hierarchy.llc.ways = 8;
    build(&cfg, pattern)
}

/// Satellite: every malformed-binary shape decodes to a *typed* error.
/// Byte offsets follow the container layout pinned in DESIGN.md §11:
/// magic `DSNP` at 0..4, container version (u32 LE) at 4..8, kind byte
/// at 8, snapshot format version (u32 LE) at 9..13.
#[test]
fn binary_negotiation_rejects_malformed_inputs_with_typed_errors() {
    let mut sim = small_snapshot_sim();
    sim.advance_for_us(1.0);
    let good = sim
        .snapshot()
        .expect("synthetic streams checkpoint")
        .to_binary();
    assert!(Snapshot::from_binary(&good).is_ok(), "baseline must decode");

    // Wrong magic.
    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(
        matches!(Snapshot::from_binary(&bad), Err(SnapshotError::BadMagic)),
        "wrong magic must be BadMagic"
    );

    // Future container version.
    let mut bad = good.clone();
    bad[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert!(
        matches!(
            Snapshot::from_binary(&bad),
            Err(SnapshotError::BinaryVersionMismatch {
                expected: _,
                got: 99
            })
        ),
        "future container version must be BinaryVersionMismatch"
    );

    // Snapshot format version skew inside a well-formed container.
    let mut bad = good.clone();
    bad[9..13].copy_from_slice(&999u32.to_le_bytes());
    assert!(
        matches!(
            Snapshot::from_binary(&bad),
            Err(SnapshotError::VersionMismatch {
                expected: _,
                got: 999
            })
        ),
        "format version skew must be VersionMismatch"
    );

    // Truncation at every stratum: header, section table, mid-payload.
    for cut in [0, 3, 8, 12, 40, good.len() / 2, good.len() - 1] {
        let err =
            Snapshot::from_binary(&good[..cut]).expect_err("truncated container must not decode");
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::Corrupt { .. }
                    | SnapshotError::BadMagic
            ),
            "truncation at {cut} bytes produced unexpected error {err:?}"
        );
    }

    // A full snapshot container is not a delta and vice versa.
    let err = SnapshotDelta::from_binary(&good).expect_err("full blob is not a delta");
    assert!(
        matches!(err, SnapshotError::Corrupt { .. }),
        "kind mismatch must be Corrupt, got {err:?}"
    );
    let delta_bytes = {
        let mut sim = small_snapshot_sim();
        sim.advance_for_us(0.5);
        let _ = sim.snapshot_base().expect("base capture");
        sim.advance_for_us(0.5);
        sim.snapshot_delta().expect("delta capture").to_binary()
    };
    let err = Snapshot::from_binary(&delta_bytes).expect_err("delta blob is not a full snapshot");
    assert!(
        matches!(err, SnapshotError::Corrupt { .. }),
        "kind mismatch must be Corrupt, got {err:?}"
    );
}

/// Satellite: delta capture without a base, and out-of-order delta
/// application, are typed errors.
#[test]
fn delta_chain_misuse_is_a_typed_error() {
    let mut sim = small_snapshot_sim();
    sim.advance_for_us(0.5);
    let err = sim
        .snapshot_delta()
        .expect_err("delta before any base must fail");
    assert!(
        matches!(err, SnapshotError::DeltaBaseMissing),
        "expected DeltaBaseMissing, got {err:?}"
    );

    let mut base = sim.snapshot_base().expect("base capture");
    sim.advance_for_us(0.3);
    let _skipped = sim.snapshot_delta().expect("delta capture");
    sim.advance_for_us(0.3);
    let second = sim.snapshot_delta().expect("delta capture");
    let err = base
        .apply_delta(&second)
        .expect_err("skipping a delta must break the chain");
    assert!(
        matches!(err, SnapshotError::DeltaChainBroken { .. }),
        "expected DeltaChainBroken, got {err:?}"
    );
}

/// Satellite: `ckpt::load_latest` walks the on-disk chain and falls back
/// to the last *complete* checkpoint when the tail is torn — and to the
/// JSON blob when no binary chain exists — so `--resume` never needs a
/// format flag and never trips over a crash-torn file.
#[test]
fn on_disk_resume_falls_back_to_last_complete_checkpoint() {
    let dir = std::env::temp_dir().join(format!("dramstack-negotiate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = "job";

    // Lay down base + two deltas through the real writer pipeline.
    let mut sim = small_snapshot_sim();
    let mut chain =
        CheckpointChain::create(&dir, key, SnapshotFormat::Binary, true).expect("chain creates");
    for us in [0.4, 0.8, 1.2] {
        sim.advance_for_us(us);
        chain.checkpoint(&mut sim).expect("checkpoint captures");
    }
    chain.finish().expect("writer drains");
    let expect = sim.snapshot().expect("synthetic streams checkpoint");

    let base = dir.join(format!("ckpt-{key}.base.dsnp"));
    let d1 = dir.join(format!("ckpt-{key}.d1.dsnp"));
    let d2 = dir.join(format!("ckpt-{key}.d2.dsnp"));
    for p in [&base, &d1, &d2] {
        assert!(p.exists(), "{} missing after finish()", p.display());
    }

    // Pristine chain: both deltas replay, state matches the live sim.
    let loaded = ckpt::load_latest(&dir, key).expect("pristine chain loads");
    assert_eq!(loaded.format, SnapshotFormat::Binary);
    assert_eq!(loaded.deltas_applied, 2);
    assert_eq!(
        loaded.snapshot, expect,
        "replayed chain diverged from live state"
    );

    // Torn tail: corrupt the deepest delta — resume falls back one step.
    let good_d2 = std::fs::read(&d2).expect("read d2");
    std::fs::write(&d2, &good_d2[..good_d2.len() / 2]).expect("tear d2");
    let loaded = ckpt::load_latest(&dir, key).expect("torn tail still loads");
    assert_eq!(loaded.deltas_applied, 1, "torn delta must be skipped");
    // d2 covered the final advance; the fallback state is strictly older.
    assert!(loaded.snapshot.dram_cycle < expect.dram_cycle);

    // No base: the whole binary chain is unusable.
    std::fs::remove_file(&base).expect("remove base");
    assert!(
        ckpt::load_latest(&dir, key).is_none(),
        "no base and no JSON blob must be None"
    );

    // JSON fallback: a full JSON blob negotiates without any flag.
    std::fs::write(dir.join(format!("ckpt-{key}.json")), expect.to_json()).expect("write json");
    let loaded = ckpt::load_latest(&dir, key).expect("json blob loads");
    assert_eq!(loaded.format, SnapshotFormat::Json);
    assert_eq!(loaded.deltas_applied, 0);
    assert_eq!(loaded.snapshot, expect);

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Golden fixtures: both serialized snapshot formats are pinned byte for
// byte.
// ---------------------------------------------------------------------------

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/snapshot_v3.json");
const GOLDEN_BIN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/snapshot_v3.dsnp");

/// Deterministic machine state used to mint the golden blobs. Caches are
/// shrunk so the checked-in fixtures stay small; the serialized *shape*
/// (every struct, every field, every section) is identical to a
/// full-size snapshot.
fn golden_snapshot() -> Snapshot {
    let mut sim = small_snapshot_sim();
    // The auditor arms by default only in debug/test builds; pin it on
    // so the blob is byte-identical across build profiles (and so the
    // fixture covers the AuditState shape).
    sim.set_audit(true);
    sim.advance_for_us(2.0);
    sim.snapshot().expect("synthetic streams checkpoint")
}

fn regen_golden() -> bool {
    std::env::var("DRAMSTACK_REGEN_GOLDEN").as_deref() == Ok("1")
}

/// Satellite: any change to the serialized shape of the snapshot (or of
/// any component state embedded in it) without a version bump fails this
/// test loudly. Regenerate the fixture with
/// `DRAMSTACK_REGEN_GOLDEN=1 cargo test --test crash_resume golden` after
/// bumping `SNAPSHOT_FORMAT_VERSION`.
#[test]
fn golden_snapshot_format_is_stable() {
    let fresh = golden_snapshot().to_json();

    if regen_golden() {
        std::fs::write(GOLDEN_PATH, &fresh).expect("write golden fixture");
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {GOLDEN_PATH} ({e}); \
             regenerate with DRAMSTACK_REGEN_GOLDEN=1"
        )
    });

    let parsed = Snapshot::from_json(&golden).unwrap_or_else(|e| {
        panic!(
            "golden v{SNAPSHOT_FORMAT_VERSION} snapshot no longer parses: {e}. \
             The snapshot format changed — bump SNAPSHOT_FORMAT_VERSION and \
             regenerate the fixture with DRAMSTACK_REGEN_GOLDEN=1."
        )
    });
    assert_eq!(parsed.version, SNAPSHOT_FORMAT_VERSION);

    assert_eq!(
        golden, fresh,
        "serialized snapshot bytes diverged from the golden fixture. If the \
         format (or the state captured at a given cycle) changed on purpose, \
         bump SNAPSHOT_FORMAT_VERSION and regenerate with \
         DRAMSTACK_REGEN_GOLDEN=1; otherwise this is a determinism regression."
    );

    // The pinned blob must still restore and run.
    let mut pattern = SyntheticPattern::sequential(0.25);
    pattern.seed = 42;
    let mut sim = build(&parsed.config.clone(), pattern);
    sim.restore(&parsed).expect("golden blob restores");
    sim.advance_for_us(0.5);
}

/// Satellite: the compact binary container is pinned byte for byte
/// alongside the JSON oracle. Any codec change — tags, varints, RLE,
/// string table, section order — without a `SNAPSHOT_BINARY_VERSION`
/// bump fails loudly. Regenerate both fixtures together with
/// `DRAMSTACK_REGEN_GOLDEN=1 cargo test --test crash_resume golden`.
#[test]
fn golden_binary_snapshot_format_is_stable() {
    let snap = golden_snapshot();
    let fresh = snap.to_binary();

    if regen_golden() {
        std::fs::write(GOLDEN_BIN_PATH, &fresh).expect("write golden binary fixture");
        eprintln!("regenerated {GOLDEN_BIN_PATH}");
        return;
    }

    let golden = std::fs::read(GOLDEN_BIN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden binary fixture {GOLDEN_BIN_PATH} ({e}); \
             regenerate with DRAMSTACK_REGEN_GOLDEN=1"
        )
    });

    let parsed = Snapshot::from_binary(&golden).unwrap_or_else(|e| {
        panic!(
            "golden binary snapshot no longer decodes: {e:?}. The container \
             format changed — bump SNAPSHOT_BINARY_VERSION and regenerate \
             the fixture with DRAMSTACK_REGEN_GOLDEN=1."
        )
    });
    assert_eq!(parsed, snap, "golden binary fixture decodes to stale state");

    assert!(
        golden == fresh,
        "binary container bytes diverged from the golden fixture \
         ({} golden bytes vs {} fresh). If the codec changed on purpose, \
         bump SNAPSHOT_BINARY_VERSION and regenerate with \
         DRAMSTACK_REGEN_GOLDEN=1; otherwise this is an encoding regression.",
        golden.len(),
        fresh.len()
    );

    // The compression claim the PR rests on: the binary fixture encodes
    // the same machine state in a fraction of the JSON bytes.
    let json_len = snap.to_json().len();
    assert!(
        fresh.len() * 3 < json_len,
        "binary fixture ({} bytes) is no longer well under a third of the \
         JSON blob ({json_len} bytes)",
        fresh.len()
    );
}
