//! Cross-crate integration tests asserting the paper's headline
//! qualitative results at reduced scale.

use dramstack::memctrl::{MappingScheme, PagePolicy};
use dramstack::sim::experiments::run_synthetic;
use dramstack::sim::{Simulator, SystemConfig};
use dramstack::stacks::{BwComponent, LatComponent};
use dramstack::workloads::SyntheticPattern;

const US: f64 = 25.0;

fn default_run(cores: usize, p: SyntheticPattern) -> dramstack::sim::SimReport {
    run_synthetic(cores, p, PagePolicy::Open, MappingScheme::RowBankColumn, US).unwrap()
}

#[test]
fn stacks_always_sum_to_peak() {
    for report in [
        default_run(1, SyntheticPattern::sequential(0.0)),
        default_run(2, SyntheticPattern::random(0.3)),
        default_run(8, SyntheticPattern::sequential(0.1)),
    ] {
        assert!(report.bandwidth_stack.is_consistent());
        assert!((report.bandwidth_stack.total_gbps() - 19.2).abs() < 1e-6);
    }
}

#[test]
fn sequential_beats_random_and_both_scale() {
    let seq1 = default_run(1, SyntheticPattern::sequential(0.0));
    let seq4 = default_run(4, SyntheticPattern::sequential(0.0));
    let rand1 = default_run(1, SyntheticPattern::random(0.0));
    let rand4 = default_run(4, SyntheticPattern::random(0.0));
    assert!(seq1.achieved_gbps() > rand1.achieved_gbps());
    assert!(seq4.achieved_gbps() > seq1.achieved_gbps() * 1.8);
    assert!(rand4.achieved_gbps() > rand1.achieved_gbps() * 1.8);
    // Sequential: high page-hit rate; random: none (paper: 99 % vs 0 %).
    assert!(seq1.ctrl_stats.read_hit_rate() > 0.9);
    assert!(rand1.ctrl_stats.read_hit_rate() < 0.05);
}

#[test]
fn sequential_saturates_by_four_cores() {
    let seq4 = default_run(4, SyntheticPattern::sequential(0.0));
    let peak_minus_refresh = 19.2 * (1.0 - 420.0 / 9360.0);
    assert!(
        seq4.achieved_gbps() > 0.9 * peak_minus_refresh,
        "4-core sequential should approach peak − refresh: {}",
        seq4.achieved_gbps()
    );
    // Queueing latency rises steeply at saturation (paper Fig. 2 bottom).
    let seq1 = default_run(1, SyntheticPattern::sequential(0.0));
    assert!(
        seq4.latency_stack.ns(LatComponent::Queue) > seq1.latency_stack.ns(LatComponent::Queue)
    );
}

#[test]
fn random_pattern_shows_preact_and_bank_idle() {
    let r = default_run(1, SyntheticPattern::random(0.0));
    let bw = &r.bandwidth_stack;
    assert!(bw.gbps(BwComponent::Precharge) + bw.gbps(BwComponent::Activate) > 0.5);
    assert!(bw.gbps(BwComponent::BankIdle) > 2.0);
    // Latency stack shows the pre/act penalty of 0 % page hits.
    assert!(r.latency_stack.ns(LatComponent::PreAct) > 10.0);
}

#[test]
fn stores_on_sequential_hurt_but_stores_on_random_help() {
    // The store sweep must run at saturation (4 cores): a single
    // request-limited core has headroom, so write-backs add traffic
    // without displacing reads and the total cannot drop.
    let seq0 = default_run(4, SyntheticPattern::sequential(0.0));
    let seq50 = default_run(4, SyntheticPattern::sequential(0.5));
    let rand0 = default_run(4, SyntheticPattern::random(0.0));
    let rand50 = default_run(4, SyntheticPattern::random(0.5));
    // Paper Section VII-B: seq total drops, rand total rises monotonically.
    assert!(
        seq50.achieved_gbps() < seq0.achieved_gbps(),
        "seq: {} !< {}",
        seq50.achieved_gbps(),
        seq0.achieved_gbps()
    );
    assert!(rand50.achieved_gbps() > rand0.achieved_gbps());
    // Writeburst latency appears with stores.
    assert!(seq50.latency_stack.ns(LatComponent::WriteBurst) > 1.0);
    assert!(seq50.bandwidth_stack.gbps(BwComponent::Write) > 0.5);
}

#[test]
fn closed_page_hurts_sequential_helps_random() {
    let run = |p, policy| run_synthetic(2, p, policy, MappingScheme::RowBankColumn, US).unwrap();
    let seq_open = run(SyntheticPattern::sequential(0.0), PagePolicy::Open);
    let seq_closed = run(SyntheticPattern::sequential(0.0), PagePolicy::Closed);
    let rand_open = run(SyntheticPattern::random(0.0), PagePolicy::Open);
    let rand_closed = run(SyntheticPattern::random(0.0), PagePolicy::Closed);
    assert!(seq_closed.achieved_gbps() < seq_open.achieved_gbps());
    assert!(rand_closed.achieved_gbps() > rand_open.achieved_gbps());
    // Paper Fig. 4: random latency *reduces* under closed (pre/act saved).
    assert!(
        rand_closed.latency_stack.ns(LatComponent::PreAct)
            < rand_open.latency_stack.ns(LatComponent::PreAct)
    );
}

#[test]
fn interleaved_mapping_fixes_the_two_fig6_cases() {
    let case1 = |m| {
        run_synthetic(
            1,
            SyntheticPattern::sequential(0.5),
            PagePolicy::Open,
            m,
            US,
        )
        .unwrap()
    };
    let case2 = |m| {
        run_synthetic(
            2,
            SyntheticPattern::sequential(0.0),
            PagePolicy::Closed,
            m,
            US,
        )
        .unwrap()
    };
    for (def, int) in [
        (
            case1(MappingScheme::RowBankColumn),
            case1(MappingScheme::CacheLineInterleaved),
        ),
        (
            case2(MappingScheme::RowBankColumn),
            case2(MappingScheme::CacheLineInterleaved),
        ),
    ] {
        assert!(
            int.achieved_gbps() > def.achieved_gbps(),
            "interleaving should help: {} !> {}",
            int.achieved_gbps(),
            def.achieved_gbps()
        );
        assert!(int.avg_read_latency_ns() < def.avg_read_latency_ns());
        // The trade-off: pre/act grows under interleaving.
        assert!(
            int.latency_stack.ns(LatComponent::PreAct) > def.latency_stack.ns(LatComponent::PreAct)
        );
    }
}

#[test]
fn refresh_fraction_matches_trfc_over_trefi() {
    // An idle system still refreshes at tRFC/tREFI (≈ 4.5 %).
    let cfg = SystemConfig::paper_default(1);
    let streams: Vec<Box<dyn dramstack::cpu::InstrStream>> =
        vec![Box::new(dramstack::cpu::VecStream::new(Vec::new()))];
    let mut sim = Simulator::new(cfg, streams);
    let r = sim.run_for_us(100.0);
    let frac = r.bandwidth_stack.fraction(BwComponent::Refresh);
    assert!(
        (frac - 420.0 / 9360.0).abs() < 0.01,
        "refresh fraction {frac}"
    );
}
