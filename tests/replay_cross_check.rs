//! Cross-checks between the three ways to obtain a bandwidth stack for
//! the same traffic: request-trace replay, command-trace offline
//! analysis, and direct online accounting inside the replay.

use dramstack::dram::DeviceConfig;
use dramstack::memctrl::CtrlConfig;
use dramstack::sim::replay::{parse_requests, replay_requests, write_requests, MemRequest};
use dramstack::stacks::offline::stack_from_trace;
use dramstack::stacks::BwComponent;

fn sample_requests() -> Vec<MemRequest> {
    let mut reqs = Vec::new();
    let mut addr = 0u64;
    for i in 0..300u64 {
        // Mostly sequential reads with periodic strided writes.
        reqs.push(MemRequest {
            at: i * 10,
            write: i % 5 == 4,
            addr,
        });
        addr = if i % 5 == 4 {
            ((addr + 1) << 17) % (1 << 29)
        } else {
            addr + 64
        };
    }
    reqs
}

#[test]
fn replay_and_offline_agree_on_exact_components() {
    let reqs = sample_requests();
    // Replay with a command-tracing controller by reimplementing the
    // replay loop? No need: replay twice — once normally, once through a
    // controller with tracing enabled via the same entry point. The
    // replay module uses a plain controller internally, so we drive our
    // own traced controller with the identical feed logic instead.
    let cfg = CtrlConfig::paper_default();
    let result = replay_requests(&reqs, cfg.clone(), 5_000, 10_000_000).unwrap();

    // Manual replica with command tracing.
    let mut ctrl = dramstack::memctrl::MemoryController::new(cfg);
    ctrl.enable_command_trace();
    let mut view = dramstack::dram::CycleView::idle(ctrl.total_banks());
    let mut next = 0usize;
    let mut now = 0u64;
    while next < reqs.len() || !ctrl.is_idle() {
        while next < reqs.len() && reqs[next].at <= now {
            let r = reqs[next];
            if r.write {
                if !ctrl.can_accept_write() {
                    break;
                }
                ctrl.enqueue_write(r.addr);
            } else {
                if !ctrl.can_accept_read() {
                    break;
                }
                ctrl.enqueue_read(r.addr, 0);
            }
            next += 1;
        }
        ctrl.tick(now, &mut view);
        ctrl.drain_completions().for_each(drop);
        now += 1;
    }
    assert_eq!(
        now, result.finished_at,
        "identical feed logic, identical timing"
    );

    let offline =
        stack_from_trace(&ctrl.take_command_trace(), DeviceConfig::ddr4_2400(), now).unwrap();
    for c in [BwComponent::Read, BwComponent::Write, BwComponent::Refresh] {
        assert!(
            (result.bandwidth_stack.gbps(c) - offline.gbps(c)).abs() < 1e-9,
            "{c}: replay {} vs offline {}",
            result.bandwidth_stack.gbps(c),
            offline.gbps(c)
        );
    }
    assert!(offline.is_consistent());
    assert!(result.bandwidth_stack.is_consistent());
}

#[test]
fn request_trace_text_roundtrip_preserves_replay() {
    let reqs = sample_requests();
    let text = write_requests(&reqs);
    let parsed = parse_requests(&text).unwrap();
    assert_eq!(parsed, reqs);
    let a = replay_requests(&reqs, CtrlConfig::paper_default(), 5_000, 10_000_000).unwrap();
    let b = replay_requests(&parsed, CtrlConfig::paper_default(), 5_000, 10_000_000).unwrap();
    assert_eq!(a.bandwidth_stack, b.bandwidth_stack);
    assert_eq!(a.finished_at, b.finished_at);
}

#[test]
fn replay_is_deterministic() {
    let reqs = sample_requests();
    let a = replay_requests(&reqs, CtrlConfig::paper_default(), 3_000, 10_000_000).unwrap();
    let b = replay_requests(&reqs, CtrlConfig::paper_default(), 3_000, 10_000_000).unwrap();
    assert_eq!(a, b);
}
