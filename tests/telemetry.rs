//! Integration tests for the live telemetry layer: observation never
//! perturbs results, the streamed formats stay valid through a full
//! simulation, the bottleneck advisor lands correct diagnoses on known
//! workload shapes, and the differential comparator's golden property —
//! diffing a run against itself is zero.

use std::io::Write;
use std::sync::{Arc, Mutex};

use dramstack::live::{LiveMode, LiveSink};
use dramstack::obs::BottleneckClass;
use dramstack::sim::{
    diff_reports, SimReport, Simulator, SystemConfig, Telemetry, TelemetryConfig,
};
use dramstack::workloads::SyntheticPattern;

/// A writer appending into a shared buffer the test reads back.
#[derive(Clone, Default)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Shared {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

fn run(cfg: SystemConfig, pattern: SyntheticPattern, us: f64) -> SimReport {
    Simulator::with_synthetic(cfg, pattern).run_for_us(us)
}

#[test]
fn telemetry_is_bit_identical_when_unobserved() {
    // Fast-forward stays enabled on both runs: telemetry must neither
    // disturb the skip logic nor the results.
    let cfg = SystemConfig::paper_default(2);
    let plain = run(cfg.clone(), SyntheticPattern::sequential(0.1), 60.0);

    let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.1));
    let tel = Telemetry::new(TelemetryConfig::default())
        .with_jsonl(Box::new(std::io::sink()))
        .with_prometheus(Box::new(std::io::sink()));
    sim.attach_telemetry(tel);
    let observed = sim.run_for_us(60.0);

    assert_eq!(plain.strip_perf(), observed.strip_perf());
    let windows = sim.telemetry().expect("telemetry attached").windows();
    assert_eq!(windows as usize, observed.samples.len());
}

#[test]
fn jsonl_stream_matches_report_samples() {
    let buf = Shared::default();
    let cfg = SystemConfig::paper_default(1);
    let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
    let tel = Telemetry::new(TelemetryConfig::default()).with_jsonl(Box::new(buf.clone()));
    sim.attach_telemetry(tel);
    let r = sim.run_for_us(60.0);

    let text = buf.text();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), r.samples.len());
    for (i, (line, sample)) in lines.iter().zip(&r.samples).enumerate() {
        let v: serde::Value = serde_json::from_str(line).expect("valid JSON line");
        assert_eq!(
            v.get("window").and_then(serde::Value::as_u64),
            Some(i as u64)
        );
        assert_eq!(
            v.get("cycles").and_then(serde::Value::as_u64),
            Some(sample.cycles)
        );
        let achieved = v
            .get("achieved_gbps")
            .and_then(serde::Value::as_f64)
            .expect("achieved_gbps");
        assert!((achieved - sample.bandwidth.achieved_gbps()).abs() < 1e-9);
    }
}

#[test]
fn prometheus_snapshot_is_well_formed_after_a_run() {
    let cfg = SystemConfig::paper_default(1);
    let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
    sim.enable_telemetry();
    sim.run_for_us(60.0);
    let snap = sim.telemetry().unwrap().prometheus_snapshot();
    assert!(snap.contains("dramstack_windows_total"));
    assert!(snap.contains("dramstack_bw_share{component=\"read\"}"));
    assert!(snap.contains("dramstack_lat_ns{component=\"queue\"}"));
    for line in snap.lines().filter(|l| !l.starts_with('#')) {
        let value = line.rsplit(' ').next().unwrap();
        assert!(value.parse::<f64>().is_ok(), "bad exposition line: {line}");
    }
}

#[test]
fn live_dashboard_runs_plain_over_a_full_simulation() {
    let buf = Shared::default();
    let cfg = SystemConfig::paper_default(1);
    let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
    let mut tel = Telemetry::new(TelemetryConfig::default());
    tel.add_sink(Box::new(LiveSink::with_writer(
        LiveMode::Plain,
        Box::new(buf.clone()),
    )));
    sim.attach_telemetry(tel);
    sim.run_for_us(60.0);
    let text = buf.text();
    assert!(text.contains("dramstack live — window"));
    assert!(text.contains("dramstack live — done"));
    assert!(!text.contains('\x1b'), "plain mode must not emit ANSI");
}

#[test]
fn saturated_four_core_run_is_diagnosed() {
    // Four cores of sequential reads saturate the channel (the paper's
    // Figure 1 right-hand side): the advisor must say so.
    let r = run(
        SystemConfig::paper_default(4),
        SyntheticPattern::sequential(0.0),
        120.0,
    );
    assert!(
        r.bandwidth_stack
            .fraction(dramstack::stacks::BwComponent::Read)
            > 0.5,
        "workload should be read-saturated, got {:.2} read share",
        r.bandwidth_stack
            .fraction(dramstack::stacks::BwComponent::Read)
    );
    assert!(
        r.diagnoses
            .iter()
            .any(|d| d.class == BottleneckClass::Saturated),
        "expected a Saturated diagnosis, got {:?}",
        r.diagnoses
    );
}

#[test]
fn refresh_storm_is_diagnosed() {
    // Shrink the refresh interval so REF dominates: t_rfc = 420 out of
    // every t_refi = 2000 cycles is a ~21 % refresh share.
    let mut cfg = SystemConfig::paper_default(1);
    cfg.ctrl.device.timing.t_refi = 2_000;
    let r = run(cfg, SyntheticPattern::sequential(0.0), 120.0);
    assert!(
        r.diagnoses
            .iter()
            .any(|d| d.class == BottleneckClass::RefreshBound),
        "expected a RefreshBound diagnosis, got {:?}",
        r.diagnoses
    );
    // And the diagnosis carries usable guidance.
    let d = r
        .diagnoses
        .iter()
        .find(|d| d.class == BottleneckClass::RefreshBound)
        .unwrap();
    assert!(!d.suggestion.is_empty());
    assert!(d.windows >= 3);
}

#[test]
fn diagnoses_are_deterministic_and_reported_without_telemetry() {
    // The advisor runs at report time over the samples, so diagnoses are
    // identical whether or not live telemetry was attached.
    let mut cfg = SystemConfig::paper_default(1);
    cfg.ctrl.device.timing.t_refi = 2_000;
    let plain = run(cfg.clone(), SyntheticPattern::sequential(0.0), 60.0);
    let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
    sim.enable_telemetry();
    let observed = sim.run_for_us(60.0);
    assert_eq!(plain.diagnoses, observed.diagnoses);
    assert!(!plain.diagnoses.is_empty());
}

#[test]
fn diff_of_self_is_zero_golden() {
    let r = run(
        SystemConfig::paper_default(2),
        SyntheticPattern::random(0.2),
        60.0,
    );
    let (bw, lat) = diff_reports(&r, &r, 0.01);
    assert!(
        bw.is_zero(),
        "bandwidth self-diff not zero: {}",
        bw.render()
    );
    assert!(
        lat.is_zero(),
        "latency self-diff not zero: {}",
        lat.render()
    );
    assert!(bw.dominant().is_none());
    assert!(lat.significant().is_empty());
}

#[test]
fn diff_surfaces_a_refresh_regression() {
    // Same workload, before/after a refresh-rate "regression": the
    // comparator must rank refresh among the significant movers.
    let before = run(
        SystemConfig::paper_default(1),
        SyntheticPattern::sequential(0.0),
        60.0,
    );
    let mut cfg = SystemConfig::paper_default(1);
    cfg.ctrl.device.timing.t_refi = 2_000;
    let after = run(cfg, SyntheticPattern::sequential(0.0), 60.0);
    let (bw, _lat) = diff_reports(&before, &after, 0.01);
    assert!(
        bw.significant()
            .iter()
            .any(|d| d.label == "refresh" && d.delta > 0.0),
        "refresh should move up: {}",
        bw.render()
    );
}

#[test]
fn report_json_roundtrips_with_diagnoses() {
    let mut cfg = SystemConfig::paper_default(1);
    cfg.ctrl.device.timing.t_refi = 2_000;
    let r = run(cfg, SyntheticPattern::sequential(0.0), 60.0);
    assert!(!r.diagnoses.is_empty());
    let json = r.to_json().unwrap();
    let back: SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
}
