//! Perf regression guard for the vendored serde_json parser.
//!
//! PR 8 de-quadratified the string path: the old parser re-validated
//! UTF-8 from the cursor to the *end of input* for every character, so a
//! snapshot-sized document took minutes to parse. The vendor tree is
//! excluded from the workspace, so this guard lives here where tier-1
//! `cargo test` always runs it.

use serde_json::Value;

/// Parsing a multi-MB document with long strings, escapes mid-string,
/// and a wide numeric array must stay comfortably linear. The bound is
/// loose enough for debug builds and CI noise, but the quadratic parser
/// misses it by orders of magnitude (O(n²) over ~6 MB is ~10¹³ byte
/// touches).
#[test]
fn multi_megabyte_documents_parse_in_bounded_time() {
    let long = "x".repeat(1 << 20);
    let mut doc = String::with_capacity(8 << 20);
    doc.push_str("{\"blobs\":[");
    for i in 0..3 {
        if i > 0 {
            doc.push(',');
        }
        // An escape in the middle of each blob keeps the parser flipping
        // between the bulk-run path and the escape path.
        doc.push_str(&format!("\"{long}\\n{long}\""));
    }
    doc.push_str("],\"counts\":[");
    for i in 0..200_000u32 {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&i.to_string());
    }
    doc.push_str("]}");
    assert!(
        doc.len() > 6 << 20,
        "document must be multi-MB to test anything"
    );

    let started = std::time::Instant::now();
    let v: Value = serde_json::from_str(&doc).expect("synthetic document parses");
    let elapsed = started.elapsed();

    // The reconstructed values must be right — speed via wrong answers
    // doesn't count.
    let blobs = v.get("blobs").expect("blobs present");
    assert_eq!(
        blobs.index(2).and_then(|s| match s {
            Value::Str(s) => Some(s.len()),
            _ => None,
        }),
        Some((2 << 20) + 1),
        "escaped long string reconstructed wrong"
    );
    assert_eq!(
        v.get("counts").and_then(|c| c.index(199_999)),
        Some(&Value::Int(199_999)),
        "numeric array reconstructed wrong"
    );

    assert!(
        elapsed.as_secs() < 20,
        "parsing a {} MB document took {elapsed:?} — the string path has \
         gone super-linear again",
        doc.len() >> 20
    );

    // Round-trip the same tree back out and in: serialization shares the
    // bulk-escape path and must stay linear too.
    let started = std::time::Instant::now();
    let text = serde_json::to_string(&v).expect("tree serializes");
    let back: Value = serde_json::from_str(&text).expect("reserialized tree parses");
    assert_eq!(back, v, "roundtrip altered the document");
    assert!(
        started.elapsed().as_secs() < 30,
        "roundtrip took {:?} — serialization or parsing went super-linear",
        started.elapsed()
    );
}
