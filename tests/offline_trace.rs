//! Online vs offline stack construction: the same controller run, once
//! accounted live and once reconstructed from its command trace.

use dramstack::dram::{trace, CycleView};
use dramstack::memctrl::{CtrlConfig, MemoryController};
use dramstack::stacks::offline::stack_from_trace;
use dramstack::stacks::{BandwidthAccountant, BwComponent};

/// Drives a controller with a deterministic request mix, returning the
/// online stack and the recorded command trace.
fn run_online(
    cycles: u64,
    mut arrivals: impl FnMut(u64, &mut MemoryController),
) -> (
    dramstack::stacks::BandwidthStack,
    Vec<dramstack::dram::TimedCommand>,
) {
    let cfg = CtrlConfig::paper_default();
    let peak = cfg.device.peak_bandwidth_gbps();
    let mut ctrl = MemoryController::new(cfg);
    ctrl.enable_command_trace();
    let mut acc = BandwidthAccountant::new(ctrl.total_banks(), peak);
    let mut view = CycleView::idle(ctrl.total_banks());
    for now in 0..cycles {
        arrivals(now, &mut ctrl);
        ctrl.tick(now, &mut view);
        acc.account(&view);
        ctrl.drain_completions().for_each(drop);
    }
    (acc.stack(), ctrl.take_command_trace())
}

#[test]
fn offline_matches_online_for_sequential_reads() {
    let (online, cmds) = run_online(60_000, |now, ctrl| {
        if now % 12 == 0 && ctrl.can_accept_read() {
            ctrl.enqueue_read(now / 12 * 64, 0);
        }
    });
    let offline =
        stack_from_trace(&cmds, dramstack::dram::DeviceConfig::ddr4_2400(), 60_000).unwrap();

    // Deterministically derivable components agree exactly.
    for c in [BwComponent::Read, BwComponent::Write, BwComponent::Refresh] {
        assert!(
            (online.gbps(c) - offline.gbps(c)).abs() < 1e-9,
            "{c}: online {} vs offline {}",
            online.gbps(c),
            offline.gbps(c)
        );
    }
    // Pre/act come from bank states — also deterministic.
    for c in [BwComponent::Precharge, BwComponent::Activate] {
        assert!(
            (online.gbps(c) - offline.gbps(c)).abs() < 0.05,
            "{c}: online {} vs offline {}",
            online.gbps(c),
            offline.gbps(c)
        );
    }
    // Constraint attribution is inferred offline (no arrival times): the
    // lost-cycle mass must match, and the constraints estimate must be in
    // the right ballpark.
    let lost = |s: &dramstack::stacks::BandwidthStack| {
        s.gbps(BwComponent::Constraints) + s.gbps(BwComponent::BankIdle) + s.gbps(BwComponent::Idle)
    };
    assert!((lost(&online) - lost(&offline)).abs() < 0.1);
    assert!(
        (online.gbps(BwComponent::Constraints) - offline.gbps(BwComponent::Constraints)).abs()
            < 1.0,
        "constraints: online {} vs offline {}",
        online.gbps(BwComponent::Constraints),
        offline.gbps(BwComponent::Constraints)
    );
}

#[test]
fn offline_matches_online_for_random_mix_with_writes() {
    let mut state = 0x12345u64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let (online, cmds) = run_online(60_000, move |now, ctrl| {
        if now % 9 == 0 && ctrl.can_accept_read() {
            ctrl.enqueue_read(rng() % (1 << 30), 0);
        }
        if now % 31 == 0 && ctrl.can_accept_write() {
            ctrl.enqueue_write(rng() % (1 << 30));
        }
    });
    let offline =
        stack_from_trace(&cmds, dramstack::dram::DeviceConfig::ddr4_2400(), 60_000).unwrap();
    for c in [BwComponent::Read, BwComponent::Write, BwComponent::Refresh] {
        assert!((online.gbps(c) - offline.gbps(c)).abs() < 1e-9, "{c}");
    }
    assert!(offline.is_consistent());
    assert!(
        (online.gbps(BwComponent::Precharge) - offline.gbps(BwComponent::Precharge)).abs() < 0.1
    );
    assert!((online.gbps(BwComponent::Activate) - offline.gbps(BwComponent::Activate)).abs() < 0.1);
}

#[test]
fn trace_text_roundtrip_preserves_the_stack() {
    let (_, cmds) = run_online(20_000, |now, ctrl| {
        if now % 15 == 0 && ctrl.can_accept_read() {
            ctrl.enqueue_read(now * 64, 0);
        }
    });
    let text = trace::write_trace(&cmds);
    let parsed = trace::parse_trace(&text).unwrap();
    assert_eq!(parsed, cmds);
    let a = stack_from_trace(&cmds, dramstack::dram::DeviceConfig::ddr4_2400(), 20_000).unwrap();
    let b = stack_from_trace(&parsed, dramstack::dram::DeviceConfig::ddr4_2400(), 20_000).unwrap();
    assert_eq!(a, b);
}
