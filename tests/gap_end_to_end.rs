//! End-to-end tests of the GAP kernels through the full simulator.

use dramstack::memctrl::{MappingScheme, PagePolicy};
use dramstack::sim::experiments::{fig9_kernel, run_gap, ExperimentScale};
use dramstack::sim::{Simulator, SystemConfig};
use dramstack::workloads::{GapConfig, GapKernel, Graph};

fn tiny_graph() -> Graph {
    Graph::kronecker(7, 4, 99)
}

#[test]
fn every_kernel_completes_and_produces_consistent_stacks() {
    let g = tiny_graph();
    for kernel in GapKernel::ALL {
        let r = run_gap(
            kernel,
            &g,
            2,
            PagePolicy::Closed,
            MappingScheme::RowBankColumn,
            32,
            &GapConfig::default(),
            50_000_000,
        )
        .unwrap();
        assert!(
            r.instrs_retired > 100,
            "{kernel}: {} instrs",
            r.instrs_retired
        );
        assert!(r.bandwidth_stack.is_consistent(), "{kernel}");
        assert!(
            r.sim_cycles < 50_000_000,
            "{kernel} must finish, not hit the cap"
        );
        if kernel != GapKernel::Tc {
            assert!(r.latency_stack.reads > 0, "{kernel} must read DRAM");
        }
    }
}

#[test]
fn kernels_scale_with_cores() {
    let g = tiny_graph();
    let cfg = GapConfig::default();
    let run = |cores| {
        run_gap(
            GapKernel::Pr,
            &g,
            cores,
            PagePolicy::Closed,
            MappingScheme::RowBankColumn,
            32,
            &cfg,
            50_000_000,
        )
        .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four.sim_cycles < one.sim_cycles,
        "4 cores should finish PageRank faster: {} !< {}",
        four.sim_cycles,
        one.sim_cycles
    );
    // Same total work either way.
    let ratio = four.instrs_retired as f64 / one.instrs_retired as f64;
    assert!(
        (0.95..1.05).contains(&ratio),
        "instruction counts match: {ratio}"
    );
}

#[test]
fn barriers_do_not_deadlock_with_unbalanced_chunks() {
    // 3 cores over a graph whose vertex count is not divisible by 3.
    let g = Graph::uniform(100, 6, 5);
    let traces = GapKernel::Cc.trace(&g, 3, &GapConfig::default());
    let cfg = SystemConfig::paper_gap(3);
    let mut sim = Simulator::with_traces(cfg, traces);
    let r = sim.run_to_completion(20_000_000);
    assert!(sim.finished(), "cc on 3 cores must not deadlock");
    assert!(r.instrs_retired > 0);
}

#[test]
fn fig9_quick_predictions_bracket_reasonably() {
    let scale = ExperimentScale::quick();
    let row = fig9_kernel(GapKernel::Bfs, &scale).unwrap();
    // Predictions are positive, stack ≤ naive, and within 3× of truth.
    assert!(row.stack > 0.0 && row.naive > 0.0);
    assert!(row.stack <= row.naive + 1e-9);
    assert!(
        row.stack_error() < 2.0,
        "stack error {:.2}",
        row.stack_error()
    );
}

#[test]
fn through_time_samples_cover_the_whole_run() {
    let g = tiny_graph();
    let r = run_gap(
        GapKernel::Bfs,
        &g,
        2,
        PagePolicy::Closed,
        MappingScheme::RowBankColumn,
        32,
        &GapConfig::default(),
        50_000_000,
    )
    .unwrap();
    let covered: u64 = r.samples.iter().map(|s| s.cycles).sum();
    assert_eq!(covered, r.sim_cycles, "samples partition the timeline");
    for w in r.samples.windows(2) {
        assert_eq!(w[0].start_cycle + w[0].cycles, w[1].start_cycle);
    }
}
