//! Bit-identity of the busy-path event engine across DDR4 presets and
//! synthetic traffic shapes.
//!
//! The busy engine (timing memoization, dirty-bank tracking, event-horizon
//! stepping) must be a pure performance optimization: with it on or off,
//! `SimReport::strip_perf()` is identical field for field, and the shadow
//! auditor — armed by default in test builds — still sees every command
//! and stays clean. This file pins that deterministically across the full
//! five-preset matrix and over a bounded random sample of configurations.

use proptest::prelude::*;

use dramstack::dram::TimingParams;
use dramstack::memctrl::PagePolicy;
use dramstack::sim::{SimReport, Simulator, SystemConfig};
use dramstack::workloads::{PatternKind, SyntheticPattern};

fn presets() -> [(&'static str, TimingParams); 5] {
    [
        ("ddr4_2133", TimingParams::ddr4_2133()),
        ("ddr4_2400", TimingParams::ddr4_2400()),
        ("ddr4_2666", TimingParams::ddr4_2666()),
        ("ddr4_2933", TimingParams::ddr4_2933()),
        ("ddr4_3200", TimingParams::ddr4_3200()),
    ]
}

fn shapes() -> [(&'static str, SyntheticPattern); 4] {
    let mut seq_rw = SyntheticPattern::sequential(0.3);
    seq_rw.seed = 7;
    let mut rand_mlp = SyntheticPattern::random(0.0);
    rand_mlp.chains = 8;
    let mut rand_rw = SyntheticPattern::random(0.2);
    rand_rw.chains = 2;
    rand_rw.seed = 21;
    [
        ("seq_read", SyntheticPattern::sequential(0.0)),
        ("seq_rw", seq_rw),
        ("rand_mlp", rand_mlp),
        ("rand_rw", rand_rw),
    ]
}

#[allow(clippy::too_many_arguments)]
fn run(
    timing: TimingParams,
    pattern: SyntheticPattern,
    cores: usize,
    channels: usize,
    policy: PagePolicy,
    us: f64,
    busy: bool,
) -> SimReport {
    let mut cfg = SystemConfig::paper_default(cores);
    cfg.ctrl.device.timing = timing;
    cfg.ctrl.page_policy = policy;
    cfg.channels = channels;
    let mut sim = Simulator::with_synthetic(cfg, pattern);
    sim.set_busy_engine(busy);
    sim.run_for_us(us)
}

/// Exhaustive matrix: every DDR4 speed grade × every traffic shape.
#[test]
fn busy_engine_bit_identical_across_preset_matrix() {
    for (tname, timing) in presets() {
        for (pname, pattern) in shapes() {
            let on = run(timing, pattern, 2, 1, PagePolicy::Open, 6.0, true);
            let off = run(timing, pattern, 2, 1, PagePolicy::Open, 6.0, false);
            assert_eq!(
                on.strip_perf(),
                off.strip_perf(),
                "{tname}/{pname}: busy engine changed the report"
            );
            assert_eq!(off.perf.busy_forwarded_cycles, 0, "{tname}/{pname}");
            assert!(
                on.ctrl_stats.reads_done > 0,
                "{tname}/{pname} did no work — the matrix proves nothing"
            );
            // Test builds arm the shadow auditor by default: it must have
            // observed the run and found it clean with the engine on.
            if on.audit.armed {
                assert!(on.audit.commands_audited > 0, "{tname}/{pname}");
                assert!(
                    on.audit.is_clean(),
                    "{tname}/{pname}: {:?}",
                    on.audit.first_violation()
                );
            }
        }
    }
}

fn arbitrary_pattern() -> impl Strategy<Value = SyntheticPattern> {
    (
        prop_oneof![Just(PatternKind::Sequential), Just(PatternKind::Random)],
        0u32..=100,
        1u8..=8,
        any::<u64>(),
    )
        .prop_map(|(kind, store_pct, chains, seed)| {
            let mut p = match kind {
                PatternKind::Sequential => {
                    SyntheticPattern::sequential(f64::from(store_pct) / 100.0)
                }
                PatternKind::Random => SyntheticPattern::random(f64::from(store_pct) / 100.0),
            };
            p.chains = chains;
            p.seed = seed;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized corner of the matrix: any preset, shape, core count,
    /// channel count and page policy — still bit-identical, still clean.
    #[test]
    fn busy_engine_bit_identical_on_random_configs(
        preset in 0usize..5,
        pattern in arbitrary_pattern(),
        cores in 1usize..=4,
        channels in prop_oneof![Just(1usize), Just(2usize)],
        policy in prop_oneof![Just(PagePolicy::Open), Just(PagePolicy::Closed)],
    ) {
        let timing = presets()[preset].1;
        let on = run(timing, pattern, cores, channels, policy, 5.0, true);
        let off = run(timing, pattern, cores, channels, policy, 5.0, false);
        prop_assert_eq!(on.strip_perf(), off.strip_perf());
        prop_assert_eq!(off.perf.busy_forwarded_cycles, 0);
        if on.audit.armed {
            prop_assert!(on.audit.is_clean(), "{:?}", on.audit.first_violation());
        }
    }
}
