//! Lifecycle tests for the `dramstack serve` daemon: admission control,
//! backpressure, fault isolation, slow clients, and graceful drain — all
//! in-process against a loopback listener on an OS-assigned port.

use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use dramstack::memctrl::{MappingScheme, PagePolicy};
use dramstack::serve::{Client, ClientError, ServeConfig, Server, ServerHandle};
use dramstack::sim::experiments::run_synthetic;
use dramstack::sim::SimReport;
use dramstack::workloads::SyntheticPattern;
use serde::Value;

/// A config sized for tests: tiny queue, short deadlines, fast drain.
fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_cap: 4,
        max_body_bytes: 8 * 1024,
        read_timeout: Duration::from_millis(400),
        write_timeout: Duration::from_secs(2),
        job_deadline: Some(Duration::from_secs(120)),
        job_stall_timeout: Duration::from_millis(700),
        drain_grace: Duration::from_secs(60),
        checkpoint_dir: None,
        max_connections: 64,
    }
}

/// Spawns a server and returns (address string, handle, serve thread).
fn spawn_server(cfg: ServeConfig) -> (String, ServerHandle, thread::JoinHandle<()>) {
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = thread::spawn(move || {
        let _ = server.serve();
    });
    (addr, handle, join)
}

fn drain_and_join(handle: &ServerHandle, join: thread::JoinHandle<()>) {
    handle.drain();
    join.join().expect("serve loop exits cleanly");
}

fn jfield<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn jstr<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match jfield(v, key)? {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Parses a `GET /jobs/<id>` body and returns (status, whole value).
fn parse_status(body: &str) -> (String, Value) {
    let v: Value = serde_json::from_str(body).expect("status body is JSON");
    let status = jstr(&v, "status").expect("status field").to_string();
    (status, v)
}

/// Extracts the embedded report from a `done` status body.
fn report_of(v: &Value) -> SimReport {
    let report = jfield(v, "report").expect("done status embeds report");
    serde_json::from_value(report).expect("report deserializes")
}

/// Polls until the job is observed `running` (picked up by a worker),
/// so saturation/drain tests are race-free.
fn wait_running(client: &Client, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _) = parse_status(&client.job_status(id).unwrap());
        if status == "running" {
            return;
        }
        assert!(
            status == "queued",
            "job {id} reached `{status}` before running"
        );
        assert!(Instant::now() < deadline, "job {id} never started");
        thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn health_metrics_and_job_roundtrip() {
    let (addr, handle, join) = spawn_server(test_config());
    let client = Client::new(addr);

    assert_eq!(client.healthz().unwrap().trim(), "ok");
    assert!(client.readyz().unwrap());

    // 60 µs spans several 12 000-cycle sample windows, so the stream
    // has telemetry to replay.
    let id = client
        .submit_job(r#"{"pattern":"seq","cores":1,"us":60}"#)
        .unwrap();
    let (status, v) = parse_status(&client.wait_job(id, Duration::from_secs(120)).unwrap());
    assert_eq!(status, "done");
    let report = report_of(&v);
    assert!(report.achieved_gbps() > 0.0);

    // The stream replays the job's telemetry as JSONL even after the
    // job finished, and every line is an object with the stack fields.
    let lines = client.stream_lines(id).unwrap();
    assert!(!lines.is_empty(), "telemetry stream should have windows");
    for l in &lines {
        let rec: Value = serde_json::from_str(l).expect("stream line is JSON");
        assert!(
            jfield(&rec, "bw_share").is_some(),
            "missing stack shares: {l}"
        );
    }

    // Fleet metrics aggregate the windows and count the job.
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("dramstack_windows_total"), "{metrics}");
    assert!(
        metrics.contains("dramstack_serve_jobs_total{disposition=\"completed\"} 1"),
        "{metrics}"
    );

    // Unknown jobs 404 (surfacing as a typed Status error).
    match client.job_status(999) {
        Err(ClientError::Status { code: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }
    // Malformed specs are rejected at admission with a typed 400.
    match client.submit_job(r#"{"pattern":"seq","bogus":1}"#) {
        Err(ClientError::Status { code: 400, body }) => {
            assert!(body.contains("bogus"), "{body}");
        }
        other => panic!("expected 400, got {other:?}"),
    }

    drain_and_join(&handle, join);
}

#[test]
fn served_results_match_direct_simulation_bit_identically() {
    let (addr, handle, join) = spawn_server(test_config());
    let client = Client::new(addr);

    let id = client
        .submit_job(r#"{"pattern":"rand","cores":2,"stores":0.2,"us":5}"#)
        .unwrap();
    let (status, v) = parse_status(&client.wait_job(id, Duration::from_secs(120)).unwrap());
    assert_eq!(status, "done");
    let served = report_of(&v);

    let direct = run_synthetic(
        2,
        SyntheticPattern::random(0.2),
        PagePolicy::Open,
        MappingScheme::RowBankColumn,
        5.0,
    )
    .unwrap();
    assert_eq!(
        served.strip_perf(),
        direct.strip_perf(),
        "served report diverged from a direct Simulator run"
    );

    drain_and_join(&handle, join);
}

#[test]
fn queue_full_sheds_with_429_and_recovers() {
    let mut cfg = test_config();
    cfg.workers = 1;
    cfg.queue_cap = 1;
    let (addr, handle, join) = spawn_server(cfg);
    let client = Client::new(addr);

    // One long job occupies the single worker, one fills the queue;
    // the next submission must shed with 429.
    let running = client
        .submit_job(r#"{"pattern":"seq","cores":1,"us":200}"#)
        .unwrap();
    wait_running(&client, running);
    let queued = client
        .submit_job(r#"{"pattern":"seq","cores":1,"us":5}"#)
        .unwrap();
    match client.submit_job(r#"{"pattern":"seq","cores":1,"us":5}"#) {
        Err(ClientError::Status { code: 429, body }) => {
            assert!(body.contains("queue full"), "{body}");
        }
        other => panic!("expected 429 shed, got {other:?}"),
    }

    // Reads keep working while saturated — shedding is load-specific.
    assert_eq!(client.healthz().unwrap().trim(), "ok");
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("dramstack_serve_jobs_total{disposition=\"shed_429\"} 1"),
        "{metrics}"
    );

    // Once the backlog clears, the retrying submitter gets through.
    client.wait_job(running, Duration::from_secs(180)).unwrap();
    client.wait_job(queued, Duration::from_secs(180)).unwrap();
    let mut retry = client.clone();
    retry.retries = 10;
    retry.backoff = Duration::from_millis(100);
    let id = retry
        .submit_job_with_retry(r#"{"pattern":"seq","cores":1,"us":5}"#)
        .expect("recovered after shed");
    let (status, _) = parse_status(&retry.wait_job(id, Duration::from_secs(120)).unwrap());
    assert_eq!(status, "done");

    drain_and_join(&handle, join);
}

#[test]
fn injected_panic_is_a_typed_failure_and_siblings_complete() {
    let (addr, handle, join) = spawn_server(test_config());
    let client = Client::new(addr);

    let bad = client
        .submit_job(r#"{"pattern":"seq","cores":1,"us":5,"inject_panic":true}"#)
        .unwrap();
    let good = client
        .submit_job(r#"{"pattern":"seq","cores":1,"us":5}"#)
        .unwrap();

    let (bad_status, bad_v) = parse_status(&client.wait_job(bad, Duration::from_secs(60)).unwrap());
    assert_eq!(bad_status, "failed");
    let err = jstr(&bad_v, "error").expect("failed status carries error");
    assert!(err.contains("injected failure"), "{err}");

    // The sibling is untouched by the panic, and the server still
    // accepts new work afterwards.
    let (good_status, _) = parse_status(&client.wait_job(good, Duration::from_secs(120)).unwrap());
    assert_eq!(good_status, "done");
    let after = client
        .submit_job(r#"{"pattern":"seq","cores":1,"us":5}"#)
        .unwrap();
    let (after_status, _) =
        parse_status(&client.wait_job(after, Duration::from_secs(120)).unwrap());
    assert_eq!(after_status, "done");

    drain_and_join(&handle, join);
}

#[test]
fn hung_job_is_reclaimed_by_the_watchdog() {
    let (addr, handle, join) = spawn_server(test_config());
    let client = Client::new(addr);

    let hung = client
        .submit_job(r#"{"pattern":"seq","cores":1,"us":5,"inject_hang":true}"#)
        .unwrap();
    // The stall watchdog (700 ms in the test config) abandons the hung
    // attempt and reports a typed timeout; the worker survives.
    let (status, _) = parse_status(&client.wait_job(hung, Duration::from_secs(60)).unwrap());
    assert_eq!(status, "timed_out");

    let next = client
        .submit_job(r#"{"pattern":"seq","cores":1,"us":5}"#)
        .unwrap();
    let (next_status, _) = parse_status(&client.wait_job(next, Duration::from_secs(120)).unwrap());
    assert_eq!(next_status, "done");

    drain_and_join(&handle, join);
}

#[test]
fn slow_client_hits_read_deadline_without_stalling_others() {
    let (addr, handle, join) = spawn_server(test_config());

    // A slow-loris connection: opens, dribbles half a request line, and
    // stalls. The 400 ms read deadline must cut it off.
    let mut loris = TcpStream::connect(&addr).expect("connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    loris.write_all(b"POST /jo").expect("partial write");

    // Meanwhile a healthy client gets served immediately.
    let client = Client::new(addr.clone());
    let t0 = Instant::now();
    assert_eq!(client.healthz().unwrap().trim(), "ok");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "healthz stalled behind a slow client: {:?}",
        t0.elapsed()
    );

    // The loris connection is answered with a typed 408 (or dropped
    // outright, which is also an acceptable defense).
    if let Ok(resp) = dramstack::serve::http::read_response(&mut loris) {
        assert_eq!(resp.status, 408, "{}", resp.text());
    }

    // Oversized bodies shed with a typed 413 before any job work.
    let mut big = Client::new(addr);
    big.retries = 0;
    let oversized = format!(
        r#"{{"pattern":"seq","us":5,"mapping":"{}"}}"#,
        "x".repeat(16 * 1024)
    );
    match big.submit_job(&oversized) {
        Err(ClientError::Status { code: 413, .. }) => {}
        other => panic!("expected 413, got {other:?}"),
    }

    drain_and_join(&handle, join);
}

#[test]
fn drain_rejects_new_work_and_finishes_in_flight() {
    let mut cfg = test_config();
    cfg.workers = 1;
    let (addr, handle, join) = spawn_server(cfg);
    let client = Client::new(addr);

    // Long enough that drain is still in progress while we probe.
    let inflight = client
        .submit_job(r#"{"pattern":"seq","cores":1,"us":200}"#)
        .unwrap();
    wait_running(&client, inflight);

    handle.drain();
    // New jobs are refused with a typed 503 the moment drain is
    // requested, while reads keep being served for the whole drain.
    match client.submit_job(r#"{"pattern":"seq","us":5}"#) {
        Err(ClientError::Status { code: 503, body }) => {
            assert!(body.contains("draining"), "{body}");
        }
        other => panic!("drain did not refuse submissions: {other:?}"),
    }
    assert_eq!(client.healthz().unwrap().trim(), "ok");
    assert!(!client.readyz().unwrap(), "readyz should flip during drain");

    join.join().expect("serve loop exits after drain");
    // The in-flight job was given its grace period and finished; any
    // submissions that slipped in before the flag flipped were shed.
    let stats = handle.stats();
    assert_eq!(stats.completed, 1, "{stats:?}");
    assert_eq!(stats.failed, 0, "{stats:?}");
    let terminal =
        stats.completed + stats.failed + stats.timed_out + stats.cancelled + stats.shed_drain;
    assert_eq!(stats.accepted, terminal, "{stats:?}");
}

#[test]
fn chaos_mixed_workload_sheds_isolates_and_drains() {
    let mut cfg = test_config();
    cfg.workers = 2;
    cfg.queue_cap = 2;
    let ckpt_dir =
        std::env::temp_dir().join(format!("dramstack-serve-chaos-{}", std::process::id()));
    cfg.checkpoint_dir = Some(ckpt_dir.clone());
    let (addr, handle, join) = spawn_server(cfg);
    let client = Client::new(addr);
    let mut retry = client.clone();
    retry.retries = 30;
    retry.backoff = Duration::from_millis(100);

    // Mixed burst over a tiny queue: healthy jobs, one injected panic,
    // one hang. Eager submission provokes 429s; the retrying submitter
    // eventually lands every job.
    let specs = [
        r#"{"pattern":"seq","cores":1,"us":5}"#,
        r#"{"pattern":"rand","cores":2,"stores":0.2,"us":5}"#,
        r#"{"pattern":"seq","cores":1,"us":5,"inject_panic":true}"#,
        r#"{"pattern":"seq","cores":1,"us":5,"inject_hang":true}"#,
        r#"{"pattern":"rand","cores":1,"us":5}"#,
        r#"{"pattern":"seq","cores":2,"us":5}"#,
    ];
    let mut saw_429 = false;
    let mut ids = Vec::new();
    for spec in specs {
        match client.submit_job(spec) {
            Ok(id) => ids.push((spec, id)),
            Err(ClientError::Status { code: 429, .. }) => {
                saw_429 = true;
                let id = retry
                    .submit_job_with_retry(spec)
                    .expect("retry until accepted");
                ids.push((spec, id));
            }
            Err(other) => panic!("submit failed: {other}"),
        }
    }
    if !saw_429 {
        // Workers kept pace with the burst; saturate explicitly to
        // prove shedding still guards the queue.
        let mut refused = false;
        for _ in 0..40 {
            match client.submit_job(r#"{"pattern":"seq","us":120}"#) {
                Err(ClientError::Status { code: 429, .. }) => {
                    refused = true;
                    break;
                }
                _ => thread::sleep(Duration::from_millis(10)),
            }
        }
        assert!(refused, "overload never shed with 429");
    }

    // Every healthy job completes bit-identically to a direct run; the
    // injected failures come back as typed terminal statuses.
    for (spec, id) in &ids {
        let (status, v) = parse_status(&client.wait_job(*id, Duration::from_secs(300)).unwrap());
        if spec.contains("inject_panic") {
            assert_eq!(status, "failed", "{spec}");
        } else if spec.contains("inject_hang") {
            assert_eq!(status, "timed_out", "{spec}");
        } else {
            assert_eq!(status, "done", "{spec}");
            let served = report_of(&v);
            let cores = if spec.contains("\"cores\":2") { 2 } else { 1 };
            let stores = if spec.contains("0.2") { 0.2 } else { 0.0 };
            let pattern = if spec.contains("rand") {
                SyntheticPattern::random(stores)
            } else {
                SyntheticPattern::sequential(stores)
            };
            let direct = run_synthetic(
                cores,
                pattern,
                PagePolicy::Open,
                MappingScheme::RowBankColumn,
                5.0,
            )
            .unwrap();
            assert_eq!(
                served.strip_perf(),
                direct.strip_perf(),
                "{spec}: served report diverged from direct run"
            );
        }
    }

    // Mid-burst drain: land fresh work (guaranteed ≥ 1 via retry), then
    // drain before it all finishes.
    retry
        .submit_job_with_retry(r#"{"pattern":"seq","us":60}"#)
        .expect("late job accepted");
    let _extra: Vec<u64> = (0..2)
        .filter_map(|_| client.submit_job(r#"{"pattern":"seq","us":60}"#).ok())
        .collect();
    handle.drain();
    join.join().expect("serve loop exits after chaos drain");

    let stats = handle.stats();
    // Everything accepted reached a terminal disposition — nothing lost.
    let terminal =
        stats.completed + stats.failed + stats.timed_out + stats.cancelled + stats.shed_drain;
    assert_eq!(stats.accepted, terminal, "{stats:?}");
    assert!(stats.failed >= 1, "panic not recorded: {stats:?}");
    assert!(stats.timed_out >= 1, "hang not recorded: {stats:?}");

    std::fs::remove_dir_all(&ckpt_dir).ok();
}
