//! Property-based tests of the stack-accounting invariants across random
//! configurations of the full system.

use proptest::prelude::*;

use dramstack::memctrl::{MappingScheme, PagePolicy};
use dramstack::sim::experiments::run_synthetic;
use dramstack::stacks::{extrapolate_stack, BwComponent, LatComponent};
use dramstack::workloads::{PatternKind, SyntheticPattern};

fn arbitrary_pattern() -> impl Strategy<Value = SyntheticPattern> {
    (
        prop_oneof![Just(PatternKind::Sequential), Just(PatternKind::Random)],
        0u32..=100,
        1u8..=8,
        any::<u64>(),
    )
        .prop_map(|(kind, store_pct, chains, seed)| {
            let mut p = match kind {
                PatternKind::Sequential => {
                    SyntheticPattern::sequential(f64::from(store_pct) / 100.0)
                }
                PatternKind::Random => SyntheticPattern::random(f64::from(store_pct) / 100.0),
            };
            p.chains = chains;
            p.seed = seed;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the workload, the bandwidth stack partitions total time:
    /// all components non-negative and summing to the peak.
    #[test]
    fn bandwidth_stack_partitions_time(
        pattern in arbitrary_pattern(),
        cores in 1usize..=4,
        policy in prop_oneof![Just(PagePolicy::Open), Just(PagePolicy::Closed)],
        mapping in prop_oneof![
            Just(MappingScheme::RowBankColumn),
            Just(MappingScheme::CacheLineInterleaved)
        ],
    ) {
        let r = run_synthetic(cores, pattern, policy, mapping, 10.0).unwrap();
        prop_assert!(r.bandwidth_stack.is_consistent());
        prop_assert!((r.bandwidth_stack.total_gbps() - 19.2).abs() < 1e-6);
        for c in BwComponent::ALL {
            prop_assert!(r.bandwidth_stack.gbps(c) >= -1e-9, "{c} negative");
        }
        // Achieved bandwidth never exceeds peak − refresh.
        let cap = 19.2 - r.bandwidth_stack.gbps(BwComponent::Refresh);
        prop_assert!(r.achieved_gbps() <= cap + 1e-6);
    }

    /// Latency components are non-negative and sum to the total for every
    /// run; base is a true lower bound on the average.
    #[test]
    fn latency_stack_components_sum(
        pattern in arbitrary_pattern(),
        cores in 1usize..=4,
    ) {
        let r = run_synthetic(cores, pattern, PagePolicy::Open, MappingScheme::RowBankColumn, 10.0).unwrap();
        if r.latency_stack.reads == 0 {
            return Ok(());
        }
        let total: f64 = LatComponent::ALL.iter().map(|&c| r.latency_stack.ns(c)).sum();
        prop_assert!((total - r.latency_stack.total_ns()).abs() < 1e-9);
        for c in LatComponent::ALL {
            prop_assert!(r.latency_stack.ns(c) >= 0.0);
        }
        // Base = controller overhead + CL + burst (in ns at 1.2 GHz).
        let base = (30.0 + 17.0 + 4.0) * (1000.0 / 1200.0);
        prop_assert!((r.latency_stack.base_ns() - base).abs() < 0.01);
        prop_assert!(r.latency_stack.total_ns() >= base - 1e-9);
    }

    /// Extrapolation invariants hold on arbitrary measured stacks.
    #[test]
    fn extrapolation_preserves_stack_invariants(
        pattern in arbitrary_pattern(),
        k in 1.0f64..16.0,
    ) {
        let r = run_synthetic(1, pattern, PagePolicy::Open, MappingScheme::RowBankColumn, 10.0).unwrap();
        let e = extrapolate_stack(&r.bandwidth_stack, k);
        prop_assert!(e.is_consistent());
        prop_assert!((e.total_gbps() - 19.2).abs() < 1e-6);
        // Refresh untouched; idle kinds never scale up.
        prop_assert!(
            (e.gbps(BwComponent::Refresh) - r.bandwidth_stack.gbps(BwComponent::Refresh)).abs()
                < 1e-9
        );
        prop_assert!(e.achieved_gbps() <= 19.2 - e.gbps(BwComponent::Refresh) + 1e-6);
        // Monotone in k: more cores never predict less bandwidth.
        let e_half = extrapolate_stack(&r.bandwidth_stack, k / 2.0);
        prop_assert!(e.achieved_gbps() >= e_half.achieved_gbps() - 1e-9);
    }
}
