//! Integration tests of the beyond-the-paper extensions: XOR-permutation
//! mapping, STREAM kernels, pointer-chase latency, phase detection and
//! latency histograms.

use dramstack::memctrl::{MappingScheme, PagePolicy};
use dramstack::sim::experiments::run_synthetic;
use dramstack::sim::{Simulator, SystemConfig};
use dramstack::stacks::through_time::detect_phases;
use dramstack::stacks::LatComponent;
use dramstack::workloads::{pointer_chase_trace, stream_trace, StreamKernel, SyntheticPattern};

#[test]
fn xor_permutation_runs_and_stays_consistent() {
    let r = run_synthetic(
        2,
        SyntheticPattern::sequential(0.2),
        PagePolicy::Open,
        MappingScheme::PermutationXor,
        20.0,
    )
    .unwrap();
    assert!(r.bandwidth_stack.is_consistent());
    assert!(r.achieved_gbps() > 1.0);
    // Sequential-within-a-row locality is preserved by the permutation.
    assert!(
        r.ctrl_stats.read_hit_rate() > 0.5,
        "hit rate {}",
        r.ctrl_stats.read_hit_rate()
    );
}

#[test]
fn stream_triad_reads_twice_as_much_as_it_writes() {
    let traces = stream_trace(StreamKernel::Triad, 2, 100_000);
    let mut cfg = SystemConfig::paper_gap(2);
    cfg.sample_period = 2_400;
    let mut sim = Simulator::with_traces(cfg, traces);
    let r = sim.run_to_completion(100_000_000);
    let read = r.bandwidth_stack.gbps(dramstack::stacks::BwComponent::Read);
    let write = r
        .bandwidth_stack
        .gbps(dramstack::stacks::BwComponent::Write);
    assert!(write > 0.5, "triad writes: {write}");
    // Triad: 2 algorithm reads + 1 write-allocate read per store ≈ 3:1 in
    // steady state; a single cold pass under-counts writes because the
    // last LLC-full of dirty lines never gets evicted before the run ends.
    let ratio = read / write;
    assert!((2.0..9.0).contains(&ratio), "read:write {ratio}");
}

#[test]
fn stream_kernels_all_complete_and_saturate_reasonably() {
    for kernel in StreamKernel::ALL {
        let traces = stream_trace(kernel, 4, 50_000);
        let cfg = SystemConfig::paper_gap(4);
        let mut sim = Simulator::with_traces(cfg, traces);
        let r = sim.run_to_completion(100_000_000);
        assert!(sim.finished(), "{kernel}");
        assert!(r.achieved_gbps() > 5.0, "{kernel}: {}", r.achieved_gbps());
    }
}

#[test]
fn pointer_chase_latency_is_base_plus_row_miss_without_queueing() {
    // 8 KiB stride over 64 MB: every access opens a new row, one at a time.
    let trace = pointer_chase_trace(64 << 20, 8192, 2_000);
    let mut sim = Simulator::with_traces(SystemConfig::paper_default(1), trace);
    let r = sim.run_to_completion(50_000_000);
    let expected_base = (30.0 + 17.0 + 4.0) * (1000.0 / 1200.0);
    assert!((r.latency_stack.base_ns() - expected_base).abs() < 0.1);
    assert!(
        r.latency_stack.ns(LatComponent::PreAct) > 20.0,
        "row misses dominate: {:?}",
        r.latency_stack
    );
    assert!(
        r.latency_stack.ns(LatComponent::Queue) < 2.0,
        "a dependent chain cannot queue on itself"
    );
    // The histogram is tight: p99 close to the mean (no contention).
    let h = &r.latency_histogram;
    assert!(h.count() >= 1_900);
    assert!(
        h.percentile(99.0) as f64 <= 2.5 * h.mean(),
        "tail {:?} mean {}",
        h.percentile(99.0),
        h.mean()
    );
}

#[test]
fn sequential_chase_hits_open_rows() {
    // 64 B stride: 128 consecutive accesses share a row — page hits, much
    // lower latency than the row-miss chase.
    let miss_chase = pointer_chase_trace(64 << 20, 8192, 1_000);
    let hit_chase = pointer_chase_trace(64 << 20, 64, 1_000);
    let run = |t| {
        let mut sim = Simulator::with_traces(SystemConfig::paper_default(1), t);
        sim.run_to_completion(50_000_000).avg_read_latency_ns()
    };
    let miss_ns = run(miss_chase);
    let hit_ns = run(hit_chase);
    assert!(hit_ns < miss_ns - 15.0, "hits {hit_ns} vs misses {miss_ns}");
}

#[test]
fn gap_bfs_produces_detectable_phases() {
    use dramstack::sim::experiments::{run_gap, ExperimentScale};
    use dramstack::workloads::GapKernel;
    let scale = ExperimentScale::quick();
    let g = scale.build_graph();
    let mut r = run_gap(
        GapKernel::Bfs,
        &g,
        4,
        PagePolicy::Closed,
        MappingScheme::RowBankColumn,
        32,
        &scale.gap,
        scale.max_cycles,
    )
    .unwrap();
    // Shrink windows to get a usable series even on the quick graph.
    if r.samples.len() < 4 {
        // Re-run with finer sampling.
        let mut cfg = SystemConfig::paper_gap(4);
        cfg.sample_period = 300;
        let traces = GapKernel::Bfs.trace(&g, 4, &scale.gap);
        let mut sim = Simulator::with_traces(cfg, traces);
        r = sim.run_to_completion(scale.max_cycles);
    }
    let phases = detect_phases(&r.samples, 0.15, 2);
    assert!(!phases.is_empty());
    let covered: u64 = phases.iter().map(|p| p.cycles).sum();
    assert_eq!(covered, r.sim_cycles, "phases partition the run");
}
