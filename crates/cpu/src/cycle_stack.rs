//! CPU cycle (CPI) stacks, the companion representation the paper
//! correlates with bandwidth/latency stacks in Fig. 7.

use serde::{Deserialize, Serialize};

/// Where one core cycle went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CycleComponent {
    /// Retiring instructions.
    Base,
    /// Recovering from a branch mispredict.
    Branch,
    /// Stalled on a load served by L2/LLC.
    Dcache,
    /// Stalled on a DRAM load, within the uncontended latency window.
    DramBase,
    /// Stalled on a DRAM load beyond the uncontended latency — queueing.
    DramQueue,
    /// No work: program finished or waiting at a barrier.
    Idle,
}

impl CycleComponent {
    /// All components in stack order.
    pub const ALL: [CycleComponent; 6] = [
        CycleComponent::Base,
        CycleComponent::Branch,
        CycleComponent::Dcache,
        CycleComponent::DramBase,
        CycleComponent::DramQueue,
        CycleComponent::Idle,
    ];

    /// Number of components.
    pub const COUNT: usize = 6;

    /// Stable index into component arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Label used in figure output (matches the paper's Fig. 7 legend).
    pub fn label(self) -> &'static str {
        match self {
            CycleComponent::Base => "base",
            CycleComponent::Branch => "branch",
            CycleComponent::Dcache => "dcache",
            CycleComponent::DramBase => "dram-latency",
            CycleComponent::DramQueue => "dram-queue",
            CycleComponent::Idle => "idle",
        }
    }
}

impl std::fmt::Display for CycleComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An accumulating cycle stack for one core (or summed over cores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleStack {
    counts: [u64; CycleComponent::COUNT],
    total: u64,
}

impl CycleStack {
    /// A fresh, empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one cycle.
    pub fn add(&mut self, c: CycleComponent) {
        self.counts[c.index()] += 1;
        self.total += 1;
    }

    /// Records `n` cycles of the same component — exact integer equivalent
    /// of calling [`add`](Self::add) `n` times, used by bulk idle
    /// fast-forwarding.
    pub fn add_n(&mut self, c: CycleComponent, n: u64) {
        self.counts[c.index()] += n;
        self.total += n;
    }

    /// Cycles attributed to `c`.
    pub fn cycles(&self, c: CycleComponent) -> u64 {
        self.counts[c.index()]
    }

    /// Total cycles recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of all cycles in `c`, in `[0, 1]`.
    pub fn fraction(&self, c: CycleComponent) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[c.index()] as f64 / self.total as f64
    }

    /// Merges another stack into this one.
    pub fn merge(&mut self, other: &CycleStack) {
        for i in 0..CycleComponent::COUNT {
            self.counts[i] += other.counts[i];
        }
        self.total += other.total;
    }

    /// Returns the stack accumulated since the last call and resets — the
    /// through-time sampling primitive.
    pub fn take_sample(&mut self) -> CycleStack {
        std::mem::take(self)
    }

    /// `(component, fraction)` rows in stack order.
    pub fn rows(&self) -> Vec<(CycleComponent, f64)> {
        CycleComponent::ALL
            .iter()
            .map(|&c| (c, self.fraction(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_fractions() {
        let mut s = CycleStack::new();
        for _ in 0..3 {
            s.add(CycleComponent::Base);
        }
        s.add(CycleComponent::DramQueue);
        assert_eq!(s.total(), 4);
        assert_eq!(s.cycles(CycleComponent::Base), 3);
        assert!((s.fraction(CycleComponent::Base) - 0.75).abs() < 1e-12);
        let sum: f64 = CycleComponent::ALL.iter().map(|&c| s.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_sample() {
        let mut a = CycleStack::new();
        a.add(CycleComponent::Idle);
        let mut b = CycleStack::new();
        b.add(CycleComponent::Idle);
        b.add(CycleComponent::Branch);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        let sampled = a.take_sample();
        assert_eq!(sampled.total(), 3);
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn empty_stack_fractions_are_zero() {
        let s = CycleStack::new();
        assert_eq!(s.fraction(CycleComponent::Base), 0.0);
    }
}
