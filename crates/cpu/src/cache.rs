//! A set-associative, write-back, write-allocate cache with LRU
//! replacement.
//!
//! Addresses are handled at line granularity (the caller strips the
//! offset). The cache returns evicted dirty lines so the hierarchy can
//! cascade writebacks.

use serde::{Deserialize, Serialize, Value};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in core cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / u64::from(self.line_bytes) / u64::from(self.ways)
    }

    /// 32 KB, 8-way L1 data cache, 4-cycle hit (the paper's setup).
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 32 << 10,
            ways: 8,
            line_bytes: 64,
            latency: 4,
        }
    }

    /// 1 MB, 16-way private L2, 14-cycle hit.
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 1 << 20,
            ways: 16,
            line_bytes: 64,
            latency: 14,
        }
    }

    /// 11 MB, 11-way shared LLC, 44-cycle hit (8 NUCA slices averaged).
    pub fn llc() -> Self {
        CacheConfig {
            size_bytes: 11 << 20,
            ways: 11,
            line_bytes: 64,
            latency: 44,
        }
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been allocated; `writeback` carries the
    /// evicted dirty line's address, if any.
    Miss {
        /// Dirty victim line address that must be written to the next
        /// level.
        writeback: Option<u64>,
    },
}

#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Per-cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and allocated).
    pub misses: u64,
    /// Dirty evictions produced.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.misses as f64 / total as f64
    }
}

/// One cache level.
///
/// # Example
///
/// ```
/// use dramstack_cpu::{Cache, CacheConfig, CacheOutcome};
///
/// let mut l1 = Cache::new(CacheConfig::l1d());
/// assert_eq!(l1.access(0x1000, false), CacheOutcome::Miss { writeback: None });
/// assert_eq!(l1.access(0x1000, true), CacheOutcome::Hit); // now dirty
/// assert!(l1.probe(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>,
    set_shift: u32,
    set_mask: u64,
    clock: u64,
    stats: CacheStats,
    // Checkpoint dirty tracking: a set is dirty iff `set_gen[set] == gen`.
    // Bumping `gen` marks every set clean in O(1). Excluded from
    // `PartialEq` and serialization so tracker state can never perturb
    // determinism or the on-disk format.
    gen: u64,
    set_gen: Vec<u64>,
}

// Tracker fields (`gen`, `set_gen`) are deliberately ignored: two caches
// holding the same lines are equal regardless of checkpoint bookkeeping.
impl PartialEq for Cache {
    fn eq(&self, other: &Self) -> bool {
        self.cfg == other.cfg
            && self.ways == other.ways
            && self.set_shift == other.set_shift
            && self.set_mask == other.set_mask
            && self.clock == other.clock
            && self.stats == other.stats
    }
}

/// Columnar serialization: instead of one map per [`Way`] (hundreds of
/// thousands of tiny maps in a full-size snapshot), the way array is
/// emitted as four flat columns — `tags`/`lru` as integer sequences and
/// `valid`/`dirty` as u64 bitset words over a flattened index.
///
/// The columns are *way-major* (`column[w * sets + s]`), not set-major:
/// under streaming traffic, neighbouring sets hold the same tag in the
/// same way (the tag excludes the set-index bits), so way-major order
/// produces long constant runs that the binary codec's run-length
/// encoding collapses to a few bytes. Set-major order interleaves the
/// ways and destroys those runs.
impl Serialize for Cache {
    fn to_value(&self) -> Value {
        let n = self.ways.len();
        let per_set = self.cfg.ways as usize;
        let sets = n / per_set;
        let mut tags = Vec::with_capacity(n);
        let mut lru = Vec::with_capacity(n);
        let words = n.div_ceil(64);
        let mut valid = vec![0u64; words];
        let mut dirty = vec![0u64; words];
        for w in 0..per_set {
            for s in 0..sets {
                let way = &self.ways[s * per_set + w];
                let j = tags.len();
                tags.push(Value::Int(i128::from(way.tag)));
                lru.push(Value::Int(i128::from(way.lru)));
                if way.valid {
                    valid[j / 64] |= 1 << (j % 64);
                }
                if way.dirty {
                    dirty[j / 64] |= 1 << (j % 64);
                }
            }
        }
        let bits =
            |v: Vec<u64>| Value::Seq(v.into_iter().map(|w| Value::Int(i128::from(w))).collect());
        Value::Map(vec![
            ("cfg".to_string(), self.cfg.to_value()),
            ("set_shift".to_string(), self.set_shift.to_value()),
            ("set_mask".to_string(), self.set_mask.to_value()),
            ("clock".to_string(), self.clock.to_value()),
            ("stats".to_string(), self.stats.to_value()),
            ("tags".to_string(), Value::Seq(tags)),
            ("lru".to_string(), Value::Seq(lru)),
            ("valid".to_string(), bits(valid)),
            ("dirty".to_string(), bits(dirty)),
        ])
    }
}

impl Deserialize for Cache {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let cfg = CacheConfig::from_value(serde::get_field(v, "cfg")?)?;
        let set_shift = u32::from_value(serde::get_field(v, "set_shift")?)?;
        let set_mask = u64::from_value(serde::get_field(v, "set_mask")?)?;
        let clock = u64::from_value(serde::get_field(v, "clock")?)?;
        let stats = CacheStats::from_value(serde::get_field(v, "stats")?)?;
        let tags = Vec::<u64>::from_value(serde::get_field(v, "tags")?)?;
        let lru = Vec::<u64>::from_value(serde::get_field(v, "lru")?)?;
        let valid = Vec::<u64>::from_value(serde::get_field(v, "valid")?)?;
        let dirty = Vec::<u64>::from_value(serde::get_field(v, "dirty")?)?;
        let n = tags.len();
        if lru.len() != n {
            return Err(serde::Error::custom(format!(
                "cache columns disagree: {n} tags vs {} lru stamps",
                lru.len()
            )));
        }
        let words = n.div_ceil(64);
        if valid.len() != words || dirty.len() != words {
            return Err(serde::Error::custom(format!(
                "cache bitsets need {words} words for {n} ways, got {}/{}",
                valid.len(),
                dirty.len()
            )));
        }
        if cfg.ways == 0 || n % cfg.ways as usize != 0 {
            return Err(serde::Error::custom(format!(
                "{n} ways do not tile {}-way sets",
                cfg.ways
            )));
        }
        // Undo the way-major column order: column index `w * sets + s`
        // lands back at in-memory slot `s * per_set + w`.
        let per_set = cfg.ways as usize;
        let sets = n / per_set;
        let mut ways = vec![Way::default(); n];
        for w in 0..per_set {
            for s in 0..sets {
                let j = w * sets + s;
                ways[s * per_set + w] = Way {
                    tag: tags[j],
                    valid: valid[j / 64] >> (j % 64) & 1 == 1,
                    dirty: dirty[j / 64] >> (j % 64) & 1 == 1,
                    lru: lru[j],
                };
            }
        }
        Ok(Cache {
            cfg,
            ways,
            set_shift,
            set_mask,
            clock,
            stats,
            gen: 1,
            set_gen: vec![0; n / cfg.ways as usize],
        })
    }
}

/// Dirty-state patch for one cache, produced by [`Cache::take_delta`]:
/// the full contents of every set touched since the last
/// [`take_delta`](Cache::take_delta) / [`mark_clean`](Cache::mark_clean),
/// plus the (always-captured) clock and counters.
///
/// Serialized columnar like [`Cache`] itself — one flat way-major
/// column per field across all patched sets, not one map per patch —
/// so a streaming-traffic delta (thousands of contiguous dirty sets
/// repeating the same tag) run-length encodes instead of paying per-set
/// map overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheDelta {
    /// LRU clock at capture time.
    pub clock: u64,
    /// Hit/miss counters at capture time.
    pub stats: CacheStats,
    /// Dirtied sets, ascending by set index.
    pub sets: Vec<SetPatch>,
}

impl Serialize for CacheDelta {
    fn to_value(&self) -> Value {
        let per_set = self.sets.first().map_or(0, |p| p.tags.len());
        let n = self.sets.len();
        let mut sets = Vec::with_capacity(n);
        let mut valid = Vec::with_capacity(n);
        let mut dirty = Vec::with_capacity(n);
        for p in &self.sets {
            debug_assert_eq!(p.tags.len(), per_set, "ragged patch in CacheDelta");
            sets.push(Value::Int(i128::from(p.set)));
            valid.push(Value::Int(i128::from(p.valid)));
            dirty.push(Value::Int(i128::from(p.dirty)));
        }
        let mut tags = Vec::with_capacity(n * per_set);
        let mut lru = Vec::with_capacity(n * per_set);
        for w in 0..per_set {
            for p in &self.sets {
                tags.push(Value::Int(i128::from(p.tags[w])));
                lru.push(Value::Int(i128::from(p.lru[w])));
            }
        }
        Value::Map(vec![
            ("clock".to_string(), self.clock.to_value()),
            ("stats".to_string(), self.stats.to_value()),
            ("ways".to_string(), (per_set as u64).to_value()),
            ("sets".to_string(), Value::Seq(sets)),
            ("tags".to_string(), Value::Seq(tags)),
            ("lru".to_string(), Value::Seq(lru)),
            ("valid".to_string(), Value::Seq(valid)),
            ("dirty".to_string(), Value::Seq(dirty)),
        ])
    }
}

impl Deserialize for CacheDelta {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let clock = u64::from_value(serde::get_field(v, "clock")?)?;
        let stats = CacheStats::from_value(serde::get_field(v, "stats")?)?;
        let per_set = u64::from_value(serde::get_field(v, "ways")?)? as usize;
        let sets = Vec::<u64>::from_value(serde::get_field(v, "sets")?)?;
        let tags = Vec::<u64>::from_value(serde::get_field(v, "tags")?)?;
        let lru = Vec::<u64>::from_value(serde::get_field(v, "lru")?)?;
        let valid = Vec::<u64>::from_value(serde::get_field(v, "valid")?)?;
        let dirty = Vec::<u64>::from_value(serde::get_field(v, "dirty")?)?;
        let n = sets.len();
        if valid.len() != n || dirty.len() != n {
            return Err(serde::Error::custom(format!(
                "delta columns disagree: {n} sets vs {}/{} bit masks",
                valid.len(),
                dirty.len()
            )));
        }
        if tags.len() != n * per_set || lru.len() != n * per_set {
            return Err(serde::Error::custom(format!(
                "delta columns disagree: {n} sets x {per_set} ways vs {}/{} tags/lru",
                tags.len(),
                lru.len()
            )));
        }
        let patches = sets
            .iter()
            .enumerate()
            .map(|(p, &set)| SetPatch {
                set,
                tags: (0..per_set).map(|w| tags[w * n + p]).collect(),
                lru: (0..per_set).map(|w| lru[w * n + p]).collect(),
                valid: valid[p],
                dirty: dirty[p],
            })
            .collect();
        Ok(CacheDelta {
            clock,
            stats,
            sets: patches,
        })
    }
}

impl CacheDelta {
    /// True when no set was dirtied (clock/stats may still have moved).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

/// Replacement contents for one cache set inside a [`CacheDelta`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetPatch {
    /// Set index.
    pub set: u64,
    /// One tag per way.
    pub tags: Vec<u64>,
    /// One LRU stamp per way.
    pub lru: Vec<u64>,
    /// Valid bits, way `i` in bit `i`.
    pub valid: u64,
    /// Dirty bits, way `i` in bit `i`.
    pub dirty: u64,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two set count or has zero
    /// ways.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(cfg.ways > 0, "cache needs at least one way");
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two: {sets}"
        );
        Cache {
            cfg,
            ways: vec![Way::default(); (sets * u64::from(cfg.ways)) as usize],
            set_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            clock: 0,
            stats: CacheStats::default(),
            gen: 1,
            set_gen: vec![0; sets as usize],
        }
    }

    /// Stamps the set holding flattened way index `base` as dirtied in
    /// the current checkpoint generation.
    fn touch(&mut self, base: usize) {
        let set = base / self.cfg.ways as usize;
        self.set_gen[set] = self.gen;
    }

    /// Marks every set clean (O(1)); the next [`take_delta`](Self::take_delta)
    /// reports only sets mutated after this call.
    pub fn mark_clean(&mut self) {
        self.gen += 1;
    }

    /// Captures the contents of every set dirtied since the last
    /// [`mark_clean`](Self::mark_clean) / `take_delta`, then marks the
    /// cache clean.
    ///
    /// # Panics
    ///
    /// Panics on more than 64 ways (the patch valid/dirty bitmasks are
    /// single u64 words; every configured geometry is ≤ 16-way).
    pub fn take_delta(&mut self) -> CacheDelta {
        let ways = self.cfg.ways as usize;
        assert!(ways <= 64, "set patches support at most 64 ways");
        let mut sets = Vec::new();
        for set in 0..self.set_gen.len() {
            if self.set_gen[set] != self.gen {
                continue;
            }
            let base = set * ways;
            let mut tags = Vec::with_capacity(ways);
            let mut lru = Vec::with_capacity(ways);
            let mut valid = 0u64;
            let mut dirty = 0u64;
            for (i, w) in self.ways[base..base + ways].iter().enumerate() {
                tags.push(w.tag);
                lru.push(w.lru);
                if w.valid {
                    valid |= 1 << i;
                }
                if w.dirty {
                    dirty |= 1 << i;
                }
            }
            sets.push(SetPatch {
                set: set as u64,
                tags,
                lru,
                valid,
                dirty,
            });
        }
        self.gen += 1;
        CacheDelta {
            clock: self.clock,
            stats: self.stats,
            sets,
        }
    }

    /// Applies a [`CacheDelta`] captured from an identically configured
    /// cache, overwriting every patched set plus the clock and counters.
    ///
    /// # Errors
    ///
    /// Returns a message when a patch does not fit this geometry.
    pub fn apply_delta(&mut self, delta: &CacheDelta) -> Result<(), String> {
        let ways = self.cfg.ways as usize;
        let sets = self.ways.len() / ways;
        for p in &delta.sets {
            let set = p.set as usize;
            if set >= sets {
                return Err(format!("set patch {set} outside {sets}-set cache"));
            }
            if p.tags.len() != ways || p.lru.len() != ways {
                return Err(format!(
                    "set patch {set} carries {}/{} ways, cache has {ways}",
                    p.tags.len(),
                    p.lru.len()
                ));
            }
            let base = set * ways;
            for i in 0..ways {
                self.ways[base + i] = Way {
                    tag: p.tags[i],
                    valid: p.valid >> i & 1 == 1,
                    dirty: p.dirty >> i & 1 == 1,
                    lru: p.lru[i],
                };
            }
        }
        self.clock = delta.clock;
        self.stats = delta.stats;
        Ok(())
    }

    /// This level's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the counters (e.g. after a functional warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, addr: u64) -> (usize, u64) {
        let set = (addr >> self.set_shift) & self.set_mask;
        let base = (set * u64::from(self.cfg.ways)) as usize;
        (base, addr >> self.set_shift >> self.set_mask.count_ones())
    }

    /// Looks up `addr` without allocating or touching LRU state.
    pub fn probe(&self, addr: u64) -> bool {
        let (base, tag) = self.set_range(addr);
        self.ways[base..base + self.cfg.ways as usize]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Looks up `addr` *without* allocating: updates LRU and dirtiness and
    /// counts a hit or miss. Use together with [`fill`](Self::fill) for
    /// fill-on-completion hierarchies where allocation happens only when
    /// the data actually arrives.
    pub fn lookup(&mut self, addr: u64, is_write: bool) -> bool {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);
        let set = &mut self.ways[base..base + self.cfg.ways as usize];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = self.clock;
            if is_write {
                w.dirty = true;
            }
            self.stats.hits += 1;
            self.touch(base);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Accesses `addr`, allocating on miss. `is_write` marks the line
    /// dirty on hit or after allocation.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);
        let set = &mut self.ways[base..base + self.cfg.ways as usize];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = self.clock;
            if is_write {
                w.dirty = true;
            }
            self.stats.hits += 1;
            self.touch(base);
            return CacheOutcome::Hit;
        }
        self.stats.misses += 1;
        let writeback = self.replace(base, tag, is_write);
        CacheOutcome::Miss { writeback }
    }

    /// Picks a victim in the set at `base` (invalid first, else LRU),
    /// installs `tag`, and returns the dirty victim's address, if any.
    fn replace(&mut self, base: usize, tag: u64, is_write: bool) -> Option<u64> {
        self.touch(base);
        let ways = self.cfg.ways as usize;
        let clock = self.clock;
        let set = &mut self.ways[base..base + ways];
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("nonzero ways");
        let (victim_tag, victim_dirty) = (
            set[victim_idx].tag,
            set[victim_idx].valid && set[victim_idx].dirty,
        );
        set[victim_idx] = Way {
            tag,
            valid: true,
            dirty: is_write,
            lru: clock,
        };
        if victim_dirty {
            self.stats.writebacks += 1;
            Some(self.rebuild_addr(victim_tag, base))
        } else {
            None
        }
    }

    /// Fills `addr` without counting a demand access (prefetch fill); marks
    /// dirty if `is_write`. Returns the dirty victim, if any.
    pub fn fill(&mut self, addr: u64, is_write: bool) -> Option<u64> {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);
        let set = &mut self.ways[base..base + self.cfg.ways as usize];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = self.clock;
            if is_write {
                w.dirty = true;
            }
            self.touch(base);
            return None;
        }
        self.replace(base, tag, is_write)
    }

    /// Invalidates `addr` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let (base, tag) = self.set_range(addr);
        let set = &mut self.ways[base..base + self.cfg.ways as usize];
        let hit = set.iter_mut().find(|w| w.valid && w.tag == tag).map(|w| {
            w.valid = false;
            w.dirty
        });
        if hit.is_some() {
            self.touch(base);
        }
        hit
    }

    fn rebuild_addr(&self, tag: u64, way_base: usize) -> u64 {
        let set = way_base as u64 / u64::from(self.cfg.ways);
        ((tag << self.set_mask.count_ones()) | set) << self.set_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1d().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 1024);
        assert_eq!(CacheConfig::llc().sets(), 16384);
    }

    #[test]
    fn hit_after_allocate() {
        let mut c = tiny();
        assert_eq!(
            c.access(0x1000, false),
            CacheOutcome::Miss { writeback: None }
        );
        assert_eq!(c.access(0x1000, false), CacheOutcome::Hit);
        assert!(c.probe(0x1000));
        assert!(!c.probe(0x2000));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Three lines in the same set (set 0): 0x000, 0x100, 0x200.
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch 0x000 again
        c.access(0x200, false); // evicts 0x100
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        let out = c.access(0x200, false); // evicts dirty 0x000
        assert_eq!(
            out,
            CacheOutcome::Miss {
                writeback: Some(0x000)
            }
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn writeback_address_reconstruction_across_sets() {
        let mut c = tiny();
        // Set index bits are addr[7:6]; line 0x2C0 is set 3.
        c.access(0x2C0, true);
        c.access(0x6C0, false);
        let out = c.access(0xAC0, false);
        assert_eq!(
            out,
            CacheOutcome::Miss {
                writeback: Some(0x2C0)
            }
        );
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // now dirty
        c.access(0x100, false);
        let out = c.access(0x200, false);
        assert_eq!(
            out,
            CacheOutcome::Miss {
                writeback: Some(0x000)
            }
        );
    }

    #[test]
    fn fill_does_not_count_demand_stats() {
        let mut c = tiny();
        c.fill(0x000, false);
        assert_eq!(c.stats().hits + c.stats().misses, 0);
        assert!(c.probe(0x000));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.access(0x000, true);
        assert_eq!(c.invalidate(0x000), Some(true));
        assert_eq!(c.invalidate(0x000), None);
        assert!(!c.probe(0x000));
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, false);
        c.access(0x040, false);
        c.access(0x080, false);
        assert!((c.stats().miss_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn columnar_serde_roundtrip() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x100, false);
        c.access(0x2C0, true);
        c.lookup(0x040, false);
        let back = Cache::from_value(&c.to_value()).expect("columnar value parses back");
        assert_eq!(back, c);
        assert!(back.probe(0x000) && back.probe(0x100) && back.probe(0x2C0));
    }

    #[test]
    fn columnar_deserialize_rejects_ragged_columns() {
        let mut v = tiny().to_value();
        if let Value::Map(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "lru" {
                    if let Value::Seq(s) = val {
                        s.pop();
                    }
                }
            }
        }
        assert!(Cache::from_value(&v).is_err());
    }

    #[test]
    fn delta_replays_onto_base_copy() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x100, false);
        c.mark_clean();
        let base = c.clone();

        c.access(0x2C0, true); // new set
        c.access(0x200, false); // evicts in set 0
        c.lookup(0x100, true); // dirties a line in place
        let delta = c.take_delta();
        assert!(!delta.is_empty());

        let mut replayed = base.clone();
        replayed
            .apply_delta(&delta)
            .expect("delta fits the geometry");
        assert_eq!(replayed, c);

        // The columnar delta encoding roundtrips patch-exactly.
        let back = CacheDelta::from_value(&delta.to_value()).expect("delta roundtrips");
        assert_eq!(back, delta);
    }

    #[test]
    fn clean_cache_yields_empty_delta() {
        let mut c = tiny();
        c.access(0x000, true);
        c.mark_clean();
        assert!(c.take_delta().is_empty());
        // Probes and misses without allocation do not dirty sets …
        c.probe(0x000);
        c.lookup(0x500, false);
        let d = c.take_delta();
        assert!(d.is_empty());
        // … but the clock/stats they move are still carried.
        assert_eq!(d.clock, c.clock);
        assert_eq!(d.stats, c.stats());
    }

    #[test]
    fn delta_rejects_foreign_geometry() {
        let mut big = Cache::new(CacheConfig::l1d());
        big.access(0x4000_0000, true);
        let delta = big.take_delta();
        let mut small = tiny();
        assert!(small.apply_delta(&delta).is_err());
    }

    #[test]
    fn equality_ignores_dirty_trackers() {
        let mut a = tiny();
        a.access(0x000, true);
        let mut b = a.clone();
        b.mark_clean();
        b.mark_clean();
        assert_eq!(a, b);
        a.take_delta();
        assert_eq!(a, b);
    }
}
