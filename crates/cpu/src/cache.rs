//! A set-associative, write-back, write-allocate cache with LRU
//! replacement.
//!
//! Addresses are handled at line granularity (the caller strips the
//! offset). The cache returns evicted dirty lines so the hierarchy can
//! cascade writebacks.

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in core cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / u64::from(self.line_bytes) / u64::from(self.ways)
    }

    /// 32 KB, 8-way L1 data cache, 4-cycle hit (the paper's setup).
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 32 << 10,
            ways: 8,
            line_bytes: 64,
            latency: 4,
        }
    }

    /// 1 MB, 16-way private L2, 14-cycle hit.
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 1 << 20,
            ways: 16,
            line_bytes: 64,
            latency: 14,
        }
    }

    /// 11 MB, 11-way shared LLC, 44-cycle hit (8 NUCA slices averaged).
    pub fn llc() -> Self {
        CacheConfig {
            size_bytes: 11 << 20,
            ways: 11,
            line_bytes: 64,
            latency: 44,
        }
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been allocated; `writeback` carries the
    /// evicted dirty line's address, if any.
    Miss {
        /// Dirty victim line address that must be written to the next
        /// level.
        writeback: Option<u64>,
    },
}

#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Per-cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and allocated).
    pub misses: u64,
    /// Dirty evictions produced.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.misses as f64 / total as f64
    }
}

/// One cache level.
///
/// # Example
///
/// ```
/// use dramstack_cpu::{Cache, CacheConfig, CacheOutcome};
///
/// let mut l1 = Cache::new(CacheConfig::l1d());
/// assert_eq!(l1.access(0x1000, false), CacheOutcome::Miss { writeback: None });
/// assert_eq!(l1.access(0x1000, true), CacheOutcome::Hit); // now dirty
/// assert!(l1.probe(0x1000));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>,
    set_shift: u32,
    set_mask: u64,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two set count or has zero
    /// ways.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(cfg.ways > 0, "cache needs at least one way");
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two: {sets}"
        );
        Cache {
            cfg,
            ways: vec![Way::default(); (sets * u64::from(cfg.ways)) as usize],
            set_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// This level's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the counters (e.g. after a functional warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, addr: u64) -> (usize, u64) {
        let set = (addr >> self.set_shift) & self.set_mask;
        let base = (set * u64::from(self.cfg.ways)) as usize;
        (base, addr >> self.set_shift >> self.set_mask.count_ones())
    }

    /// Looks up `addr` without allocating or touching LRU state.
    pub fn probe(&self, addr: u64) -> bool {
        let (base, tag) = self.set_range(addr);
        self.ways[base..base + self.cfg.ways as usize]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Looks up `addr` *without* allocating: updates LRU and dirtiness and
    /// counts a hit or miss. Use together with [`fill`](Self::fill) for
    /// fill-on-completion hierarchies where allocation happens only when
    /// the data actually arrives.
    pub fn lookup(&mut self, addr: u64, is_write: bool) -> bool {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);
        let set = &mut self.ways[base..base + self.cfg.ways as usize];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = self.clock;
            if is_write {
                w.dirty = true;
            }
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Accesses `addr`, allocating on miss. `is_write` marks the line
    /// dirty on hit or after allocation.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);
        let set = &mut self.ways[base..base + self.cfg.ways as usize];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = self.clock;
            if is_write {
                w.dirty = true;
            }
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }
        self.stats.misses += 1;
        let writeback = self.replace(base, tag, is_write);
        CacheOutcome::Miss { writeback }
    }

    /// Picks a victim in the set at `base` (invalid first, else LRU),
    /// installs `tag`, and returns the dirty victim's address, if any.
    fn replace(&mut self, base: usize, tag: u64, is_write: bool) -> Option<u64> {
        let ways = self.cfg.ways as usize;
        let clock = self.clock;
        let set = &mut self.ways[base..base + ways];
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("nonzero ways");
        let (victim_tag, victim_dirty) = (
            set[victim_idx].tag,
            set[victim_idx].valid && set[victim_idx].dirty,
        );
        set[victim_idx] = Way {
            tag,
            valid: true,
            dirty: is_write,
            lru: clock,
        };
        if victim_dirty {
            self.stats.writebacks += 1;
            Some(self.rebuild_addr(victim_tag, base))
        } else {
            None
        }
    }

    /// Fills `addr` without counting a demand access (prefetch fill); marks
    /// dirty if `is_write`. Returns the dirty victim, if any.
    pub fn fill(&mut self, addr: u64, is_write: bool) -> Option<u64> {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);
        let set = &mut self.ways[base..base + self.cfg.ways as usize];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = self.clock;
            if is_write {
                w.dirty = true;
            }
            return None;
        }
        self.replace(base, tag, is_write)
    }

    /// Invalidates `addr` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let (base, tag) = self.set_range(addr);
        let set = &mut self.ways[base..base + self.cfg.ways as usize];
        set.iter_mut().find(|w| w.valid && w.tag == tag).map(|w| {
            w.valid = false;
            w.dirty
        })
    }

    fn rebuild_addr(&self, tag: u64, way_base: usize) -> u64 {
        let set = way_base as u64 / u64::from(self.cfg.ways);
        ((tag << self.set_mask.count_ones()) | set) << self.set_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1d().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 1024);
        assert_eq!(CacheConfig::llc().sets(), 16384);
    }

    #[test]
    fn hit_after_allocate() {
        let mut c = tiny();
        assert_eq!(
            c.access(0x1000, false),
            CacheOutcome::Miss { writeback: None }
        );
        assert_eq!(c.access(0x1000, false), CacheOutcome::Hit);
        assert!(c.probe(0x1000));
        assert!(!c.probe(0x2000));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Three lines in the same set (set 0): 0x000, 0x100, 0x200.
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch 0x000 again
        c.access(0x200, false); // evicts 0x100
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        let out = c.access(0x200, false); // evicts dirty 0x000
        assert_eq!(
            out,
            CacheOutcome::Miss {
                writeback: Some(0x000)
            }
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn writeback_address_reconstruction_across_sets() {
        let mut c = tiny();
        // Set index bits are addr[7:6]; line 0x2C0 is set 3.
        c.access(0x2C0, true);
        c.access(0x6C0, false);
        let out = c.access(0xAC0, false);
        assert_eq!(
            out,
            CacheOutcome::Miss {
                writeback: Some(0x2C0)
            }
        );
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // now dirty
        c.access(0x100, false);
        let out = c.access(0x200, false);
        assert_eq!(
            out,
            CacheOutcome::Miss {
                writeback: Some(0x000)
            }
        );
    }

    #[test]
    fn fill_does_not_count_demand_stats() {
        let mut c = tiny();
        c.fill(0x000, false);
        assert_eq!(c.stats().hits + c.stats().misses, 0);
        assert!(c.probe(0x000));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.access(0x000, true);
        assert_eq!(c.invalidate(0x000), Some(true));
        assert_eq!(c.invalidate(0x000), None);
        assert!(!c.probe(0x000));
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, false);
        c.access(0x040, false);
        c.access(0x080, false);
        assert!((c.stats().miss_rate() - 0.75).abs() < 1e-12);
    }
}
