//! The instruction abstraction consumed by the core model.
//!
//! Workloads produce per-core streams of these coarse "instructions"; the
//! core model turns them into ROB occupancy, memory-hierarchy accesses and
//! cycle-stack components.

use serde::{Deserialize, Serialize};

/// One instruction of a core's dynamic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// A load from the given byte address. Retirement blocks until the
    /// data arrives.
    Load {
        /// Byte address accessed.
        addr: u64,
    },
    /// A store to the given byte address. Does not block retirement
    /// (absorbed by the store buffer) but triggers a write-allocate fill.
    Store {
        /// Byte address accessed.
        addr: u64,
    },
    /// A load whose address depends on the previous load of the same
    /// chain: it cannot issue while an older load of that chain is still
    /// in flight. Models pointer-chase-like dependence; `chain` values
    /// below [`Instr::MAX_CHAINS`] give a workload a precise memory-level
    /// parallelism.
    ChainLoad {
        /// Byte address accessed.
        addr: u64,
        /// Dependence chain this load belongs to.
        chain: u8,
    },
    /// `count` plain ALU operations (they only consume issue slots).
    Compute {
        /// Number of back-to-back ALU operations.
        count: u32,
    },
    /// A conditional branch; a mispredicted one flushes the front-end.
    Branch {
        /// Whether this branch mispredicts.
        mispredict: bool,
    },
    /// A synchronization barrier: the core stalls until every core reached
    /// the same barrier id.
    Barrier {
        /// Barrier identifier (monotonically increasing per program).
        id: u32,
    },
}

impl Instr {
    /// Number of dependence chains a core tracks for
    /// [`Instr::ChainLoad`].
    pub const MAX_CHAINS: usize = 16;
}

/// A per-core supplier of instructions.
///
/// `next` returning `None` permanently ends the stream (the core goes
/// idle).
pub trait InstrStream {
    /// The next instruction, or `None` when the program finished.
    fn next_instr(&mut self) -> Option<Instr>;

    /// Serializable checkpoint of this stream's position/state, as opaque
    /// words. Restoring the same words via
    /// [`restore_checkpoint`](Self::restore_checkpoint) into a freshly
    /// constructed stream of the same kind must continue the exact
    /// instruction sequence. Streams without checkpoint support return
    /// `None` (the default) — a simulator snapshot then fails with a typed
    /// error instead of silently resuming wrong.
    fn checkpoint(&self) -> Option<Vec<u64>> {
        None
    }

    /// Restores state captured by [`checkpoint`](Self::checkpoint).
    /// Returns `false` when this stream kind does not support restore or
    /// the state words are malformed.
    fn restore_checkpoint(&mut self, _state: &[u64]) -> bool {
        false
    }
}

/// A stream backed by a pre-generated trace.
#[derive(Debug, Clone)]
pub struct VecStream {
    instrs: Vec<Instr>,
    pos: usize,
}

impl VecStream {
    /// Wraps a trace.
    pub fn new(instrs: Vec<Instr>) -> Self {
        VecStream { instrs, pos: 0 }
    }

    /// Instructions remaining.
    pub fn remaining(&self) -> usize {
        self.instrs.len() - self.pos
    }
}

impl InstrStream for VecStream {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.instrs.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }

    fn checkpoint(&self) -> Option<Vec<u64>> {
        Some(vec![self.pos as u64])
    }

    fn restore_checkpoint(&mut self, state: &[u64]) -> bool {
        match state {
            [pos] if *pos as usize <= self.instrs.len() => {
                self.pos = *pos as usize;
                true
            }
            _ => false,
        }
    }
}

/// An endless stream produced by a closure — convenient for synthetic
/// workloads.
pub struct FnStream<F>(pub F);

impl<F: FnMut() -> Option<Instr>> InstrStream for FnStream<F> {
    fn next_instr(&mut self) -> Option<Instr> {
        (self.0)()
    }
}

impl<F> std::fmt::Debug for FnStream<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnStream(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_stream_yields_in_order_then_ends() {
        let mut s = VecStream::new(vec![Instr::Load { addr: 64 }, Instr::Compute { count: 3 }]);
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next_instr(), Some(Instr::Load { addr: 64 }));
        assert_eq!(s.next_instr(), Some(Instr::Compute { count: 3 }));
        assert_eq!(s.next_instr(), None);
        assert_eq!(s.next_instr(), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn fn_stream_delegates() {
        let mut n = 0u64;
        let mut s = FnStream(move || {
            n += 1;
            if n <= 2 {
                Some(Instr::Store { addr: n * 64 })
            } else {
                None
            }
        });
        assert_eq!(s.next_instr(), Some(Instr::Store { addr: 64 }));
        assert_eq!(s.next_instr(), Some(Instr::Store { addr: 128 }));
        assert_eq!(s.next_instr(), None);
    }
}
