//! A stream (next-line/stride) prefetcher modeled after the L2 streamer.
//!
//! On every demand access it checks its stream table for a matching
//! ascending or descending stream; confident streams emit prefetch
//! candidates a configurable distance ahead. The sequential synthetic
//! pattern and the CSR scans of the GAP kernels train it within a few
//! accesses; random traffic never does.

use serde::{Deserialize, Serialize};

/// Prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Tracked streams.
    pub streams: usize,
    /// Prefetches issued per triggering access once confident.
    pub degree: usize,
    /// Maximum lines ahead of the demand stream.
    pub distance: u64,
    /// Accesses with a consistent stride needed before prefetching.
    pub confidence: u32,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            streams: 16,
            degree: 2,
            distance: 16,
            confidence: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Stream {
    last_line: u64,
    direction: i64,
    hits: u32,
    /// Furthest line already requested.
    issued_until: u64,
    lru: u64,
    valid: bool,
}

/// The stream prefetcher.
///
/// # Example
///
/// ```
/// use dramstack_cpu::{StreamPrefetcher, PrefetchConfig};
///
/// let mut p = StreamPrefetcher::new(PrefetchConfig::default());
/// let mut out = Vec::new();
/// for line in 100..110 {
///     p.train(line, &mut out); // an ascending stream…
/// }
/// assert!(!out.is_empty(), "…triggers prefetches ahead of it");
/// assert!(out.iter().all(|&l| l > 100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    table: Vec<Stream>,
    clock: u64,
    issued: u64,
    useful_window: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher.
    pub fn new(cfg: PrefetchConfig) -> Self {
        StreamPrefetcher {
            cfg,
            table: vec![
                Stream {
                    last_line: 0,
                    direction: 0,
                    hits: 0,
                    issued_until: 0,
                    lru: 0,
                    valid: false
                };
                cfg.streams
            ],
            clock: 0,
            issued: 0,
            useful_window: 0,
        }
    }

    /// Total prefetches ever suggested.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Trains on a demand access to `line` (a line index, not a byte
    /// address) and returns the lines to prefetch.
    pub fn train(&mut self, line: u64, out: &mut Vec<u64>) {
        self.clock += 1;
        let cfg = self.cfg;
        // Find a stream whose next expected line is within a small window.
        let mut best: Option<usize> = None;
        for (i, s) in self.table.iter().enumerate() {
            if !s.valid {
                continue;
            }
            let delta = line as i64 - s.last_line as i64;
            if delta != 0 && delta.abs() <= 4 && (s.direction == 0 || delta.signum() == s.direction)
            {
                best = Some(i);
                break;
            }
        }
        match best {
            Some(i) => {
                let dir = (line as i64 - self.table[i].last_line as i64).signum();
                let s = &mut self.table[i];
                s.direction = dir;
                s.hits += 1;
                s.last_line = line;
                s.lru = self.clock;
                if s.hits >= cfg.confidence {
                    // Issue up to `degree` lines, never beyond `distance`
                    // ahead of the demand line.
                    let limit = if dir > 0 {
                        line + cfg.distance
                    } else {
                        line.saturating_sub(cfg.distance)
                    };
                    for _ in 0..cfg.degree {
                        let next = if dir > 0 {
                            s.issued_until.max(line) + 1
                        } else {
                            s.issued_until.min(line).saturating_sub(1)
                        };
                        let in_range = if dir > 0 {
                            next <= limit
                        } else {
                            next >= limit && next > 0
                        };
                        if !in_range {
                            break;
                        }
                        s.issued_until = next;
                        out.push(next);
                        self.issued += 1;
                    }
                }
            }
            None => {
                // Allocate a new stream over the LRU slot.
                let slot = self
                    .table
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| if s.valid { s.lru + 1 } else { 0 })
                    .map(|(i, _)| i)
                    .expect("nonzero table");
                self.table[slot] = Stream {
                    last_line: line,
                    direction: 0,
                    hits: 1,
                    issued_until: line,
                    lru: self.clock,
                    valid: true,
                };
            }
        }
        self.useful_window = self.useful_window.saturating_sub(out.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: &mut StreamPrefetcher, lines: impl IntoIterator<Item = u64>) -> Vec<u64> {
        let mut all = Vec::new();
        let mut out = Vec::new();
        for l in lines {
            out.clear();
            p.train(l, &mut out);
            all.extend_from_slice(&out);
        }
        all
    }

    #[test]
    fn sequential_stream_triggers_prefetches_ahead() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        let issued = run(&mut p, 100..120);
        assert!(!issued.is_empty(), "sequential stream must prefetch");
        // All prefetches are ahead of the stream and within distance.
        for &l in &issued {
            assert!(l > 100 && l <= 119 + 16, "line {l}");
        }
        // No duplicates.
        let mut dedup = issued.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), issued.len());
    }

    #[test]
    fn descending_stream_is_detected() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        let issued = run(&mut p, (0..20).map(|i| 1000 - i));
        assert!(!issued.is_empty());
        assert!(issued.iter().all(|&l| l < 1000));
    }

    #[test]
    fn random_stream_never_prefetches() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        // Widely scattered lines — no deltas within the match window.
        let issued = run(
            &mut p,
            (0..100).map(|i| (i * 7919 + 13) % 1_000_000 + i * 10_000),
        );
        assert!(issued.is_empty(), "random traffic prefetched {issued:?}");
    }

    #[test]
    fn distance_bounds_runahead() {
        let cfg = PrefetchConfig {
            distance: 4,
            degree: 8,
            ..Default::default()
        };
        let mut p = StreamPrefetcher::new(cfg);
        let issued = run(&mut p, 0..10);
        for &l in &issued {
            assert!(l <= 9 + 4);
        }
    }

    #[test]
    fn multiple_streams_tracked_independently() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        // Interleave two far-apart ascending streams.
        let mut seq = Vec::new();
        for i in 0..16 {
            seq.push(1_000 + i);
            seq.push(900_000 + i);
        }
        let issued = run(&mut p, seq);
        assert!(issued.iter().any(|&l| l < 500_000), "stream A prefetched");
        assert!(issued.iter().any(|&l| l > 500_000), "stream B prefetched");
    }
}
