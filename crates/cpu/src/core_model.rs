//! The out-of-order-proxy core model.
//!
//! The model captures exactly what the bandwidth/latency stacks are
//! sensitive to: a finite instruction window (ROB) that bounds memory-level
//! parallelism, retirement that stalls on incomplete loads at the ROB
//! head, stores that never stall (absorbed by the store buffer), branch
//! mispredict bubbles and barrier idling. It does not model register
//! renaming, functional units or speculation beyond that — the paper's
//! stacks depend on request-rate dynamics, not core internals.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::cycle_stack::{CycleComponent, CycleStack};
use crate::hierarchy::{AccessResult, Hierarchy};
use crate::instr::{Instr, InstrStream};

/// Core parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Reorder-buffer entries (224 — Skylake-like, as in the paper).
    pub rob_entries: usize,
    /// Dispatch/retire width.
    pub width: u32,
    /// Front-end bubble after a mispredicted branch, in core cycles.
    pub mispredict_penalty: u64,
    /// Stall cycles on a DRAM load within this window after issue count as
    /// `dram-latency`; beyond it as `dram-queue` (the uncontended
    /// round-trip time through the hierarchy).
    pub dram_base_window: u64,
}

impl CoreConfig {
    /// The paper's 4-wide, 224-entry-ROB core.
    pub fn paper_default() -> Self {
        CoreConfig {
            rob_entries: 224,
            width: 4,
            mispredict_penalty: 15,
            dram_base_window: 140,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum SlotState {
    /// Can retire.
    Ready,
    /// Ready at the given absolute core cycle (cache hit latency).
    WaitUntil(u64),
    /// Waiting for a DRAM line fill.
    WaitLine(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct RobSlot {
    state: SlotState,
    issued_at: u64,
    /// Dependence chain of a `ChainLoad`, released at completion.
    chain: Option<u8>,
}

/// Serializable state of one [`CoreModel`], captured by
/// [`CoreModel::snapshot_state`] and re-injected by
/// [`CoreModel::restore_state`] into a core built with the same
/// configuration. The `id`/`cfg` are deliberately not part of the state —
/// the simulator-level snapshot validates the whole `SystemConfig` instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreState {
    rob: Vec<RobSlot>,
    /// `by_line` as a key-sorted association list (the vendored serde
    /// subset has no `HashMap` support; sorting also makes the encoding
    /// canonical).
    by_line: Vec<(u64, Vec<u64>)>,
    front_seq: u64,
    next_seq: u64,
    fetch_stall_until: u64,
    pending_compute: u32,
    deferred: Option<Instr>,
    pending_barrier: Option<u32>,
    at_barrier: Option<u32>,
    stream_done: bool,
    stack: CycleStack,
    retired: u64,
    chain_inflight: Vec<u32>,
    mshr_blocked: bool,
}

/// The single stack class a stalled core accrues over a skipped span.
///
/// Returned by [`CoreModel::stall_horizon`] and replayed in bulk by
/// [`CoreModel::add_stall_cycles`]. `Dram` carries the head load's issue
/// cycle so the bulk replay can split the span at the
/// [`CoreConfig::dram_base_window`] boundary exactly as per-cycle
/// classification would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Finished or parked at a barrier: idle cycles.
    Idle,
    /// Front-end bubble after a mispredict: branch cycles.
    Branch,
    /// Head waits on a cache-hit latency: d-cache cycles.
    Dcache,
    /// Head waits on a DRAM line fill issued at `issued_at`.
    Dram {
        /// Core cycle the head load entered the ROB.
        issued_at: u64,
    },
}

/// One out-of-order-proxy core.
#[derive(Debug)]
pub struct CoreModel {
    id: usize,
    cfg: CoreConfig,
    rob: VecDeque<RobSlot>,
    /// Line → ROB sequence numbers waiting on it.
    by_line: HashMap<u64, Vec<u64>>,
    front_seq: u64,
    next_seq: u64,
    fetch_stall_until: u64,
    pending_compute: u32,
    deferred: Option<Instr>,
    pending_barrier: Option<u32>,
    at_barrier: Option<u32>,
    stream_done: bool,
    stack: CycleStack,
    retired: u64,
    chain_inflight: [u32; Instr::MAX_CHAINS],
    /// Dispatch hit `MshrFull`: the deferred access is not retried until a
    /// line completion (the only event that frees an MSHR) wakes the core.
    /// Keeps the retry from hammering the hierarchy every cycle — and makes
    /// the blocked state provable for [`stall_horizon`](Self::stall_horizon).
    mshr_blocked: bool,
}

impl CoreModel {
    /// Creates core number `id`.
    pub fn new(id: usize, cfg: CoreConfig) -> Self {
        CoreModel {
            id,
            cfg,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            by_line: HashMap::new(),
            front_seq: 0,
            next_seq: 0,
            fetch_stall_until: 0,
            pending_compute: 0,
            deferred: None,
            pending_barrier: None,
            at_barrier: None,
            stream_done: false,
            stack: CycleStack::new(),
            retired: 0,
            chain_inflight: [0; Instr::MAX_CHAINS],
            mshr_blocked: false,
        }
    }

    /// This core's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Current ROB occupancy.
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// The cycle stack accumulated so far.
    pub fn stack(&self) -> &CycleStack {
        &self.stack
    }

    /// Snapshots and resets the cycle stack (through-time sampling).
    pub fn take_stack_sample(&mut self) -> CycleStack {
        self.stack.take_sample()
    }

    /// The barrier id this core is parked at, if any.
    pub fn at_barrier(&self) -> Option<u32> {
        self.at_barrier
    }

    /// Releases the core from its barrier.
    ///
    /// # Panics
    ///
    /// Panics if the core is not at a barrier.
    pub fn release_barrier(&mut self) {
        assert!(
            self.at_barrier.is_some(),
            "core {} is not at a barrier",
            self.id
        );
        self.at_barrier = None;
    }

    /// Whether the program ended and every in-flight instruction retired.
    pub fn is_finished(&self) -> bool {
        self.stream_done
            && self.rob.is_empty()
            && self.deferred.is_none()
            && self.pending_compute == 0
            && self.pending_barrier.is_none()
            && self.at_barrier.is_none()
    }

    /// Whether ticking this core at core-cycle `now` (and every later
    /// cycle, absent external events) is exactly one idle-stack cycle with
    /// no other state change. Used as the per-core gate of the event-skip
    /// fast-forward; [`add_idle_cycles`](Self::add_idle_cycles) replicates
    /// the skipped ticks.
    pub fn is_quiet(&self, now: u64) -> bool {
        self.is_finished() && now >= self.fetch_stall_until
    }

    /// Bulk equivalent of `n` ticks of a [quiet](Self::is_quiet) core:
    /// every skipped cycle is classified as idle.
    pub fn add_idle_cycles(&mut self, n: u64) {
        debug_assert!(self.is_finished());
        self.stack.add_n(CycleComponent::Idle, n);
    }

    /// Busy-path stall horizon: the first core cycle `h > now` at which
    /// [`tick`](Self::tick) could do anything beyond accruing one stack
    /// cycle of the returned [`StallKind`], assuming no external event
    /// (line completion, barrier release) lands in `[now, h)`.
    ///
    /// `None` means the very next tick may retire, dispatch or otherwise
    /// mutate state, so the span cannot be skipped. The contract mirrors
    /// [`is_quiet`](Self::is_quiet)/[`add_idle_cycles`](Self::add_idle_cycles)
    /// but extends to *stalled-but-busy* cores: a full ROB parked on a DRAM
    /// load, a d-cache latency wait, a mispredict bubble.
    pub fn stall_horizon(&self, now: u64) -> Option<(u64, StallKind)> {
        if self.at_barrier.is_some() {
            // Barrier ticks only add idle; release is an external event.
            return Some((u64::MAX, StallKind::Idle));
        }
        if self.is_finished() {
            return if now < self.fetch_stall_until {
                Some((self.fetch_stall_until, StallKind::Branch))
            } else {
                Some((u64::MAX, StallKind::Idle))
            };
        }
        match self.rob.front() {
            Some(head) => {
                // Dispatch must provably do nothing every cycle of the
                // span: either it cannot run (front-end bubble, pending
                // barrier), cannot insert (ROB full), has nothing to
                // insert (drained stream), or its deferred access is held
                // by a block that only a line completion — an external
                // event, hence a span boundary — can release: a full MSHR
                // file, or an in-flight predecessor of the same chain.
                let blocked_deferred = match &self.deferred {
                    None => false,
                    Some(Instr::ChainLoad { chain, .. }) => {
                        self.mshr_blocked
                            || self.chain_inflight[*chain as usize % Instr::MAX_CHAINS] > 0
                    }
                    Some(_) => self.mshr_blocked,
                };
                let dispatch_noop = self.rob.len() == self.cfg.rob_entries
                    || self.pending_barrier.is_some()
                    || (self.pending_compute == 0
                        && ((self.deferred.is_none() && self.stream_done) || blocked_deferred));
                if !dispatch_noop && now >= self.fetch_stall_until {
                    return None;
                }
                let dispatch_cap = if dispatch_noop {
                    u64::MAX
                } else {
                    self.fetch_stall_until
                };
                match head.state {
                    SlotState::WaitLine(_) => Some((
                        dispatch_cap,
                        StallKind::Dram {
                            issued_at: head.issued_at,
                        },
                    )),
                    SlotState::WaitUntil(t) if t > now => {
                        Some((t.min(dispatch_cap), StallKind::Dcache))
                    }
                    // Head retirable: the next tick retires it.
                    _ => None,
                }
            }
            None => {
                // Empty ROB, program not finished: only a front-end bubble
                // with no pending barrier is a pure Branch stretch (the
                // barrier drain transition would fire on the next tick).
                if self.pending_barrier.is_none() && now < self.fetch_stall_until {
                    Some((self.fetch_stall_until, StallKind::Branch))
                } else {
                    None
                }
            }
        }
    }

    /// Bulk equivalent of ticking a stalled core for the `n` cycles
    /// `[start, start + n)` of a span vetted by
    /// [`stall_horizon`](Self::stall_horizon): the only effect of those
    /// ticks is `n` stack cycles of `kind`, with the DRAM wait split at the
    /// base-window boundary exactly as per-cycle classification does.
    pub fn add_stall_cycles(&mut self, start: u64, n: u64, kind: StallKind) {
        match kind {
            StallKind::Idle => self.stack.add_n(CycleComponent::Idle, n),
            StallKind::Branch => self.stack.add_n(CycleComponent::Branch, n),
            StallKind::Dcache => self.stack.add_n(CycleComponent::Dcache, n),
            StallKind::Dram { issued_at } => {
                // Cycle c is DramBase while c - issued_at <= window, so the
                // first DramQueue cycle is issued_at + window + 1.
                let boundary = issued_at + self.cfg.dram_base_window + 1;
                let base = boundary.saturating_sub(start).min(n);
                if base > 0 {
                    self.stack.add_n(CycleComponent::DramBase, base);
                }
                if n > base {
                    self.stack.add_n(CycleComponent::DramQueue, n - base);
                }
            }
        }
    }

    /// A DRAM line arrived: wake every load waiting on it.
    pub fn complete_line(&mut self, line: u64) {
        // A completion for this core may have freed an MSHR: retry the
        // deferred access on the next tick.
        self.mshr_blocked = false;
        if let Some(seqs) = self.by_line.remove(&line) {
            for seq in seqs {
                debug_assert!(seq >= self.front_seq);
                let idx = (seq - self.front_seq) as usize;
                if let Some(slot) = self.rob.get_mut(idx) {
                    slot.state = SlotState::Ready;
                    if let Some(c) = slot.chain.take() {
                        self.chain_inflight[c as usize] -= 1;
                    }
                }
            }
        }
    }

    /// Advances the core by one cycle: retire, classify the cycle, dispatch.
    pub fn tick(&mut self, stream: &mut dyn InstrStream, hier: &mut Hierarchy, now: u64) {
        if self.at_barrier.is_some() {
            self.stack.add(CycleComponent::Idle);
            return;
        }

        // Retire.
        let mut retired_now = 0;
        while retired_now < self.cfg.width {
            match self.rob.front() {
                Some(slot) => {
                    let ready = match slot.state {
                        SlotState::Ready => true,
                        SlotState::WaitUntil(t) => t <= now,
                        SlotState::WaitLine(_) => false,
                    };
                    if !ready {
                        break;
                    }
                    self.rob.pop_front();
                    self.front_seq += 1;
                    self.retired += 1;
                    retired_now += 1;
                }
                None => break,
            }
        }

        // Classify this cycle.
        let component = if retired_now > 0 {
            CycleComponent::Base
        } else if let Some(head) = self.rob.front() {
            match head.state {
                SlotState::WaitLine(_) => {
                    if now.saturating_sub(head.issued_at) <= self.cfg.dram_base_window {
                        CycleComponent::DramBase
                    } else {
                        CycleComponent::DramQueue
                    }
                }
                SlotState::WaitUntil(_) => CycleComponent::Dcache,
                SlotState::Ready => CycleComponent::Base,
            }
        } else if now < self.fetch_stall_until {
            CycleComponent::Branch
        } else if self.stream_done || self.pending_barrier.is_some() {
            CycleComponent::Idle
        } else {
            CycleComponent::Base
        };
        self.stack.add(component);

        // Dispatch.
        if now >= self.fetch_stall_until && self.pending_barrier.is_none() {
            self.dispatch(stream, hier, now);
        }

        // Enter the barrier once the pipeline drained.
        if let Some(id) = self.pending_barrier {
            if self.rob.is_empty() && self.pending_compute == 0 && self.deferred.is_none() {
                self.pending_barrier = None;
                self.at_barrier = Some(id);
            }
        }
    }

    fn dispatch(&mut self, stream: &mut dyn InstrStream, hier: &mut Hierarchy, now: u64) {
        if self.mshr_blocked {
            debug_assert!(self.deferred.is_some());
            return;
        }
        let mut dispatched = 0;
        while dispatched < self.cfg.width && self.rob.len() < self.cfg.rob_entries {
            if self.pending_compute > 0 {
                self.pending_compute -= 1;
                self.push_slot(SlotState::Ready, now);
                dispatched += 1;
                continue;
            }
            let instr = match self.deferred.take() {
                Some(i) => i,
                None => {
                    if self.stream_done || self.pending_barrier.is_some() {
                        break;
                    }
                    match stream.next_instr() {
                        Some(i) => i,
                        None => {
                            self.stream_done = true;
                            break;
                        }
                    }
                }
            };
            match instr {
                Instr::Compute { count } => {
                    self.pending_compute = count;
                }
                Instr::Load { addr } => match hier.access(self.id, addr, false, now) {
                    AccessResult::Hit { ready_at } => {
                        self.push_slot(SlotState::WaitUntil(ready_at), now);
                        dispatched += 1;
                    }
                    AccessResult::Miss => {
                        let line = addr & !63;
                        let seq = self.next_seq;
                        self.by_line.entry(line).or_default().push(seq);
                        self.push_slot(SlotState::WaitLine(line), now);
                        dispatched += 1;
                    }
                    AccessResult::MshrFull => {
                        self.deferred = Some(instr);
                        self.mshr_blocked = true;
                        break;
                    }
                },
                Instr::ChainLoad { addr, chain } => {
                    let chain = chain as usize % Instr::MAX_CHAINS;
                    if self.chain_inflight[chain] > 0 {
                        // The previous load of this chain still owns the
                        // address — dependence stalls dispatch.
                        self.deferred = Some(instr);
                        break;
                    }
                    match hier.access(self.id, addr, false, now) {
                        AccessResult::Hit { ready_at } => {
                            self.push_slot(SlotState::WaitUntil(ready_at), now);
                            dispatched += 1;
                        }
                        AccessResult::Miss => {
                            let line = addr & !63;
                            let seq = self.next_seq;
                            self.by_line.entry(line).or_default().push(seq);
                            self.chain_inflight[chain] += 1;
                            self.push_slot(SlotState::WaitLine(line), now);
                            if let Some(slot) = self.rob.back_mut() {
                                slot.chain = Some(chain as u8);
                            }
                            dispatched += 1;
                        }
                        AccessResult::MshrFull => {
                            self.deferred = Some(instr);
                            self.mshr_blocked = true;
                            break;
                        }
                    }
                }
                Instr::Store { addr } => match hier.access(self.id, addr, true, now) {
                    AccessResult::Hit { .. } | AccessResult::Miss => {
                        // Stores retire immediately (store buffer).
                        self.push_slot(SlotState::Ready, now);
                        dispatched += 1;
                    }
                    AccessResult::MshrFull => {
                        self.deferred = Some(instr);
                        self.mshr_blocked = true;
                        break;
                    }
                },
                Instr::Branch { mispredict } => {
                    self.push_slot(SlotState::Ready, now);
                    dispatched += 1;
                    if mispredict {
                        self.fetch_stall_until = now + self.cfg.mispredict_penalty;
                        break;
                    }
                }
                Instr::Barrier { id } => {
                    self.pending_barrier = Some(id);
                    break;
                }
            }
        }
    }

    /// Captures this core's full architectural state.
    pub fn snapshot_state(&self) -> CoreState {
        let mut by_line: Vec<(u64, Vec<u64>)> = self
            .by_line
            .iter()
            .map(|(&line, seqs)| (line, seqs.clone()))
            .collect();
        by_line.sort_unstable_by_key(|(line, _)| *line);
        CoreState {
            rob: self.rob.iter().copied().collect(),
            by_line,
            front_seq: self.front_seq,
            next_seq: self.next_seq,
            fetch_stall_until: self.fetch_stall_until,
            pending_compute: self.pending_compute,
            deferred: self.deferred,
            pending_barrier: self.pending_barrier,
            at_barrier: self.at_barrier,
            stream_done: self.stream_done,
            stack: self.stack,
            retired: self.retired,
            chain_inflight: self.chain_inflight.to_vec(),
            mshr_blocked: self.mshr_blocked,
        }
    }

    /// Restores state captured by [`snapshot_state`](Self::snapshot_state)
    /// into this core. The target must have been built with the same
    /// configuration the snapshot was taken under.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's chain table width does not match
    /// [`Instr::MAX_CHAINS`].
    pub fn restore_state(&mut self, state: &CoreState) {
        assert_eq!(
            state.chain_inflight.len(),
            Instr::MAX_CHAINS,
            "core snapshot chain table width mismatch"
        );
        self.rob = state.rob.iter().copied().collect();
        self.by_line = state
            .by_line
            .iter()
            .map(|(line, seqs)| (*line, seqs.clone()))
            .collect();
        self.front_seq = state.front_seq;
        self.next_seq = state.next_seq;
        self.fetch_stall_until = state.fetch_stall_until;
        self.pending_compute = state.pending_compute;
        self.deferred = state.deferred;
        self.pending_barrier = state.pending_barrier;
        self.at_barrier = state.at_barrier;
        self.stream_done = state.stream_done;
        self.stack = state.stack;
        self.retired = state.retired;
        self.chain_inflight.copy_from_slice(&state.chain_inflight);
        self.mshr_blocked = state.mshr_blocked;
    }

    fn push_slot(&mut self, state: SlotState, now: u64) {
        self.rob.push_back(RobSlot {
            state,
            issued_at: now,
            chain: None,
        });
        self.next_seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::hierarchy::HierarchyConfig;
    use crate::instr::VecStream;
    use crate::prefetch::PrefetchConfig;

    fn hierarchy() -> Hierarchy {
        let cfg = HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 2048,
                ways: 2,
                line_bytes: 64,
                latency: 14,
            },
            llc: CacheConfig {
                size_bytes: 8192,
                ways: 2,
                line_bytes: 64,
                latency: 44,
            },
            l1_mshrs: 4,
            prefetch_outstanding: 0,
            prefetch: PrefetchConfig {
                streams: 2,
                degree: 0,
                distance: 1,
                confidence: 99,
            },
        };
        Hierarchy::new(1, cfg)
    }

    /// Runs the core, completing every DRAM read after `mem_latency` cycles.
    fn run(
        core: &mut CoreModel,
        stream: &mut VecStream,
        hier: &mut Hierarchy,
        mem_latency: u64,
        max_cycles: u64,
    ) -> u64 {
        let mut pending: Vec<(u64, u64)> = Vec::new(); // (done_at, line)
        for now in 0..max_cycles {
            core.tick(stream, hier, now);
            while let Some(r) = hier.pop_read() {
                pending.push((now + mem_latency, r.line));
            }
            let mut i = 0;
            while i < pending.len() {
                if pending[i].0 <= now {
                    let (_, line) = pending.swap_remove(i);
                    for c in hier.complete_read(line) {
                        let _ = c;
                        core.complete_line(line);
                    }
                } else {
                    i += 1;
                }
            }
            if core.is_finished() {
                return now;
            }
        }
        panic!("core did not finish in {max_cycles} cycles");
    }

    #[test]
    fn compute_only_retires_at_full_width() {
        let mut core = CoreModel::new(0, CoreConfig::paper_default());
        let mut stream = VecStream::new(vec![Instr::Compute { count: 400 }]);
        let mut h = hierarchy();
        let end = run(&mut core, &mut stream, &mut h, 10, 10_000);
        assert_eq!(core.retired(), 400);
        // 4-wide: ~100 cycles plus small pipeline ramp.
        assert!(end <= 110, "took {end} cycles");
        assert!(core.stack().fraction(CycleComponent::Base) > 0.9);
    }

    #[test]
    fn load_miss_stalls_and_classifies_dram() {
        let mut core = CoreModel::new(0, CoreConfig::paper_default());
        let mut stream = VecStream::new(vec![Instr::Load { addr: 0x10_0000 }]);
        let mut h = hierarchy();
        run(&mut core, &mut stream, &mut h, 300, 10_000);
        // Waited ~300 cycles: some within the base window, the rest queue.
        assert!(core.stack().cycles(CycleComponent::DramBase) > 0);
        assert!(core.stack().cycles(CycleComponent::DramQueue) > 0);
    }

    #[test]
    fn independent_loads_overlap_mlp() {
        // 4 independent miss loads with a 200-cycle memory: MLP-limited
        // (4 MSHRs) so total time ≈ one latency, not four.
        let mut core = CoreModel::new(0, CoreConfig::paper_default());
        let loads: Vec<_> = (0..4)
            .map(|i| Instr::Load {
                addr: 0x100_0000 + i * 0x1_0000,
            })
            .collect();
        let mut stream = VecStream::new(loads);
        let mut h = hierarchy();
        let end = run(&mut core, &mut stream, &mut h, 200, 10_000);
        assert!(end < 2 * 200, "MLP should overlap misses: took {end}");
    }

    #[test]
    fn stores_do_not_stall_retirement() {
        let mut core = CoreModel::new(0, CoreConfig::paper_default());
        let mut stream = VecStream::new(vec![
            Instr::Store { addr: 0x20_0000 },
            Instr::Compute { count: 8 },
        ]);
        let mut h = hierarchy();
        let end = run(&mut core, &mut stream, &mut h, 500, 10_000);
        // Finishes long before the 500-cycle fill would allow if stalled…
        // except is_finished also waits for nothing: stores retire at once.
        assert!(end < 50, "stores must not stall: took {end}");
        assert_eq!(core.retired(), 9);
    }

    #[test]
    fn mispredicted_branch_costs_a_bubble() {
        let mut core = CoreModel::new(0, CoreConfig::paper_default());
        let mut stream = VecStream::new(vec![
            Instr::Compute { count: 4 },
            Instr::Branch { mispredict: true },
            Instr::Compute { count: 4 },
        ]);
        let mut h = hierarchy();
        run(&mut core, &mut stream, &mut h, 10, 1_000);
        assert!(core.stack().cycles(CycleComponent::Branch) >= 10);
    }

    #[test]
    fn barrier_parks_the_core() {
        let mut core = CoreModel::new(0, CoreConfig::paper_default());
        let mut stream =
            VecStream::new(vec![Instr::Compute { count: 2 }, Instr::Barrier { id: 1 }]);
        let mut h = hierarchy();
        for now in 0..100 {
            core.tick(&mut stream, &mut h, now);
        }
        assert_eq!(core.at_barrier(), Some(1));
        assert!(!core.is_finished());
        assert!(core.stack().cycles(CycleComponent::Idle) > 50);
        core.release_barrier();
        for now in 100..110 {
            core.tick(&mut stream, &mut h, now);
        }
        assert!(core.is_finished());
    }

    #[test]
    fn rob_bounds_outstanding_work() {
        let cfg = CoreConfig {
            rob_entries: 8,
            ..CoreConfig::paper_default()
        };
        let mut core = CoreModel::new(0, cfg);
        let mut stream = VecStream::new(vec![Instr::Compute { count: 100 }]);
        let mut h = hierarchy();
        core.tick(&mut stream, &mut h, 0);
        assert!(core.rob_occupancy() <= 8);
    }

    #[test]
    fn chain_loads_serialize_within_a_chain() {
        // 4 chain loads in ONE chain, 200-cycle memory: must take ~4 × 200.
        let mut core = CoreModel::new(0, CoreConfig::paper_default());
        let loads: Vec<_> = (0..4)
            .map(|i| Instr::ChainLoad {
                addr: 0x100_0000 + i * 0x1_0000,
                chain: 0,
            })
            .collect();
        let mut stream = VecStream::new(loads);
        let mut h = hierarchy();
        let end = run(&mut core, &mut stream, &mut h, 200, 10_000);
        assert!(end >= 4 * 200, "dependent chain must serialize: took {end}");
    }

    #[test]
    fn chain_loads_in_different_chains_overlap() {
        let mut core = CoreModel::new(0, CoreConfig::paper_default());
        let loads: Vec<_> = (0..4u64)
            .map(|i| Instr::ChainLoad {
                addr: 0x100_0000 + i * 0x1_0000,
                chain: i as u8,
            })
            .collect();
        let mut stream = VecStream::new(loads);
        let mut h = hierarchy();
        let end = run(&mut core, &mut stream, &mut h, 200, 10_000);
        assert!(end < 2 * 200, "independent chains overlap: took {end}");
    }

    #[test]
    fn l2_hit_stall_counts_as_dcache() {
        let mut core = CoreModel::new(0, CoreConfig::paper_default());
        // Miss to DRAM first, then (after finishing) the same line is in
        // L1; a *different* line in the same L2 set… simplest: one load,
        // complete it, then re-load a line that L1 evicted but L2 kept.
        let mut stream = VecStream::new(vec![Instr::Load { addr: 0 }]);
        let mut h = hierarchy();
        run(&mut core, &mut stream, &mut h, 100, 10_000);
        // L1 is 4 sets × 2 ways: lines 0x000,0x100,0x200 alias to set 0.
        // Fill two more lines one at a time (fresh cores, shared caches),
        // evicting line 0 from L1 while L2 keeps it.
        for addr in [0x100u64, 0x200] {
            let mut c = CoreModel::new(0, CoreConfig::paper_default());
            let mut s = VecStream::new(vec![Instr::Load { addr }]);
            run(&mut c, &mut s, &mut h, 100, 10_000);
        }
        let mut c = CoreModel::new(0, CoreConfig::paper_default());
        let mut s = VecStream::new(vec![Instr::Load { addr: 0x0 }]);
        run(&mut c, &mut s, &mut h, 100, 10_000);
        assert!(
            c.stack().cycles(CycleComponent::Dcache) > 0,
            "{:?}",
            c.stack()
        );
    }
}
