//! CPU substrate for the DRAM stack simulator: out-of-order-proxy cores,
//! a write-back cache hierarchy with a stream prefetcher, and CPU cycle
//! (CPI) stacks.
//!
//! The cores close the loop that the paper's analysis depends on: a core
//! only issues more memory requests while its reorder buffer and MSHRs
//! have room, so higher DRAM latency lowers the request rate — which is
//! exactly the feedback the bandwidth stacks visualize.
//!
//! # Example
//!
//! ```
//! use dramstack_cpu::{CoreModel, CoreConfig, Hierarchy, HierarchyConfig};
//! use dramstack_cpu::{VecStream, Instr};
//!
//! let mut hier = Hierarchy::new(1, HierarchyConfig::paper_default());
//! let mut core = CoreModel::new(0, CoreConfig::paper_default());
//! let mut prog = VecStream::new(vec![Instr::Load { addr: 0x1000 }]);
//!
//! core.tick(&mut prog, &mut hier, 0);
//! // The cold load missed all the way to DRAM:
//! let req = hier.pop_read().expect("outbound DRAM read");
//! assert_eq!(req.line, 0x1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod core_model;
mod cycle_stack;
mod hierarchy;
mod instr;
mod prefetch;

pub use cache::{Cache, CacheConfig, CacheDelta, CacheOutcome, CacheStats, SetPatch};
pub use core_model::{CoreConfig, CoreModel, CoreState, StallKind};
pub use cycle_stack::{CycleComponent, CycleStack};
pub use hierarchy::{
    AccessResult, Hierarchy, HierarchyConfig, HierarchyDelta, HierarchyState, HierarchyStats,
    OutboundRead,
};
pub use instr::{FnStream, Instr, InstrStream, VecStream};
pub use prefetch::{PrefetchConfig, StreamPrefetcher};
