//! The three-level cache hierarchy: private L1D and L2 per core, a shared
//! LLC, an L2 stream prefetcher, MSHR-limited outstanding misses and
//! write-back/write-allocate semantics.
//!
//! The hierarchy is the boundary between the cores and the memory
//! controller: demand/prefetch misses appear in [`Hierarchy::pop_read`],
//! dirty LLC evictions in [`Hierarchy::pop_write`], and the simulator
//! reports DRAM completions back via [`Hierarchy::complete_read`].

use std::collections::{HashMap, HashSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheConfig, CacheDelta, CacheStats};
use crate::prefetch::{PrefetchConfig, StreamPrefetcher};

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Per-core unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache (size independent of core count, as in the
    /// paper).
    pub llc: CacheConfig,
    /// Outstanding demand misses per core (L1 MSHRs).
    pub l1_mshrs: usize,
    /// Outstanding prefetches per core.
    pub prefetch_outstanding: usize,
    /// L2 stream prefetcher parameters.
    pub prefetch: PrefetchConfig,
}

impl HierarchyConfig {
    /// The paper's Skylake-like setup.
    pub fn paper_default() -> Self {
        HierarchyConfig {
            l1: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            llc: CacheConfig::llc(),
            l1_mshrs: 10,
            prefetch_outstanding: 8,
            prefetch: PrefetchConfig::default(),
        }
    }
}

/// Outcome of a core's access into the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Served by a cache; data ready at the returned absolute core cycle.
    Hit {
        /// Core cycle at which the data is available.
        ready_at: u64,
    },
    /// Goes to DRAM; completion arrives via
    /// [`Hierarchy::complete_read`].
    Miss,
    /// No MSHR available — the core must retry next cycle.
    MshrFull,
}

/// A read request headed to the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutboundRead {
    /// Line address.
    pub line: u64,
    /// Requesting core.
    pub core: usize,
    /// Whether this is a prefetch (no core waits on it).
    pub is_prefetch: bool,
}

#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct PendingLine {
    /// Cores with demand waiters on this line.
    waiters: Vec<usize>,
    /// Whether any waiter was a store (fill dirty).
    any_store: bool,
    /// Core whose prefetcher requested the line, if it started as a
    /// prefetch.
    prefetch_for: Option<usize>,
}

/// Aggregated hierarchy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Demand reads sent to DRAM.
    pub dram_demand_reads: u64,
    /// Prefetch reads sent to DRAM.
    pub dram_prefetch_reads: u64,
    /// Dirty lines written back to DRAM.
    pub dram_writes: u64,
    /// Demand misses that merged into an in-flight line.
    pub mshr_merges: u64,
    /// Prefetches that arrived before the demand access (useful).
    pub prefetch_hits: u64,
}

/// Serializable state of the whole [`Hierarchy`], captured by
/// [`Hierarchy::snapshot_state`] and re-injected by
/// [`Hierarchy::restore_state`] into a hierarchy built with the same
/// configuration and core count. Hash-based members are stored as
/// key-sorted vectors (canonical encoding; the vendored serde subset has
/// no hash-map/set support).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyState {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    llc: Cache,
    prefetchers: Vec<StreamPrefetcher>,
    demand_outstanding: Vec<Vec<u64>>,
    prefetch_outstanding: Vec<Vec<u64>>,
    pending: Vec<(u64, PendingLine)>,
    outbound_reads: Vec<OutboundRead>,
    outbound_writes: Vec<u64>,
    stats: HierarchyStats,
}

/// Dirty-state patch for the whole hierarchy, produced by
/// [`Hierarchy::take_delta`] and replayed onto a base [`HierarchyState`]
/// by [`HierarchyState::apply_delta`]. The caches — the only large
/// members — carry per-set patches; everything else (prefetchers, MSHR
/// sets, pending lines, outbound queues, counters) is tiny and captured
/// whole, with the same canonical sorted encoding as
/// [`Hierarchy::snapshot_state`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyDelta {
    l1: Vec<CacheDelta>,
    l2: Vec<CacheDelta>,
    llc: CacheDelta,
    prefetchers: Vec<StreamPrefetcher>,
    demand_outstanding: Vec<Vec<u64>>,
    prefetch_outstanding: Vec<Vec<u64>>,
    pending: Vec<(u64, PendingLine)>,
    outbound_reads: Vec<OutboundRead>,
    outbound_writes: Vec<u64>,
    stats: HierarchyStats,
}

impl HierarchyDelta {
    /// Total number of patched cache sets across every level.
    pub fn patched_sets(&self) -> usize {
        self.l1
            .iter()
            .chain(self.l2.iter())
            .chain(std::iter::once(&self.llc))
            .map(|d| d.sets.len())
            .sum()
    }
}

impl HierarchyState {
    /// Replays a [`HierarchyDelta`] captured from a hierarchy that was
    /// clean relative to this state, producing the hierarchy state at the
    /// delta's capture point.
    ///
    /// # Errors
    ///
    /// Returns a message when the delta does not fit this state's shape
    /// (core count or cache geometry mismatch).
    pub fn apply_delta(&mut self, delta: &HierarchyDelta) -> Result<(), String> {
        if delta.l1.len() != self.l1.len() || delta.l2.len() != self.l2.len() {
            return Err(format!(
                "hierarchy delta covers {} cores, state has {}",
                delta.l1.len(),
                self.l1.len()
            ));
        }
        for (c, d) in self.l1.iter_mut().zip(&delta.l1) {
            c.apply_delta(d)?;
        }
        for (c, d) in self.l2.iter_mut().zip(&delta.l2) {
            c.apply_delta(d)?;
        }
        self.llc.apply_delta(&delta.llc)?;
        self.prefetchers = delta.prefetchers.clone();
        self.demand_outstanding = delta.demand_outstanding.clone();
        self.prefetch_outstanding = delta.prefetch_outstanding.clone();
        self.pending = delta.pending.clone();
        self.outbound_reads = delta.outbound_reads.clone();
        self.outbound_writes = delta.outbound_writes.clone();
        self.stats = delta.stats;
        Ok(())
    }
}

/// The shared memory hierarchy of all cores.
#[derive(Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    llc: Cache,
    prefetchers: Vec<StreamPrefetcher>,
    /// Per-core outstanding demand lines (bounded by `l1_mshrs`).
    demand_outstanding: Vec<HashSet<u64>>,
    /// Per-core outstanding prefetch lines.
    prefetch_outstanding: Vec<HashSet<u64>>,
    /// All in-flight lines, keyed by line address.
    pending: HashMap<u64, PendingLine>,
    outbound_reads: VecDeque<OutboundRead>,
    outbound_writes: VecDeque<u64>,
    prefetch_buf: Vec<u64>,
    line_mask: u64,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Builds the hierarchy for `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if any cache geometry is invalid or `n_cores` is zero.
    pub fn new(n_cores: usize, cfg: HierarchyConfig) -> Self {
        assert!(n_cores > 0, "need at least one core");
        Hierarchy {
            cfg,
            l1: (0..n_cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2: (0..n_cores).map(|_| Cache::new(cfg.l2)).collect(),
            llc: Cache::new(cfg.llc),
            prefetchers: (0..n_cores)
                .map(|_| StreamPrefetcher::new(cfg.prefetch))
                .collect(),
            demand_outstanding: vec![HashSet::new(); n_cores],
            prefetch_outstanding: vec![HashSet::new(); n_cores],
            pending: HashMap::new(),
            outbound_reads: VecDeque::new(),
            outbound_writes: VecDeque::new(),
            prefetch_buf: Vec::new(),
            line_mask: !(u64::from(cfg.l1.line_bytes) - 1),
            stats: HierarchyStats::default(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// `(l1, l2, llc)` cache statistics; `l1`/`l2` summed over cores.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        let sum = |cs: &[Cache]| {
            let mut out = CacheStats::default();
            for c in cs {
                let s = c.stats();
                out.hits += s.hits;
                out.misses += s.misses;
                out.writebacks += s.writebacks;
            }
            out
        };
        (sum(&self.l1), sum(&self.l2), self.llc.stats())
    }

    /// A demand access from `core`. `now` is the current core cycle.
    pub fn access(&mut self, core: usize, addr: u64, is_write: bool, now: u64) -> AccessResult {
        let line = addr & self.line_mask;
        // L1 (lookup only: allocation happens when the fill arrives).
        if self.l1[core].lookup(line, is_write) {
            return AccessResult::Hit {
                ready_at: now + self.cfg.l1.latency,
            };
        }

        // Merge into an in-flight line if present.
        if let Some(p) = self.pending.get_mut(&line) {
            if self.demand_outstanding[core].contains(&line) {
                if is_write {
                    p.any_store = true;
                }
                self.stats.mshr_merges += 1;
                return AccessResult::Miss;
            }
            if self.demand_outstanding[core].len() >= self.cfg.l1_mshrs {
                return AccessResult::MshrFull;
            }
            if is_write {
                p.any_store = true;
            }
            if !p.waiters.contains(&core) {
                p.waiters.push(core);
            }
            self.demand_outstanding[core].insert(line);
            self.stats.mshr_merges += 1;
            return AccessResult::Miss;
        }

        // L2 (train the prefetcher on every L2 lookup).
        self.train_prefetcher(core, line);
        if self.l2[core].lookup(line, false) {
            self.fill_l1(core, line, is_write);
            return AccessResult::Hit {
                ready_at: now + self.cfg.l2.latency,
            };
        }

        // LLC.
        if self.llc.lookup(line, false) {
            self.fill_l2(core, line, false);
            self.fill_l1(core, line, is_write);
            return AccessResult::Hit {
                ready_at: now + self.cfg.llc.latency,
            };
        }

        // DRAM.
        if self.demand_outstanding[core].len() >= self.cfg.l1_mshrs {
            return AccessResult::MshrFull;
        }
        self.demand_outstanding[core].insert(line);
        self.pending.insert(
            line,
            PendingLine {
                waiters: vec![core],
                any_store: is_write,
                prefetch_for: None,
            },
        );
        self.outbound_reads.push_back(OutboundRead {
            line,
            core,
            is_prefetch: false,
        });
        self.stats.dram_demand_reads += 1;
        AccessResult::Miss
    }

    fn train_prefetcher(&mut self, core: usize, line: u64) {
        let line_idx = line >> self.cfg.l1.line_bytes.trailing_zeros();
        let mut buf = std::mem::take(&mut self.prefetch_buf);
        buf.clear();
        self.prefetchers[core].train(line_idx, &mut buf);
        for idx in &buf {
            let pline = idx << self.cfg.l1.line_bytes.trailing_zeros();
            if self.prefetch_outstanding[core].len() >= self.cfg.prefetch_outstanding {
                break;
            }
            if self.pending.contains_key(&pline)
                || self.l2[core].probe(pline)
                || self.llc.probe(pline)
            {
                continue;
            }
            self.prefetch_outstanding[core].insert(pline);
            self.pending.insert(
                pline,
                PendingLine {
                    waiters: Vec::new(),
                    any_store: false,
                    prefetch_for: Some(core),
                },
            );
            self.outbound_reads.push_back(OutboundRead {
                line: pline,
                core,
                is_prefetch: true,
            });
            self.stats.dram_prefetch_reads += 1;
        }
        self.prefetch_buf = buf;
    }

    /// Next read for the memory controller, if any. `peek`-style: only call
    /// when the controller can accept.
    pub fn pop_read(&mut self) -> Option<OutboundRead> {
        self.outbound_reads.pop_front()
    }

    /// Puts back a read the controller could not accept.
    pub fn unpop_read(&mut self, r: OutboundRead) {
        self.outbound_reads.push_front(r);
    }

    /// Next writeback for the memory controller, if any.
    pub fn pop_write(&mut self) -> Option<u64> {
        self.outbound_writes.pop_front()
    }

    /// Puts back a write the controller could not accept.
    pub fn unpop_write(&mut self, line: u64) {
        self.outbound_writes.push_front(line);
    }

    /// Head of the outbound read queue without removing it — the request
    /// the pump would try next. The pump is head-of-line blocking, so a
    /// full target controller here stalls the whole direction.
    pub fn peek_read(&self) -> Option<&OutboundRead> {
        self.outbound_reads.front()
    }

    /// Head of the outbound write queue without removing it.
    pub fn peek_write(&self) -> Option<u64> {
        self.outbound_writes.front().copied()
    }

    /// Reads waiting to be sent to the controller.
    pub fn outbound_read_count(&self) -> usize {
        self.outbound_reads.len()
    }

    /// Writebacks waiting to be sent to the controller.
    pub fn outbound_write_count(&self) -> usize {
        self.outbound_writes.len()
    }

    /// Whether any miss is still in flight anywhere.
    pub fn quiescent(&self) -> bool {
        self.pending.is_empty() && self.outbound_reads.is_empty() && self.outbound_writes.is_empty()
    }

    /// A DRAM read for `line` finished: fill the caches and return the
    /// cores whose demand loads waited on it.
    pub fn complete_read(&mut self, line: u64) -> Vec<usize> {
        let Some(p) = self.pending.remove(&line) else {
            return Vec::new();
        };
        if let Some(core) = p.prefetch_for {
            self.prefetch_outstanding[core].remove(&line);
            if p.waiters.is_empty() {
                // Pure prefetch: fill LLC + the requesting core's L2.
                self.fill_llc(line, false);
                self.fill_l2(core, line, false);
                return Vec::new();
            }
            self.stats.prefetch_hits += 1;
        }
        self.fill_llc(line, false);
        for &core in &p.waiters {
            self.demand_outstanding[core].remove(&line);
            self.fill_l2(core, line, false);
            self.fill_l1(core, line, p.any_store);
        }
        p.waiters
    }

    /// Functionally warms the LLC with `line` (optionally dirty) without
    /// timing, demand statistics or writeback of the evicted victim — used
    /// to start steady-state measurements with a realistically full cache,
    /// so dirty evictions (DRAM writes) flow from cycle 0. Call
    /// [`reset_stats`](Self::reset_stats) after warming.
    pub fn prefill_llc(&mut self, line: u64, dirty: bool) {
        let _ = self.llc.fill(line & self.line_mask, dirty);
    }

    /// Clears all cache and hierarchy counters (after a warm-up).
    pub fn reset_stats(&mut self) {
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            c.reset_stats();
        }
        self.llc.reset_stats();
        self.stats = HierarchyStats::default();
    }

    /// Captures the full state of caches, prefetchers, MSHR sets, pending
    /// lines and outbound queues.
    pub fn snapshot_state(&self) -> HierarchyState {
        let sorted_sets = |sets: &[HashSet<u64>]| {
            sets.iter()
                .map(|s| {
                    let mut v: Vec<u64> = s.iter().copied().collect();
                    v.sort_unstable();
                    v
                })
                .collect()
        };
        let mut pending: Vec<(u64, PendingLine)> = self
            .pending
            .iter()
            .map(|(&line, p)| (line, p.clone()))
            .collect();
        pending.sort_unstable_by_key(|(line, _)| *line);
        HierarchyState {
            l1: self.l1.clone(),
            l2: self.l2.clone(),
            llc: self.llc.clone(),
            prefetchers: self.prefetchers.clone(),
            demand_outstanding: sorted_sets(&self.demand_outstanding),
            prefetch_outstanding: sorted_sets(&self.prefetch_outstanding),
            pending,
            outbound_reads: self.outbound_reads.iter().copied().collect(),
            outbound_writes: self.outbound_writes.iter().copied().collect(),
            stats: self.stats,
        }
    }

    /// Marks every cache clean so the next [`take_delta`](Self::take_delta)
    /// reports only sets mutated after this call. Call when capturing a
    /// full (base) snapshot.
    pub fn mark_clean(&mut self) {
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            c.mark_clean();
        }
        self.llc.mark_clean();
    }

    /// Captures only the state dirtied since the last
    /// [`mark_clean`](Self::mark_clean) / `take_delta` (cache sets), plus
    /// the small always-captured members, and marks the caches clean.
    pub fn take_delta(&mut self) -> HierarchyDelta {
        let sorted_sets = |sets: &[HashSet<u64>]| {
            sets.iter()
                .map(|s| {
                    let mut v: Vec<u64> = s.iter().copied().collect();
                    v.sort_unstable();
                    v
                })
                .collect()
        };
        let mut pending: Vec<(u64, PendingLine)> = self
            .pending
            .iter()
            .map(|(&line, p)| (line, p.clone()))
            .collect();
        pending.sort_unstable_by_key(|(line, _)| *line);
        HierarchyDelta {
            l1: self.l1.iter_mut().map(Cache::take_delta).collect(),
            l2: self.l2.iter_mut().map(Cache::take_delta).collect(),
            llc: self.llc.take_delta(),
            prefetchers: self.prefetchers.clone(),
            demand_outstanding: sorted_sets(&self.demand_outstanding),
            prefetch_outstanding: sorted_sets(&self.prefetch_outstanding),
            pending,
            outbound_reads: self.outbound_reads.iter().copied().collect(),
            outbound_writes: self.outbound_writes.iter().copied().collect(),
            stats: self.stats,
        }
    }

    /// Restores state captured by [`snapshot_state`](Self::snapshot_state).
    /// The target must have been built with the same configuration and core
    /// count the snapshot was taken under.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's core count does not match this hierarchy's.
    pub fn restore_state(&mut self, state: &HierarchyState) {
        assert_eq!(
            state.l1.len(),
            self.l1.len(),
            "hierarchy snapshot core count mismatch"
        );
        self.l1 = state.l1.clone();
        self.l2 = state.l2.clone();
        self.llc = state.llc.clone();
        self.prefetchers = state.prefetchers.clone();
        self.demand_outstanding = state
            .demand_outstanding
            .iter()
            .map(|v| v.iter().copied().collect())
            .collect();
        self.prefetch_outstanding = state
            .prefetch_outstanding
            .iter()
            .map(|v| v.iter().copied().collect())
            .collect();
        self.pending = state
            .pending
            .iter()
            .map(|(line, p)| (*line, p.clone()))
            .collect();
        self.outbound_reads = state.outbound_reads.iter().copied().collect();
        self.outbound_writes = state.outbound_writes.iter().copied().collect();
        // Scratch only lives within `train_prefetcher`; it is always empty
        // at snapshot boundaries.
        self.prefetch_buf.clear();
        self.stats = state.stats;
    }

    // -- fill helpers with dirty-eviction cascade --------------------------------

    fn fill_l1(&mut self, core: usize, line: u64, dirty: bool) {
        if let Some(victim) = self.l1[core].fill(line, dirty) {
            self.fill_l2(core, victim, true);
        }
    }

    fn fill_l2(&mut self, core: usize, line: u64, dirty: bool) {
        if let Some(victim) = self.l2[core].fill(line, dirty) {
            self.fill_llc(victim, true);
        }
    }

    fn fill_llc(&mut self, line: u64, dirty: bool) {
        if let Some(victim) = self.llc.fill(line, dirty) {
            self.outbound_writes.push_back(victim);
            self.stats.dram_writes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hierarchy(cores: usize) -> Hierarchy {
        // Tiny caches so evictions happen quickly in tests.
        let cfg = HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 2048,
                ways: 2,
                line_bytes: 64,
                latency: 14,
            },
            llc: CacheConfig {
                size_bytes: 8192,
                ways: 2,
                line_bytes: 64,
                latency: 44,
            },
            l1_mshrs: 4,
            prefetch_outstanding: 4,
            prefetch: PrefetchConfig {
                streams: 4,
                degree: 1,
                distance: 4,
                confidence: 2,
            },
        };
        Hierarchy::new(cores, cfg)
    }

    #[test]
    fn cold_miss_goes_to_dram_and_fills_on_completion() {
        let mut h = small_hierarchy(1);
        assert_eq!(h.access(0, 0x1000, false, 0), AccessResult::Miss);
        let r = h.pop_read().unwrap();
        assert_eq!(
            r,
            OutboundRead {
                line: 0x1000,
                core: 0,
                is_prefetch: false
            }
        );
        let waiters = h.complete_read(0x1000);
        assert_eq!(waiters, vec![0]);
        // Now it hits in L1.
        assert_eq!(
            h.access(0, 0x1010, false, 100),
            AccessResult::Hit { ready_at: 104 }
        );
        assert!(h.quiescent());
    }

    #[test]
    fn merge_same_line_same_core() {
        let mut h = small_hierarchy(1);
        assert_eq!(h.access(0, 0x1000, false, 0), AccessResult::Miss);
        assert_eq!(h.access(0, 0x1008, false, 1), AccessResult::Miss);
        assert_eq!(h.stats().mshr_merges, 1);
        assert_eq!(h.stats().dram_demand_reads, 1);
        assert_eq!(h.outbound_read_count(), 1, "merged miss sends one read");
    }

    #[test]
    fn merge_across_cores_notifies_both() {
        let mut h = small_hierarchy(2);
        assert_eq!(h.access(0, 0x2000, false, 0), AccessResult::Miss);
        assert_eq!(h.access(1, 0x2000, false, 0), AccessResult::Miss);
        let mut waiters = h.complete_read(0x2000);
        waiters.sort();
        assert_eq!(waiters, vec![0, 1]);
    }

    #[test]
    fn mshr_limit_blocks_new_misses() {
        let mut h = small_hierarchy(1);
        for i in 0..4u64 {
            assert_eq!(
                h.access(0, 0x10_0000 + i * 0x1000, false, 0),
                AccessResult::Miss
            );
        }
        assert_eq!(h.access(0, 0x50_0000, false, 0), AccessResult::MshrFull);
        // Completing one frees an MSHR.
        h.complete_read(0x10_0000);
        assert_eq!(h.access(0, 0x50_0000, false, 1), AccessResult::Miss);
    }

    #[test]
    fn store_miss_fills_dirty_and_evicts_as_writeback() {
        let mut h = small_hierarchy(1);
        assert_eq!(h.access(0, 0x0, true, 0), AccessResult::Miss);
        h.pop_read();
        h.complete_read(0x0);
        // Push the dirty line out of every level: lines 0x0, 0x200, 0x400…
        // share L1 set 0 (8 sets? 512B/64/2 = 4 sets → stride 0x100).
        for i in 1..40u64 {
            let a = i * 0x100;
            if h.access(0, a, false, i) == AccessResult::Miss {
                h.pop_read();
                h.complete_read(a & !63);
            }
        }
        assert!(h.stats().dram_writes > 0, "dirty line written back to DRAM");
        assert!(h.outbound_write_count() > 0);
    }

    #[test]
    fn sequential_demand_stream_issues_prefetches() {
        let mut h = small_hierarchy(1);
        let mut prefetches = 0;
        for i in 0..32u64 {
            let addr = 0x4_0000 + i * 64;
            match h.access(0, addr, false, i) {
                AccessResult::Miss => {
                    while let Some(r) = h.pop_read() {
                        if r.is_prefetch {
                            prefetches += 1;
                        }
                        h.complete_read(r.line);
                    }
                }
                AccessResult::Hit { .. } => {}
                AccessResult::MshrFull => panic!("unexpected MshrFull"),
            }
        }
        assert!(prefetches > 0, "stream prefetcher fired");
        assert!(h.stats().dram_prefetch_reads > 0);
        // Prefetched lines make later demand accesses hit.
        let (l1, l2, _) = h.cache_stats();
        assert!(l1.hits + l2.hits > 0);
    }

    #[test]
    fn unpop_preserves_order() {
        let mut h = small_hierarchy(1);
        h.access(0, 0x1000, false, 0);
        h.access(0, 0x9000, false, 0);
        let first = h.pop_read().unwrap();
        h.unpop_read(first);
        assert_eq!(h.pop_read().unwrap().line, 0x1000);
        assert_eq!(h.pop_read().unwrap().line, 0x9000);
    }

    #[test]
    fn delta_replays_onto_base_state() {
        let mut h = small_hierarchy(2);
        for i in 0..16u64 {
            h.access(0, 0x4_0000 + i * 64, i % 3 == 0, i);
            while let Some(r) = h.pop_read() {
                h.complete_read(r.line);
            }
        }
        let mut base = h.snapshot_state();
        h.mark_clean();

        for i in 0..24u64 {
            h.access(1, 0x8_0000 + i * 0x140, i % 2 == 0, 100 + i);
        }
        h.access(0, 0x4_0000, true, 200);
        let delta = h.take_delta();
        assert!(delta.patched_sets() > 0);

        base.apply_delta(&delta).expect("delta fits the base");
        assert_eq!(base, h.snapshot_state());

        // A clean hierarchy yields an empty patch set that still replays.
        let delta2 = h.take_delta();
        assert_eq!(delta2.patched_sets(), 0);
        base.apply_delta(&delta2).expect("empty delta fits");
        assert_eq!(base, h.snapshot_state());
    }

    #[test]
    fn delta_rejects_core_count_mismatch() {
        let mut h1 = small_hierarchy(1);
        let h2 = small_hierarchy(2);
        let delta = h1.take_delta();
        let mut state = h2.snapshot_state();
        assert!(state.apply_delta(&delta).is_err());
    }

    #[test]
    fn llc_hit_after_other_cores_fill() {
        let mut h = small_hierarchy(2);
        h.access(0, 0x3000, false, 0);
        h.pop_read();
        h.complete_read(0x3000);
        // Core 1 finds it in the LLC.
        match h.access(1, 0x3000, false, 50) {
            AccessResult::Hit { ready_at } => assert_eq!(ready_at, 50 + 44),
            other => panic!("expected LLC hit, got {other:?}"),
        }
    }
}
