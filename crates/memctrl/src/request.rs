//! Request types and the per-read latency breakdown.

use serde::{Deserialize, Serialize};

use dramstack_dram::{Cycle, DramAddress};

/// Opaque identifier of a request accepted by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// The latency-stack components of one completed read, in DRAM cycles
/// (Section V of the paper).
///
/// `total() == base_cntlr + base_dram + preact + refresh + writeburst +
/// queue` by construction; the stack accounting in `dramstack-core` simply
/// averages these over all reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Fixed controller pipeline overhead.
    pub base_cntlr: Cycle,
    /// Minimum device read time: CL + burst.
    pub base_dram: Cycle,
    /// PRE/ACT cycles serialized before this request's CAS (page miss).
    pub preact: Cycle,
    /// Cycles queued while the rank was refreshing (or draining for one).
    pub refresh: Cycle,
    /// Cycles queued while the controller was draining the write buffer.
    pub writeburst: Cycle,
    /// Queueing behind other requests and timing constraints. Counted
    /// per-cycle in the controller (not derived as a residual), so the
    /// components sum exactly to the measured service time.
    pub queue: Cycle,
}

impl LatencyBreakdown {
    /// Total read latency in cycles.
    pub fn total(&self) -> Cycle {
        self.base_cntlr + self.base_dram + self.preact + self.refresh + self.writeburst + self.queue
    }

    /// The paper's `base` component (controller + device minimum).
    pub fn base(&self) -> Cycle {
        self.base_cntlr + self.base_dram
    }
}

/// A finished read request, handed back to the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedRead {
    /// Identifier assigned at enqueue.
    pub id: RequestId,
    /// Caller-provided metadata (e.g. an MSHR index), returned untouched.
    pub meta: u64,
    /// Physical line address of the read.
    pub addr: u64,
    /// Cycle the controller first observed the request (the start of the
    /// interval `breakdown` decomposes).
    pub arrival: Cycle,
    /// Cycle the data became available (including controller overhead).
    pub done_at: Cycle,
    /// Latency-stack decomposition of this read.
    pub breakdown: LatencyBreakdown,
}

/// Internal queue entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct QueueEntry {
    pub id: RequestId,
    pub meta: u64,
    pub phys: u64,
    pub addr: DramAddress,
    pub arrival: Cycle,
    /// Whether a PRE was issued on behalf of this entry.
    pub caused_pre: bool,
    /// Whether an ACT was issued on behalf of this entry.
    pub caused_act: bool,
    /// Cycles spent queued while refresh blocked the rank.
    pub refresh_wait: Cycle,
    /// Cycles spent queued during a write-drain burst.
    pub writeburst_wait: Cycle,
    /// Cycles spent waiting on a PRE/ACT this entry caused.
    pub preact_wait: Cycle,
    /// Cycles spent queued for any other reason (older requests, timing
    /// constraints). Counted directly, so the breakdown needs no residual.
    pub queue_wait: Cycle,
}

impl QueueEntry {
    pub(crate) fn new(
        id: RequestId,
        meta: u64,
        phys: u64,
        addr: DramAddress,
        arrival: Cycle,
    ) -> Self {
        QueueEntry {
            id,
            meta,
            phys,
            addr,
            arrival,
            caused_pre: false,
            caused_act: false,
            refresh_wait: 0,
            writeburst_wait: 0,
            preact_wait: 0,
            queue_wait: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_components() {
        let b = LatencyBreakdown {
            base_cntlr: 12,
            base_dram: 21,
            preact: 34,
            refresh: 5,
            writeburst: 7,
            queue: 11,
        };
        assert_eq!(b.total(), 90);
        assert_eq!(b.base(), 33);
    }

    #[test]
    fn default_breakdown_is_zero() {
        assert_eq!(LatencyBreakdown::default().total(), 0);
    }
}
