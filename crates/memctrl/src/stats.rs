//! Aggregate controller statistics.

use serde::{Deserialize, Serialize};

/// Counters maintained by the [`MemoryController`](crate::MemoryController).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrlStats {
    /// Reads accepted into the read queue.
    pub reads_accepted: u64,
    /// Writes accepted into the write queue.
    pub writes_accepted: u64,
    /// Read CAS commands issued to DRAM (counted at CAS issue, like
    /// `writes_done`, so `page_hit_rate` compares like with like; data
    /// returns `CL + burst` cycles later).
    pub reads_done: u64,
    /// Write CAS commands issued to DRAM.
    pub writes_done: u64,
    /// Read CAS commands that hit an already-open row.
    pub read_hits: u64,
    /// Write CAS commands that hit an already-open row.
    pub write_hits: u64,
    /// Times the controller entered write-drain mode.
    pub write_drains: u64,
    /// Cycles spent in write-drain mode.
    pub drain_cycles: u64,
    /// Refreshes performed.
    pub refreshes: u64,
}

impl CtrlStats {
    /// Row-buffer hit rate over all CAS commands, in `[0, 1]`.
    pub fn page_hit_rate(&self) -> f64 {
        let cas = self.reads_done + self.writes_done;
        if cas == 0 {
            return 0.0;
        }
        (self.read_hits + self.write_hits) as f64 / cas as f64
    }

    /// Read row-buffer hit rate, in `[0, 1]`.
    pub fn read_hit_rate(&self) -> f64 {
        if self.reads_done == 0 {
            return 0.0;
        }
        self.read_hits as f64 / self.reads_done as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates() {
        let s = CtrlStats {
            reads_done: 80,
            writes_done: 20,
            read_hits: 60,
            write_hits: 10,
            ..CtrlStats::default()
        };
        assert!((s.page_hit_rate() - 0.7).abs() < 1e-12);
        assert!((s.read_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CtrlStats::default();
        assert_eq!(s.page_hit_rate(), 0.0);
        assert_eq!(s.read_hit_rate(), 0.0);
    }
}
