//! Physical-address → DRAM-coordinate mapping schemes (Fig. 5 of the
//! paper).
//!
//! The default scheme (Fig. 5a) places the bank/bank-group bits *above* the
//! column bits, so a sequential stream stays in one bank for a whole 8 KB
//! row. The cache-line-interleaved scheme (Fig. 5b) places them directly
//! above the line offset, spreading consecutive lines round-robin over all
//! 16 banks while keeping the column bits below the row bits to retain page
//! locality.

use serde::{Deserialize, Serialize};

use dramstack_dram::{BankAddr, DramAddress, DramGeometry};

/// The named mapping schemes evaluated in the paper, plus a
/// permutation-based extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MappingScheme {
    /// Fig. 5a: `row | bank | bank-group | column | offset` (default).
    #[default]
    RowBankColumn,
    /// Fig. 5b: `row | column | bank | bank-group | offset`
    /// (cache-line interleaved).
    CacheLineInterleaved,
    /// The default layout with the bank/bank-group bits XOR-ed with the
    /// low row bits (permutation-based page interleaving, Zhang et al.,
    /// MICRO 2000): row-conflicting strides spread over banks without
    /// sacrificing the page locality of sequential streams.
    PermutationXor,
}

/// Field order of an address mapping, from least-significant bit upwards
/// (the line offset is always the lowest `log2(line_bytes)` bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Column,
    BankGroup,
    Bank,
    Rank,
    Row,
}

/// A concrete address decoder for one geometry and scheme.
///
/// # Example
///
/// ```
/// use dramstack_memctrl::{AddressMapping, MappingScheme};
/// use dramstack_dram::DramGeometry;
///
/// let m = AddressMapping::new(DramGeometry::ddr4_single_rank(), MappingScheme::RowBankColumn);
/// // Consecutive lines share a row under the default layout (Fig. 5a)…
/// assert_eq!(m.decode(0).row, m.decode(64).row);
/// assert_eq!(m.decode(0).bank, m.decode(64).bank);
/// // …and decode/encode round-trip.
/// assert_eq!(m.encode(m.decode(0x12340)), 0x12340 & !63);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    geometry: DramGeometry,
    scheme: MappingScheme,
}

impl AddressMapping {
    /// Creates a mapping for `geometry` using `scheme`.
    pub fn new(geometry: DramGeometry, scheme: MappingScheme) -> Self {
        AddressMapping { geometry, scheme }
    }

    /// The scheme in use.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    fn field_order(&self) -> [Field; 5] {
        match self.scheme {
            MappingScheme::RowBankColumn | MappingScheme::PermutationXor => [
                Field::Column,
                Field::BankGroup,
                Field::Bank,
                Field::Rank,
                Field::Row,
            ],
            MappingScheme::CacheLineInterleaved => [
                Field::BankGroup,
                Field::Bank,
                Field::Column,
                Field::Rank,
                Field::Row,
            ],
        }
    }

    /// XOR permutation applied to the bank coordinates (identity except
    /// for [`MappingScheme::PermutationXor`]).
    fn permute(&self, mut bank_group: u32, mut bank: u32, row: u32) -> (u32, u32) {
        if self.scheme == MappingScheme::PermutationXor {
            bank_group ^= row & (self.geometry.bank_groups - 1);
            bank ^= (row >> self.geometry.bank_groups.trailing_zeros())
                & (self.geometry.banks_per_group - 1);
        }
        (bank_group, bank)
    }

    fn field_width(&self, f: Field) -> u32 {
        let g = &self.geometry;
        match f {
            Field::Column => g.columns.trailing_zeros(),
            Field::BankGroup => g.bank_groups.trailing_zeros(),
            Field::Bank => g.banks_per_group.trailing_zeros(),
            Field::Rank => g.ranks.trailing_zeros(),
            Field::Row => g.rows.trailing_zeros(),
        }
    }

    /// Decodes a physical byte address into DRAM coordinates. Addresses
    /// beyond the channel capacity wrap around (the high bits are ignored).
    pub fn decode(&self, phys: u64) -> DramAddress {
        let mut rest = phys >> self.geometry.line_bytes.trailing_zeros();
        let mut column = 0u32;
        let mut bank_group = 0u32;
        let mut bank = 0u32;
        let mut rank = 0u32;
        let mut row = 0u32;
        for f in self.field_order() {
            let w = self.field_width(f);
            let v = (rest & ((1u64 << w) - 1)) as u32;
            rest >>= w;
            match f {
                Field::Column => column = v,
                Field::BankGroup => bank_group = v,
                Field::Bank => bank = v,
                Field::Rank => rank = v,
                Field::Row => row = v,
            }
        }
        let (bank_group, bank) = self.permute(bank_group, bank, row);
        DramAddress::new(BankAddr::new(rank, bank_group, bank), row, column)
    }

    /// Re-encodes DRAM coordinates into the physical byte address of the
    /// start of that line — the inverse of [`decode`](Self::decode).
    pub fn encode(&self, addr: DramAddress) -> u64 {
        // The XOR permutation is an involution: applying it again with the
        // same row recovers the stored bank coordinates.
        let (bank_group, bank) = self.permute(addr.bank.bank_group, addr.bank.bank, addr.row);
        let addr = DramAddress::new(
            BankAddr::new(addr.bank.rank, bank_group, bank),
            addr.row,
            addr.column,
        );
        let mut phys = 0u64;
        let mut shift = self.geometry.line_bytes.trailing_zeros();
        for f in self.field_order() {
            let w = self.field_width(f);
            let v = match f {
                Field::Column => addr.column,
                Field::BankGroup => addr.bank.bank_group,
                Field::Bank => addr.bank.bank,
                Field::Rank => addr.bank.rank,
                Field::Row => addr.row,
            };
            phys |= u64::from(v) << shift;
            shift += w;
        }
        phys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn default_map() -> AddressMapping {
        AddressMapping::new(
            DramGeometry::ddr4_single_rank(),
            MappingScheme::RowBankColumn,
        )
    }

    fn interleaved_map() -> AddressMapping {
        AddressMapping::new(
            DramGeometry::ddr4_single_rank(),
            MappingScheme::CacheLineInterleaved,
        )
    }

    #[test]
    fn default_layout_matches_fig_5a() {
        // offset[5:0] column[12:6] bank-group[14:13] bank[16:15] row[31:17]
        let m = default_map();
        let d = m.decode(0);
        assert_eq!(
            (d.column, d.bank.bank_group, d.bank.bank, d.row),
            (0, 0, 0, 0)
        );
        // Bit 6 is the lowest column bit.
        assert_eq!(m.decode(1 << 6).column, 1);
        // Bit 13 is the lowest bank-group bit.
        assert_eq!(m.decode(1 << 13).bank.bank_group, 1);
        // Bit 15 is the lowest bank bit.
        assert_eq!(m.decode(1 << 15).bank.bank, 1);
        // Bit 17 is the lowest row bit.
        assert_eq!(m.decode(1 << 17).row, 1);
    }

    #[test]
    fn interleaved_layout_matches_fig_5b() {
        // offset[5:0] bank-group[7:6] bank[9:8] column[16:10] row[31:17]
        let m = interleaved_map();
        assert_eq!(m.decode(1 << 6).bank.bank_group, 1);
        assert_eq!(m.decode(1 << 8).bank.bank, 1);
        assert_eq!(m.decode(1 << 10).column, 1);
        assert_eq!(m.decode(1 << 17).row, 1);
    }

    #[test]
    fn default_keeps_sequential_stream_in_one_bank_per_row() {
        // 128 consecutive lines (one row) map to the same bank, same row.
        let m = default_map();
        let first = m.decode(0);
        for line in 0..128u64 {
            let d = m.decode(line * 64);
            assert_eq!(d.bank, first.bank);
            assert_eq!(d.row, first.row);
            assert_eq!(d.column, line as u32);
        }
        // The 129th line moves to the next bank group (bit 13).
        let next = m.decode(128 * 64);
        assert_eq!(next.bank.bank_group, 1);
        assert_eq!(next.column, 0);
    }

    #[test]
    fn interleaved_spreads_consecutive_lines_over_all_banks() {
        // 16 consecutive lines hit all 16 banks exactly once.
        let m = interleaved_map();
        let mut seen = std::collections::HashSet::new();
        for line in 0..16u64 {
            let d = m.decode(line * 64);
            assert_eq!(d.column, 0);
            seen.insert(d.bank);
        }
        assert_eq!(seen.len(), 16);
        // Line 16 wraps to bank 0 on the next column, same row: page
        // locality retained ("once all banks are accessed, the stream
        // returns to the first bank on the same page").
        let d = m.decode(16 * 64);
        assert_eq!(d.bank, BankAddr::new(0, 0, 0));
        assert_eq!(d.column, 1);
        assert_eq!(d.row, 0);
    }

    fn xor_map() -> AddressMapping {
        AddressMapping::new(
            DramGeometry::ddr4_single_rank(),
            MappingScheme::PermutationXor,
        )
    }

    #[test]
    fn permutation_preserves_row_and_column() {
        let m = xor_map();
        let d = default_map();
        for addr in [0u64, 1 << 17, 3 << 17, (5 << 17) | (9 << 6)] {
            let a = m.decode(addr);
            let b = d.decode(addr);
            assert_eq!(a.row, b.row);
            assert_eq!(a.column, b.column);
            assert_eq!(a.bank.rank, b.bank.rank);
        }
    }

    #[test]
    fn permutation_spreads_row_strided_conflicts() {
        // Addresses that alias to bank 0 row-conflicting under the default
        // map (same bank, consecutive rows) land on different banks.
        let m = xor_map();
        let d = default_map();
        let mut xor_banks = std::collections::HashSet::new();
        let mut def_banks = std::collections::HashSet::new();
        for row in 0..16u64 {
            let addr = row << 17; // bank bits zero, row varies
            xor_banks.insert(m.decode(addr).bank);
            def_banks.insert(d.decode(addr).bank);
        }
        assert_eq!(def_banks.len(), 1, "default: all rows in one bank");
        assert_eq!(xor_banks.len(), 16, "XOR: spread over all 16 banks");
    }

    #[test]
    fn permutation_keeps_sequential_page_locality() {
        // Within one row, consecutive lines still share bank and row.
        let m = xor_map();
        let first = m.decode(0);
        for line in 0..128u64 {
            let a = m.decode(line * 64);
            assert_eq!(a.bank, first.bank);
            assert_eq!(a.row, first.row);
        }
    }

    #[test]
    fn capacity_wraps() {
        let m = default_map();
        let cap = DramGeometry::ddr4_single_rank().capacity_bytes();
        assert_eq!(m.decode(cap + 64), m.decode(64));
    }

    proptest! {
        #[test]
        fn decode_encode_roundtrip_default(addr in 0u64..(4u64 << 30)) {
            let m = default_map();
            let line = addr & !63;
            prop_assert_eq!(m.encode(m.decode(line)), line);
        }

        #[test]
        fn decode_encode_roundtrip_interleaved(addr in 0u64..(4u64 << 30)) {
            let m = interleaved_map();
            let line = addr & !63;
            prop_assert_eq!(m.encode(m.decode(line)), line);
        }

        #[test]
        fn decode_encode_roundtrip_permutation(addr in 0u64..(4u64 << 30)) {
            let m = xor_map();
            let line = addr & !63;
            prop_assert_eq!(m.encode(m.decode(line)), line);
        }

        #[test]
        fn decode_is_within_geometry(addr in any::<u64>()) {
            let g = DramGeometry::ddr4_single_rank();
            for scheme in [
                MappingScheme::RowBankColumn,
                MappingScheme::CacheLineInterleaved,
                MappingScheme::PermutationXor,
            ] {
                let m = AddressMapping::new(g, scheme);
                let d = m.decode(addr);
                prop_assert!(d.bank.rank < g.ranks);
                prop_assert!(d.bank.bank_group < g.bank_groups);
                prop_assert!(d.bank.bank < g.banks_per_group);
                prop_assert!(d.row < g.rows);
                prop_assert!(d.column < g.columns);
            }
        }

        #[test]
        fn schemes_agree_on_row_bits(line in 0u64..(1u64 << 26)) {
            // Both schemes take the row from bits [31:17]: rows agree.
            let d = default_map().decode(line << 6);
            let i = interleaved_map().decode(line << 6);
            prop_assert_eq!(d.row, i.row);
        }
    }
}
