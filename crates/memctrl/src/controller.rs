//! The memory controller: queues, scheduling, refresh orchestration,
//! write-burst draining and per-request latency attribution.

use serde::{Deserialize, Serialize};

use dramstack_dram::{
    BankActivity, BankState, BlockLevel, BlockReason, Command, Cycle, CycleView, DeviceConfig,
    DramDevice, Earliest, SeededFault, TimedCommand,
};
use dramstack_obs::{NullProbe, Probe};

use crate::mapping::{AddressMapping, MappingScheme};
use crate::policy::{PagePolicy, SchedulerPolicy};
use crate::request::{CompletedRead, LatencyBreakdown, QueueEntry, RequestId};
use crate::stats::CtrlStats;

/// Memory-controller configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtrlConfig {
    /// The DRAM channel behind this controller.
    pub device: DeviceConfig,
    /// Address-mapping scheme (Fig. 5 of the paper).
    pub mapping: MappingScheme,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Request scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Read-queue capacity.
    pub read_queue_cap: usize,
    /// Write-queue capacity (32 in the paper; 128 in the Fig. 8 variant).
    pub write_queue_cap: usize,
    /// Enter write-drain mode at this write-queue occupancy.
    pub wq_high: usize,
    /// Leave write-drain mode at this occupancy.
    pub wq_low: usize,
    /// Fixed controller pipeline overhead added to every read, in DRAM
    /// cycles (the `base-cntlr` latency component).
    pub ctrl_overhead: Cycle,
}

impl CtrlConfig {
    /// The paper's configuration: DDR4-2400, FR-FCFS, open page, default
    /// mapping, 32-entry write queue.
    pub fn paper_default() -> Self {
        CtrlConfig {
            device: DeviceConfig::ddr4_2400(),
            mapping: MappingScheme::RowBankColumn,
            page_policy: PagePolicy::Open,
            scheduler: SchedulerPolicy::FrFcfs,
            read_queue_cap: 64,
            write_queue_cap: 32,
            wq_high: 28,
            wq_low: 8,
            ctrl_overhead: 30,
        }
    }

    /// Scales the write-queue watermarks when the capacity changes, keeping
    /// the paper's 28/32 and 8/32 ratios.
    pub fn with_write_queue(mut self, cap: usize) -> Self {
        self.write_queue_cap = cap;
        self.wq_high = cap * 7 / 8;
        self.wq_low = cap / 4;
        self
    }
}

impl Default for CtrlConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A read whose CAS has issued; data arrives at `done_at`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct InFlightRead {
    id: RequestId,
    meta: u64,
    phys: u64,
    arrival: Cycle,
    done_at: Cycle,
    preact: Cycle,
    refresh_wait: Cycle,
    writeburst_wait: Cycle,
    queue_wait: Cycle,
}

/// Serializable image of one controller's full simulation state, as
/// captured by [`MemoryController::snapshot_state`]. Attachments (probes,
/// the command trace) and tuning knobs (`busy_engine`) are not part of it;
/// the per-bank queue indices and the address decoder are derived state,
/// rebuilt on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtrlSnapshot {
    device: dramstack_dram::DeviceSnapshot,
    read_q: Vec<QueueEntry>,
    write_q: Vec<QueueEntry>,
    in_flight: Vec<InFlightRead>,
    completions: Vec<CompletedRead>,
    drain_mode: bool,
    refresh_draining: bool,
    next_id: u64,
    stats: CtrlStats,
    cas_this_cycle: Option<bool>,
    issued_this_cycle: bool,
}

/// One DRAM memory controller and its channel.
#[derive(Debug)]
pub struct MemoryController {
    cfg: CtrlConfig,
    device: DramDevice,
    map: AddressMapping,
    read_q: Vec<QueueEntry>,
    write_q: Vec<QueueEntry>,
    in_flight: Vec<InFlightRead>,
    completions: Vec<CompletedRead>,
    /// True while draining the write queue (a "write burst").
    drain_mode: bool,
    /// True while stopping traffic so an overdue refresh can issue.
    refresh_draining: bool,
    next_id: u64,
    stats: CtrlStats,
    /// When enabled, every issued command is recorded for offline stack
    /// construction (the paper's hardware-trace workflow).
    trace_enabled: bool,
    trace: Vec<TimedCommand>,
    /// Observation sink. Probes receive copies of events and cannot steer
    /// the simulation; with the default [`NullProbe`] every hook inlines
    /// to nothing and `probe_active` gates the per-cycle call sites.
    probe: Box<dyn Probe>,
    probe_active: bool,
    /// Row-hit flag of the CAS issued this cycle (if any), exported via
    /// [`CycleView::cas_hit`] for per-window row-hit-rate sampling.
    cas_this_cycle: Option<bool>,
    /// Whether the last tick issued *any* command (ACT/PRE/CAS/REF). A
    /// candidate that merely lost arbitration to it becomes issuable the
    /// very next cycle, so [`stall_horizon`](Self::stall_horizon) must not
    /// skip past that cycle.
    issued_this_cycle: bool,
    /// Busy-path event engine master switch: timing memoization in the
    /// device, the indexed FR-FCFS scan, the dirty-bank view sweep and the
    /// stall-horizon bulk skip. Results are bit-identical either way; off
    /// exists for A/B benchmarking and the bit-identity test matrix.
    busy_engine: bool,
    /// Per-flat-bank ascending lists of `read_q` indices — the indexed
    /// FR-FCFS scan consults banks-with-work instead of the whole queue.
    /// Maintained on enqueue/remove regardless of `busy_engine` (so the
    /// toggle can flip mid-run), consulted only when it is on.
    read_bank_index: Vec<Vec<u32>>,
    /// Same for `write_q`.
    write_bank_index: Vec<Vec<u32>>,
}

impl MemoryController {
    /// Creates a controller over a fresh DRAM device.
    ///
    /// # Panics
    ///
    /// Panics if the device configuration is invalid.
    pub fn new(cfg: CtrlConfig) -> Self {
        let device = DramDevice::new(cfg.device);
        let map = AddressMapping::new(cfg.device.geometry, cfg.mapping);
        let n_banks = device.geometry().total_banks() as usize;
        MemoryController {
            cfg,
            device,
            map,
            read_q: Vec::new(),
            write_q: Vec::new(),
            in_flight: Vec::new(),
            completions: Vec::new(),
            drain_mode: false,
            refresh_draining: false,
            next_id: 0,
            stats: CtrlStats::default(),
            trace_enabled: false,
            trace: Vec::new(),
            probe: Box::new(NullProbe),
            probe_active: false,
            cas_this_cycle: None,
            issued_this_cycle: false,
            busy_engine: true,
            read_bank_index: vec![Vec::new(); n_banks],
            write_bank_index: vec![Vec::new(); n_banks],
        }
    }

    /// Toggles the busy-path event engine (on by default). Forwarded to
    /// the device's timing memoization so one switch covers the whole
    /// stack. Reports are bit-identical with the engine on or off; the
    /// off position is the A/B baseline for `busy_speedup` benchmarks.
    pub fn set_busy_engine(&mut self, on: bool) {
        self.busy_engine = on;
        self.device.set_memoize(on);
    }

    /// Whether the busy-path event engine is on.
    pub fn busy_engine(&self) -> bool {
        self.busy_engine
    }

    /// Whether the indexed per-bank scan replaces the full-queue scans
    /// this cycle (FR-FCFS only: FCFS inspects exactly one entry anyway).
    fn use_indexed(&self) -> bool {
        self.busy_engine && self.cfg.scheduler == SchedulerPolicy::FrFcfs
    }

    /// Attaches an observation probe; it receives every controller event
    /// until [`take_probe`](Self::take_probe). Attaching a probe never
    /// changes simulation results.
    pub fn attach_probe(&mut self, probe: Box<dyn Probe>) {
        self.probe = probe;
        self.probe_active = true;
    }

    /// Detaches the current probe (replacing it with [`NullProbe`]) and
    /// returns it.
    pub fn take_probe(&mut self) -> Box<dyn Probe> {
        self.probe_active = false;
        std::mem::replace(&mut self.probe, Box::new(NullProbe))
    }

    /// Whether a probe is attached.
    pub fn probe_attached(&self) -> bool {
        self.probe_active
    }

    /// Starts recording every issued DRAM command (see
    /// [`take_command_trace`](Self::take_command_trace)).
    pub fn enable_command_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// Returns and clears the recorded command trace.
    pub fn take_command_trace(&mut self) -> Vec<TimedCommand> {
        std::mem::take(&mut self.trace)
    }

    fn record(&mut self, now: Cycle, cmd: Command) {
        self.issued_this_cycle = true;
        if self.trace_enabled {
            self.trace.push(TimedCommand::new(now, cmd));
        }
        if self.probe_active {
            let flat = self.device.geometry().flat_bank(cmd.bank);
            self.probe.command_issued(now, cmd, flat);
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &CtrlConfig {
        &self.cfg
    }

    /// Number of banks behind this controller (the `CycleView` width).
    pub fn total_banks(&self) -> usize {
        self.device.geometry().total_banks() as usize
    }

    /// The address decoder in use.
    pub fn mapping(&self) -> &AddressMapping {
        &self.map
    }

    /// The DRAM device (for inspection).
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Injects a seeded bookkeeping fault into the device timing
    /// enforcement (see [`SeededFault`]). The scheduler keeps believing
    /// the corrupted timing, so commands issue early without tripping any
    /// model-internal check — only an attached protocol auditor can tell.
    /// Chaos/audit harness only.
    pub fn inject_fault(&mut self, fault: SeededFault) {
        self.device.inject_fault(fault);
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CtrlStats {
        self.stats
    }

    /// Whether the read queue has space.
    pub fn can_accept_read(&self) -> bool {
        self.read_q.len() < self.cfg.read_queue_cap
    }

    /// Whether the write queue has space.
    pub fn can_accept_write(&self) -> bool {
        self.write_q.len() < self.cfg.write_queue_cap
    }

    /// Reads waiting or in flight.
    pub fn pending_reads(&self) -> usize {
        self.read_q.len() + self.in_flight.len()
    }

    /// Writes waiting.
    pub fn pending_writes(&self) -> usize {
        self.write_q.len()
    }

    /// Whether anything is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.in_flight.is_empty()
    }

    /// Enqueues a read for physical line address `phys`. `meta` is returned
    /// untouched in the completion (e.g. an MSHR index).
    ///
    /// # Panics
    ///
    /// Panics if the read queue is full; check
    /// [`can_accept_read`](Self::can_accept_read) first.
    pub fn enqueue_read(&mut self, phys: u64, meta: u64) -> RequestId {
        assert!(self.can_accept_read(), "read queue full");
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let addr = self.map.decode(phys);
        // Arrival time is recorded lazily at the next tick; use the entry's
        // arrival field set here with the last known time via queue push —
        // the sim enqueues before ticking the same cycle, so `arrival` is
        // patched in tick() when first observed. We store 0 sentinel here
        // and fix it on the first tick the entry is seen.
        let flat = self.device.geometry().flat_bank(addr.bank);
        self.read_bank_index[flat].push(self.read_q.len() as u32);
        self.read_q
            .push(QueueEntry::new(id, meta, phys, addr, Cycle::MAX));
        self.stats.reads_accepted += 1;
        if self.probe_active {
            self.probe.request_accepted(id.0, phys, false);
        }
        id
    }

    /// Enqueues a writeback for physical line address `phys`.
    ///
    /// # Panics
    ///
    /// Panics if the write queue is full; check
    /// [`can_accept_write`](Self::can_accept_write) first.
    pub fn enqueue_write(&mut self, phys: u64) -> RequestId {
        assert!(self.can_accept_write(), "write queue full");
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let addr = self.map.decode(phys);
        let flat = self.device.geometry().flat_bank(addr.bank);
        self.write_bank_index[flat].push(self.write_q.len() as u32);
        self.write_q
            .push(QueueEntry::new(id, 0, phys, addr, Cycle::MAX));
        self.stats.writes_accepted += 1;
        if self.probe_active {
            self.probe.request_accepted(id.0, phys, true);
        }
        id
    }

    /// Completed reads since the last drain.
    pub fn drain_completions(&mut self) -> std::vec::Drain<'_, CompletedRead> {
        self.completions.drain(..)
    }

    /// Moves completed reads into `out` (appending), leaving the internal
    /// buffer empty but with its capacity intact. Allocation-free variant
    /// of [`drain_completions`](Self::drain_completions) for per-cycle hot
    /// loops that reuse a scratch buffer.
    pub fn take_completions_into(&mut self, out: &mut Vec<CompletedRead>) {
        out.append(&mut self.completions);
    }

    /// Conservative horizon for the idle-cycle fast-forward: `Some(h)`
    /// means this controller provably does nothing but idle in `[now, h)` —
    /// no queued or in-flight request, no undelivered completion, no write
    /// drain or refresh drain in progress, no probe observing cycles, and
    /// the device itself is settled until its next refresh deadline `h`.
    ///
    /// The `CycleView` this controller would produce for every cycle in
    /// `[now, h)` is exactly [`CycleView::idle`], so callers may account
    /// those cycles in bulk without ticking.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.is_idle()
            || !self.completions.is_empty()
            || self.drain_mode
            || self.refresh_draining
            || (self.probe_active && self.probe.wants_ticks())
        {
            return None;
        }
        self.device.next_event(now)
    }

    /// Busy-path stall horizon: called with `now` = the last ticked cycle,
    /// returns `Some(h)` when ticks at every cycle `t` in `(now, h)` are
    /// provably pure bookkeeping — no command issues, no completion lands,
    /// no refresh or drain threshold trips, and the `CycleView` equals the
    /// one the tick at `now` produced. Those ticks can then be replayed in
    /// bulk by [`apply_stall_span`](Self::apply_stall_span) plus span-based
    /// sampler accounting, extending the idle fast-forward to
    /// stalled-but-busy spans (saturated bus backlog, tRFC shadows, tFAW
    /// windows, write-drain turnarounds).
    ///
    /// `h` is capped by every cycle at which the frozen state could act:
    /// the next in-flight completion, refresh deadline or refresh end,
    /// bank PRE/ACT/auto-PRE transition, data-bus burst edge, and each
    /// queued request's own next-legal issue cycle for the command class
    /// it currently needs. Requests already issuable stay blocked for the
    /// whole span precisely because the tick at `now` issued *nothing* —
    /// so they are held by a structural block (drain mode, a pending row
    /// hit, per-bank ordering) whose release is itself capped by `h`. A
    /// tick that issued any command disqualifies the span outright: a
    /// candidate that lost only the one-command-per-cycle arbitration is
    /// free again at `now + 1`.
    pub fn stall_horizon(&self, now: Cycle) -> Option<Cycle> {
        if self.stall_blocked() {
            return None;
        }
        debug_assert!(self.cas_this_cycle.is_none());
        // A span needs at least one skippable cycle between `now` and the
        // wake tick at `h`, so each cap is followed by an early bail once
        // `h` drops below `now + 2` — the cheap O(1) caps usually decide
        // before the queue scan is paid.
        let floor = now.saturating_add(2);
        let mut h = self.device.next_bus_boundary(now);
        h = h.min(self.device.next_bank_transition(now));
        if h < floor {
            return None;
        }
        for r in 0..self.device.geometry().ranks {
            let end = self.device.refresh_end(r);
            if end > now {
                h = h.min(end);
            }
            let due = self.device.next_refresh_at(r);
            if due > now {
                h = h.min(due);
            } else if !self.device.is_refreshing(r, now) {
                // An overdue refresh without the drain flag set should be
                // impossible after a tick; refuse to skip if it happens.
                return None;
            }
        }
        if h < floor {
            return None;
        }
        for f in &self.in_flight {
            if f.done_at <= now {
                return None; // undelivered completion
            }
            h = h.min(f.done_at);
        }
        if h < floor {
            return None;
        }
        for (writes, q) in [(false, &self.read_q), (true, &self.write_q)] {
            for e in q {
                if e.arrival > now {
                    return None; // arrival not yet patched by a tick
                }
                let at = match self.device.bank(e.addr.bank).open_row() {
                    Some(open) if open == e.addr.row => {
                        if writes {
                            self.device.earliest_write(e.addr.bank, now).at
                        } else {
                            self.device.earliest_read(e.addr.bank, now).at
                        }
                    }
                    Some(_) => self.device.earliest_precharge(e.addr.bank, now).at,
                    None => self.device.earliest_activate(e.addr.bank, now).at,
                };
                if at > now {
                    h = h.min(at);
                    if h < floor {
                        return None;
                    }
                }
            }
        }
        Some(h)
    }

    /// Cheap O(1) disqualifiers of a busy span at the current tick. When
    /// true, [`stall_horizon`](Self::stall_horizon) is `None` without
    /// scanning anything, so drive loops can use this as a free pre-gate
    /// (and only pay the full scan — or count a backoff — when it passes).
    pub fn stall_blocked(&self) -> bool {
        !self.busy_engine
            || self.refresh_draining
            || !self.completions.is_empty()
            || self.issued_this_cycle
            || (self.probe_active && self.probe.wants_ticks())
    }

    /// Bulk replay of the per-tick bookkeeping for the `n` skipped cycles
    /// `(now, now + n]` of a span vetted by
    /// [`stall_horizon`](Self::stall_horizon): drain-cycle statistics and
    /// the per-waiting-read latency attribution, all of which are constant
    /// across the span by the horizon's construction.
    pub fn apply_stall_span(&mut self, now: Cycle, n: u64) {
        if self.drain_mode {
            self.stats.drain_cycles += n;
        }
        let refreshing = self.refresh_draining || self.is_any_rank_refreshing(now);
        let drain = self.drain_mode;
        let device = &self.device;
        for e in &mut self.read_q {
            debug_assert!(e.arrival <= now);
            if drain {
                e.writeburst_wait += n;
            } else if refreshing {
                e.refresh_wait += n;
            } else if (e.caused_pre || e.caused_act)
                && matches!(
                    device.bank(e.addr.bank).state(now),
                    BankState::Precharging | BankState::Activating
                )
            {
                e.preact_wait += n;
            } else {
                e.queue_wait += n;
            }
        }
    }

    // ---- checkpoint/restore --------------------------------------------------------

    /// Cheap fingerprint of this channel's activity since construction:
    /// the device's busy-engine epoch signature folded with the request
    /// counter and queue occupancies. A changed signature proves the
    /// channel moved; an unchanged one is *not* proof of quiescence (two
    /// probes can straddle a pop/push pair), so delta capture treats it
    /// only as a fast "definitely dirty" gate and falls back to deep
    /// [`CtrlSnapshot`] comparison when it matches.
    pub fn delta_signature(&self) -> u64 {
        let mut h = self.device.epoch_signature();
        for v in [
            self.next_id,
            self.read_q.len() as u64,
            self.write_q.len() as u64,
            self.in_flight.len() as u64,
            self.completions.len() as u64,
            u64::from(self.drain_mode) | u64::from(self.refresh_draining) << 1,
        ] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Captures the full simulation state of this controller and its
    /// device. Probes and the command trace are attachments and are not
    /// captured; reattach them after [`restore_state`](Self::restore_state).
    pub fn snapshot_state(&self) -> CtrlSnapshot {
        CtrlSnapshot {
            device: self.device.snapshot_state(),
            read_q: self.read_q.clone(),
            write_q: self.write_q.clone(),
            in_flight: self.in_flight.clone(),
            completions: self.completions.clone(),
            drain_mode: self.drain_mode,
            refresh_draining: self.refresh_draining,
            next_id: self.next_id,
            stats: self.stats,
            cas_this_cycle: self.cas_this_cycle,
            issued_this_cycle: self.issued_this_cycle,
        }
    }

    /// Restores state captured by [`snapshot_state`](Self::snapshot_state)
    /// into a controller built from the same configuration. The per-bank
    /// queue indices are rebuilt from the restored queues and the device's
    /// timing memo tables are invalidated, so subsequent scheduling is
    /// bit-identical to an uninterrupted run. Controller time is monotonic:
    /// the first `tick` after a restore must be at or past the cycle the
    /// snapshot was taken.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's geometry does not match this controller's
    /// configuration.
    pub fn restore_state(&mut self, snap: &CtrlSnapshot) {
        self.device.restore_state(&snap.device);
        self.read_q = snap.read_q.clone();
        self.write_q = snap.write_q.clone();
        self.in_flight = snap.in_flight.clone();
        self.completions = snap.completions.clone();
        self.drain_mode = snap.drain_mode;
        self.refresh_draining = snap.refresh_draining;
        self.next_id = snap.next_id;
        self.stats = snap.stats;
        self.cas_this_cycle = snap.cas_this_cycle;
        self.issued_this_cycle = snap.issued_this_cycle;
        for list in self
            .read_bank_index
            .iter_mut()
            .chain(self.write_bank_index.iter_mut())
        {
            list.clear();
        }
        for (i, e) in self.read_q.iter().enumerate() {
            let flat = self.device.geometry().flat_bank(e.addr.bank);
            self.read_bank_index[flat].push(i as u32);
        }
        for (i, e) in self.write_q.iter().enumerate() {
            let flat = self.device.geometry().flat_bank(e.addr.bank);
            self.write_bank_index[flat].push(i as u32);
        }
    }

    /// Advances the controller by one DRAM cycle: issues at most one
    /// command, tracks latency components, collects completions and fills
    /// `view` with this cycle's classification inputs for the bandwidth
    /// stack.
    pub fn tick(&mut self, now: Cycle, view: &mut CycleView) {
        self.device.advance(now);
        self.patch_arrivals(now);
        self.cas_this_cycle = None;
        self.issued_this_cycle = false;
        // Start-of-cycle queue occupancy, exported through the view for
        // per-window sampling regardless of what issues below.
        let read_q_depth = self.read_q.len();
        let write_q_depth = self.write_q.len();

        // Refresh orchestration: when a refresh falls due, stop normal
        // traffic on that rank, close open banks, then issue REF.
        let ranks = self.device.geometry().ranks;
        if !self.refresh_draining {
            for r in 0..ranks {
                if self.device.refresh_due(r, now) && !self.device.is_refreshing(r, now) {
                    self.refresh_draining = true;
                }
            }
        }

        // Write-drain hysteresis.
        if !self.drain_mode && self.write_q.len() >= self.cfg.wq_high {
            self.drain_mode = true;
            self.stats.write_drains += 1;
            if self.probe_active {
                self.probe.write_drain_entered(now, write_q_depth);
            }
        }
        if self.drain_mode && self.write_q.len() <= self.cfg.wq_low {
            self.drain_mode = false;
            if self.probe_active {
                self.probe.write_drain_exited(now);
            }
        }
        if self.drain_mode {
            self.stats.drain_cycles += 1;
        }
        if self.probe_active {
            self.probe.tick(
                now,
                read_q_depth,
                write_q_depth,
                self.in_flight.len(),
                self.drain_mode,
            );
        }

        // Issue at most one command on the command bus.
        if self.refresh_draining {
            self.schedule_refresh(now);
        } else {
            self.schedule(now);
        }

        // Latency attribution for reads still waiting in the queue. Every
        // waiting cycle is charged to exactly one component — write drain,
        // refresh, a PRE/ACT this entry caused, or plain queueing — so the
        // final breakdown sums to the measured service time with no
        // clamped residual (audited by `conserve::check_read`).
        let refreshing = self.refresh_draining || self.is_any_rank_refreshing(now);
        let drain = self.drain_mode;
        let device = &self.device;
        for e in &mut self.read_q {
            if e.arrival > now {
                continue;
            }
            if drain {
                e.writeburst_wait += 1;
            } else if refreshing {
                e.refresh_wait += 1;
            } else if (e.caused_pre || e.caused_act)
                && matches!(
                    device.bank(e.addr.bank).state(now),
                    BankState::Precharging | BankState::Activating
                )
            {
                e.preact_wait += 1;
            } else {
                e.queue_wait += 1;
            }
        }

        self.collect_completions(now);
        self.build_view(now, view);
        view.read_q_depth = read_q_depth;
        view.write_q_depth = write_q_depth;
        view.drain = self.drain_mode;
        view.cas_hit = self.cas_this_cycle;
    }

    fn is_any_rank_refreshing(&self, now: Cycle) -> bool {
        (0..self.device.geometry().ranks).any(|r| self.device.is_refreshing(r, now))
    }

    /// Entries pushed between ticks get their arrival stamped at the first
    /// tick that observes them.
    fn patch_arrivals(&mut self, now: Cycle) {
        for e in self.read_q.iter_mut().chain(self.write_q.iter_mut()) {
            if e.arrival == Cycle::MAX {
                e.arrival = now;
                if self.probe_active {
                    self.probe.request_arrival(e.id.0, now);
                }
            }
        }
    }

    // ---- refresh ---------------------------------------------------------------

    fn schedule_refresh(&mut self, now: Cycle) {
        let g = *self.device.geometry();
        // Close any open bank whose precharge window allows it.
        for addr in g.iter_banks() {
            if self.device.bank(addr).open_row().is_some() {
                if self.device.earliest_precharge(addr, now).ready(now) {
                    self.device
                        .issue(Command::precharge(addr), now)
                        .expect("validated precharge");
                    self.record(now, Command::precharge(addr));
                    return; // one command per cycle
                }
                // An open bank exists but cannot precharge yet.
                return;
            }
        }
        // All banks closed: refresh each due rank once quiet.
        for r in 0..g.ranks {
            if self.device.refresh_due(r, now) && self.device.rank_quiet(r, now) {
                self.device
                    .issue(Command::refresh(r), now)
                    .expect("validated refresh");
                self.record(now, Command::refresh(r));
                self.stats.refreshes += 1;
                self.refresh_draining = false;
                if self.probe_active {
                    let t_rfc = self.device.timing().t_rfc;
                    self.probe.refresh_window(r as usize, now, now + t_rfc);
                }
                return;
            }
        }
    }

    // ---- normal scheduling --------------------------------------------------------

    /// Which queue feeds the scheduler this cycle.
    fn use_writes(&self) -> bool {
        self.drain_mode || (self.read_q.is_empty() && !self.write_q.is_empty())
    }

    fn schedule(&mut self, now: Cycle) {
        let use_writes = self.use_writes();
        self.try_issue_from(now, use_writes);
    }

    /// Attempts to issue one command for the given queue. Returns true if a
    /// command was issued.
    fn try_issue_from(&mut self, now: Cycle, writes: bool) -> bool {
        let limit = match self.cfg.scheduler {
            SchedulerPolicy::FrFcfs => usize::MAX,
            SchedulerPolicy::Fcfs => 1,
        };

        // Pass 1 (first-ready): oldest CAS-ready row hit.
        if let Some(idx) = self.find_ready_cas(now, writes, limit) {
            self.issue_cas_for(now, writes, idx);
            return true;
        }
        // Pass 2: oldest-per-bank ACT/PRE that can issue.
        if let Some(cmd) = self.find_actpre(now, writes, limit) {
            let (cmd, entry_idx, caused) = cmd;
            self.device.issue(cmd, now).expect("validated act/pre");
            self.record(now, cmd);
            let q = if writes {
                &mut self.write_q
            } else {
                &mut self.read_q
            };
            match caused {
                Caused::Act => q[entry_idx].caused_act = true,
                Caused::Pre => q[entry_idx].caused_pre = true,
            }
            return true;
        }
        false
    }

    fn find_ready_cas(&self, now: Cycle, writes: bool, limit: usize) -> Option<usize> {
        if self.use_indexed() {
            let got = self.find_ready_cas_indexed(now, writes);
            debug_assert_eq!(got, self.find_ready_cas_scan(now, writes, limit));
            return got;
        }
        self.find_ready_cas_scan(now, writes, limit)
    }

    fn find_ready_cas_scan(&self, now: Cycle, writes: bool, limit: usize) -> Option<usize> {
        let q = if writes { &self.write_q } else { &self.read_q };
        for (idx, e) in q.iter().take(limit).enumerate() {
            if e.arrival > now {
                continue;
            }
            if self.device.bank(e.addr.bank).open_row() != Some(e.addr.row) {
                continue;
            }
            let earliest = if writes {
                self.device.earliest_write(e.addr.bank, now)
            } else {
                self.device.earliest_read(e.addr.bank, now)
            };
            if earliest.ready(now) {
                return Some(idx);
            }
        }
        None
    }

    /// O(banks-with-work) equivalent of the full-queue FR-FCFS pass 1.
    ///
    /// CAS readiness is uniform across same-bank row hits (the earliest
    /// query depends only on the bank), so the oldest hit of each bank is
    /// that bank's only candidate, and the queue-order winner is the
    /// minimum queue index over banks.
    fn find_ready_cas_indexed(&self, now: Cycle, writes: bool) -> Option<usize> {
        let (q, index) = if writes {
            (&self.write_q, &self.write_bank_index)
        } else {
            (&self.read_q, &self.read_bank_index)
        };
        let mut best: Option<usize> = None;
        for list in index {
            let Some(&first) = list.first() else { continue };
            if best.is_some_and(|b| b < first as usize) {
                continue; // every candidate here is younger than the winner
            }
            let bank = q[first as usize].addr.bank;
            let Some(open) = self.device.bank(bank).open_row() else {
                continue;
            };
            let Some(&idx) = list
                .iter()
                .find(|&&i| q[i as usize].arrival <= now && q[i as usize].addr.row == open)
            else {
                continue;
            };
            if best.is_some_and(|b| b < idx as usize) {
                continue;
            }
            let earliest = if writes {
                self.device.earliest_write(bank, now)
            } else {
                self.device.earliest_read(bank, now)
            };
            if earliest.ready(now) {
                best = Some(idx as usize);
            }
        }
        best
    }

    /// Removes queue position `removed` from the per-bank index of `flat`
    /// and shifts the remaining stored positions down — mirrors
    /// `Vec::remove` on the queue itself, preserving ascending order.
    fn index_remove(index: &mut [Vec<u32>], flat: usize, removed: usize) {
        let pos = index[flat]
            .iter()
            .position(|&i| i as usize == removed)
            .expect("queue entry present in its bank index");
        index[flat].remove(pos);
        for list in index.iter_mut() {
            for i in list.iter_mut() {
                if *i as usize > removed {
                    *i -= 1;
                }
            }
        }
    }

    fn issue_cas_for(&mut self, now: Cycle, writes: bool, idx: usize) {
        let e = if writes {
            let e = self.write_q.remove(idx);
            let flat = self.device.geometry().flat_bank(e.addr.bank);
            Self::index_remove(&mut self.write_bank_index, flat, idx);
            e
        } else {
            let e = self.read_q.remove(idx);
            let flat = self.device.geometry().flat_bank(e.addr.bank);
            Self::index_remove(&mut self.read_bank_index, flat, idx);
            e
        };
        let auto_pre = self.cfg.page_policy == PagePolicy::Closed
            && !self.any_pending_hit(e.addr.bank, e.addr.row);
        let cmd = match (writes, auto_pre) {
            (false, false) => Command::read(e.addr.bank, e.addr.column),
            (false, true) => Command::read_ap(e.addr.bank, e.addr.column),
            (true, false) => Command::write(e.addr.bank, e.addr.column),
            (true, true) => Command::write_ap(e.addr.bank, e.addr.column),
        };
        let done_at = self.device.issue(cmd, now).expect("validated CAS");
        self.record(now, cmd);
        let hit = !e.caused_act && !e.caused_pre;
        self.cas_this_cycle = Some(hit);
        if self.probe_active {
            let flat = self.device.geometry().flat_bank(e.addr.bank);
            self.probe.cas_issued(e.id.0, now, writes, hit, flat);
        }
        if writes {
            self.stats.writes_done += 1;
            if hit {
                self.stats.write_hits += 1;
            }
        } else {
            self.stats.reads_done += 1;
            if hit {
                self.stats.read_hits += 1;
            }
            self.in_flight.push(InFlightRead {
                id: e.id,
                meta: e.meta,
                phys: e.phys,
                arrival: e.arrival,
                done_at,
                preact: e.preact_wait,
                refresh_wait: e.refresh_wait,
                writeburst_wait: e.writeburst_wait,
                queue_wait: e.queue_wait,
            });
        }
    }

    /// Whether any queued request (either queue) targets the open `row` of
    /// `bank` — used by the closed page policy and by FR-FCFS's
    /// don't-close-a-useful-row rule.
    fn any_pending_hit(&self, bank: dramstack_dram::BankAddr, row: u32) -> bool {
        if self.use_indexed() {
            // Entries in a bank's index list share that bank by
            // construction, so only the row needs checking.
            let flat = self.device.geometry().flat_bank(bank);
            let got = self.read_bank_index[flat]
                .iter()
                .any(|&i| self.read_q[i as usize].addr.row == row)
                || self.write_bank_index[flat]
                    .iter()
                    .any(|&i| self.write_q[i as usize].addr.row == row);
            debug_assert_eq!(got, self.any_pending_hit_scan(bank, row));
            return got;
        }
        self.any_pending_hit_scan(bank, row)
    }

    fn any_pending_hit_scan(&self, bank: dramstack_dram::BankAddr, row: u32) -> bool {
        self.read_q
            .iter()
            .chain(self.write_q.iter())
            .any(|e| e.addr.bank == bank && e.addr.row == row)
    }

    fn find_actpre(
        &self,
        now: Cycle,
        writes: bool,
        limit: usize,
    ) -> Option<(Command, usize, Caused)> {
        if self.use_indexed() {
            let got = self.find_actpre_indexed(now, writes);
            debug_assert_eq!(got, self.find_actpre_scan(now, writes, limit));
            return got;
        }
        self.find_actpre_scan(now, writes, limit)
    }

    fn find_actpre_scan(
        &self,
        now: Cycle,
        writes: bool,
        limit: usize,
    ) -> Option<(Command, usize, Caused)> {
        let q = if writes { &self.write_q } else { &self.read_q };
        let mut seen_banks = [false; 64];
        for (idx, e) in q.iter().take(limit).enumerate() {
            if e.arrival > now {
                continue;
            }
            let flat = self.device.geometry().flat_bank(e.addr.bank);
            if seen_banks[flat] {
                continue; // only the oldest request per bank drives the bank
            }
            seen_banks[flat] = true;
            if let Some(found) = self.actpre_for_entry(now, writes, q, idx) {
                return Some(found);
            }
        }
        None
    }

    /// O(banks-with-work) equivalent of the full-queue pass 2: each bank's
    /// oldest arrived entry is its only driver (exactly the entries the
    /// `seen_banks` scan would evaluate), visited in queue order.
    fn find_actpre_indexed(&self, now: Cycle, writes: bool) -> Option<(Command, usize, Caused)> {
        let (q, index) = if writes {
            (&self.write_q, &self.write_bank_index)
        } else {
            (&self.read_q, &self.read_bank_index)
        };
        // Stack-allocated candidate list: at most one per bank, and the
        // geometry is capped at 64 banks (same bound as `seen_banks`).
        let mut cands = [0u32; 64];
        let mut n = 0;
        for list in index {
            if let Some(&i) = list.iter().find(|&&i| q[i as usize].arrival <= now) {
                cands[n] = i;
                n += 1;
            }
        }
        let cands = &mut cands[..n];
        cands.sort_unstable();
        for &idx in cands.iter() {
            if let Some(found) = self.actpre_for_entry(now, writes, q, idx as usize) {
                return Some(found);
            }
        }
        None
    }

    /// The per-candidate ACT/PRE decision shared by both scan shapes.
    fn actpre_for_entry(
        &self,
        now: Cycle,
        writes: bool,
        q: &[QueueEntry],
        idx: usize,
    ) -> Option<(Command, usize, Caused)> {
        let e = &q[idx];
        match self.device.bank(e.addr.bank).open_row() {
            None => {
                // Skip banks still precharging and banks being refreshed.
                if self.device.earliest_activate(e.addr.bank, now).ready(now) {
                    return Some((Command::activate(e.addr.bank, e.addr.row), idx, Caused::Act));
                }
            }
            Some(open) if open != e.addr.row => {
                // Conflict: close the row, but under FR-FCFS never
                // while same-queue row hits are still pending on it
                // (hits are served first). Strict FCFS closes
                // unconditionally — only the head request matters.
                let hits_pending = self.cfg.scheduler == SchedulerPolicy::FrFcfs
                    && self.same_queue_hit(writes, e.addr.bank, open);
                if !hits_pending && self.device.earliest_precharge(e.addr.bank, now).ready(now) {
                    return Some((Command::precharge(e.addr.bank), idx, Caused::Pre));
                }
            }
            Some(_) => {} // row hit whose CAS is constrained: pass 1 handles it
        }
        None
    }

    /// Whether the given queue holds a request hitting `row` of `bank`
    /// (any arrival time, matching the legacy full-queue scan).
    fn same_queue_hit(&self, writes: bool, bank: dramstack_dram::BankAddr, row: u32) -> bool {
        let (q, index) = if writes {
            (&self.write_q, &self.write_bank_index)
        } else {
            (&self.read_q, &self.read_bank_index)
        };
        if self.use_indexed() {
            let flat = self.device.geometry().flat_bank(bank);
            let got = index[flat].iter().any(|&i| q[i as usize].addr.row == row);
            debug_assert_eq!(
                got,
                q.iter().any(|o| o.addr.bank == bank && o.addr.row == row)
            );
            return got;
        }
        q.iter().any(|o| o.addr.bank == bank && o.addr.row == row)
    }

    fn collect_completions(&mut self, now: Cycle) {
        let overhead = self.cfg.ctrl_overhead;
        let timing = *self.device.timing();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].done_at <= now {
                let f = self.in_flight.swap_remove(i);
                if self.probe_active {
                    self.probe.data_returned(f.id.0, f.done_at);
                }
                // Queue ticks were counted exactly while the read waited,
                // so no residual subtraction (and no clamp) is needed:
                // preact + refresh + writeburst + queue cover every cycle
                // in [arrival, CAS) and base_dram covers [CAS, done_at).
                let base_dram = timing.base_read_cycles();
                self.completions.push(CompletedRead {
                    id: f.id,
                    meta: f.meta,
                    addr: f.phys,
                    arrival: f.arrival,
                    done_at: f.done_at + overhead,
                    breakdown: LatencyBreakdown {
                        base_cntlr: overhead,
                        base_dram,
                        preact: f.preact,
                        refresh: f.refresh_wait,
                        writeburst: f.writeburst_wait,
                        queue: f.queue_wait,
                    },
                });
            } else {
                i += 1;
            }
        }
    }

    // ---- cycle-view construction for the bandwidth stack ---------------------------

    fn build_view(&mut self, now: Cycle, view: &mut CycleView) {
        view.reset();
        view.bus = self.device.bus_activity(now);
        view.refreshing = self.is_any_rank_refreshing(now);
        view.has_pending = !self.is_idle();

        let n = self.total_banks();
        debug_assert_eq!(view.banks.len(), n);
        if self.busy_engine {
            // Dirty sweep: `reset` left every bank Idle, which is exactly
            // the mapping for the settled states, so only banks still in a
            // PRE/ACT transition need touching.
            self.device.visit_transitioning_banks(now, |flat, st| {
                view.banks[flat] = match st {
                    BankState::Precharging => BankActivity::Precharging,
                    BankState::Activating => BankActivity::Activating,
                    _ => unreachable!("visit yields only transitioning banks"),
                };
            });
            #[cfg(debug_assertions)]
            for flat in 0..n {
                debug_assert_eq!(
                    view.banks[flat],
                    Self::bank_activity(&self.device, flat, now)
                );
            }
        } else {
            for flat in 0..n {
                view.banks[flat] = Self::bank_activity(&self.device, flat, now);
            }
        }

        // Cycles already classified as useful or refresh need no analysis.
        if view.bus.is_some() || view.refreshing {
            return;
        }
        if self.refresh_draining {
            // Lost to the refresh drain window; banks may be precharging
            // (classified above); if everything is idle, charge refresh.
            view.rank_block = BlockReason::Refresh;
            return;
        }

        // Explain why pending requests cannot move: mark constrained banks
        // and record a rank-level reason for the all-idle case.
        let writes_first = self.use_writes();
        self.analyze_blocked(now, writes_first, view);
        if view.rank_block == BlockReason::None {
            self.analyze_blocked(now, !writes_first, view);
        }
    }

    /// The per-cycle view classification of one bank's state.
    ///
    /// A CAS in its CL/CWL window occupies no resource another request
    /// could use this cycle, so it maps to Idle; blocked-request analysis
    /// decides whether anything is truly constrained.
    fn bank_activity(device: &DramDevice, flat: usize, now: Cycle) -> BankActivity {
        match device.bank_state(flat, now) {
            BankState::Precharging => BankActivity::Precharging,
            BankState::Activating => BankActivity::Activating,
            BankState::CasInFlight | BankState::Open | BankState::Precharged => BankActivity::Idle,
        }
    }

    fn analyze_blocked(&self, now: Cycle, writes: bool, view: &mut CycleView) {
        let q = if writes { &self.write_q } else { &self.read_q };
        let g = self.device.geometry();
        for e in q {
            if e.arrival > now {
                continue;
            }
            let bank = e.addr.bank;
            let earliest: Earliest = match self.device.bank(bank).open_row() {
                Some(open) if open == e.addr.row => {
                    if writes {
                        self.device.earliest_write(bank, now)
                    } else {
                        self.device.earliest_read(bank, now)
                    }
                }
                Some(_) => self.device.earliest_precharge(bank, now),
                None => self.device.earliest_activate(bank, now),
            };
            if earliest.ready(now) {
                continue; // will issue on a later pass this or next cycle
            }
            match earliest.reason.level() {
                BlockLevel::BankGroup => {
                    // The whole bank group is the occupied resource.
                    for b in g.iter_banks() {
                        if b.rank == bank.rank && b.bank_group == bank.bank_group {
                            let flat = g.flat_bank(b);
                            if view.banks[flat] == BankActivity::Idle {
                                view.banks[flat] = BankActivity::Constrained;
                            }
                        }
                    }
                }
                BlockLevel::Rank => {
                    let flat = g.flat_bank(bank);
                    if view.banks[flat] == BankActivity::Idle {
                        view.banks[flat] = BankActivity::Constrained;
                    }
                    if view.rank_block == BlockReason::None {
                        view.rank_block = earliest.reason;
                    }
                }
                BlockLevel::Bank | BlockLevel::None => {}
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Caused {
    Act,
    Pre,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ticks from `start` until idle. Controller time is monotonic (the
    /// dirty-bank sweep and memo tables rely on it), so resuming a
    /// controller must pass a `start` at or past the previous run's end.
    fn run_until_done_from(
        ctrl: &mut MemoryController,
        start: Cycle,
        max: Cycle,
    ) -> Vec<CompletedRead> {
        let mut view = CycleView::idle(ctrl.total_banks());
        let mut out = Vec::new();
        for now in start..start + max {
            ctrl.tick(now, &mut view);
            out.extend(ctrl.drain_completions());
            if ctrl.is_idle() {
                break;
            }
        }
        out
    }

    fn run_until_done(ctrl: &mut MemoryController, max: Cycle) -> Vec<CompletedRead> {
        run_until_done_from(ctrl, 0, max)
    }

    #[test]
    fn single_read_latency_is_base_plus_preact() {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        ctrl.enqueue_read(0x10_0000, 1);
        let done = run_until_done(&mut ctrl, 500);
        assert_eq!(done.len(), 1);
        let b = done[0].breakdown;
        let t = dramstack_dram::TimingParams::ddr4_2400();
        // Cold bank: ACT needed but no PRE.
        assert_eq!(b.preact, t.t_rcd);
        assert_eq!(b.base_dram, t.cl + t.burst_cycles);
        assert_eq!(b.refresh, 0);
        assert_eq!(b.writeburst, 0);
        // ACT issues the first tick that observes the request and the CAS
        // the cycle tRCD elapses: exact attribution leaves no queue ticks.
        assert_eq!(b.queue, 0);
        // Exactness: the components sum to the measured service time.
        assert_eq!(b.total(), done[0].done_at - done[0].arrival);
        assert_eq!(ctrl.stats().reads_done, 1);
        assert_eq!(ctrl.stats().read_hits, 0);
    }

    #[test]
    fn second_read_same_row_is_a_hit() {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        ctrl.enqueue_read(0x10_0000, 1);
        ctrl.enqueue_read(0x10_0040, 2);
        let done = run_until_done(&mut ctrl, 500);
        assert_eq!(done.len(), 2);
        assert_eq!(ctrl.stats().read_hits, 1);
        let hit = done.iter().find(|c| c.meta == 2).unwrap();
        assert_eq!(hit.breakdown.preact, 0);
    }

    #[test]
    fn row_conflict_pays_precharge_and_activate() {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        let t = dramstack_dram::TimingParams::ddr4_2400();
        // Same bank (low bits below bit 13 identical), different row
        // (bit 17+).
        ctrl.enqueue_read(0x0, 1);
        let first = run_until_done(&mut ctrl, 1000);
        assert_eq!(first.len(), 1);
        ctrl.enqueue_read(1 << 17, 2);
        let second = run_until_done_from(&mut ctrl, 1000, 2000);
        assert_eq!(second.len(), 1);
        let b = second[0].breakdown;
        assert_eq!(b.preact, t.t_rp + t.t_rcd, "conflict: PRE + ACT");
    }

    #[test]
    fn closed_policy_uses_auto_precharge() {
        let mut cfg = CtrlConfig::paper_default();
        cfg.page_policy = PagePolicy::Closed;
        let mut ctrl = MemoryController::new(cfg);
        ctrl.enqueue_read(0x0, 1);
        // Run past the auto-precharge window (tRAS + tRP) without stopping
        // at the first completion.
        let mut view = CycleView::idle(ctrl.total_banks());
        for now in 0..1000 {
            ctrl.tick(now, &mut view);
        }
        // Bank closed again after the read completed.
        let bank = ctrl.mapping().decode(0).bank;
        assert_eq!(ctrl.device().bank(bank).open_row(), None);
        // Under the open policy the row would remain open.
        let mut ctrl2 = MemoryController::new(CtrlConfig::paper_default());
        ctrl2.enqueue_read(0x0, 1);
        run_until_done(&mut ctrl2, 1000);
        assert_eq!(ctrl2.device().bank(bank).open_row(), Some(0));
    }

    #[test]
    fn closed_policy_keeps_row_open_for_pending_hits() {
        let mut cfg = CtrlConfig::paper_default();
        cfg.page_policy = PagePolicy::Closed;
        let mut ctrl = MemoryController::new(cfg);
        for i in 0..4 {
            ctrl.enqueue_read(i * 64, i);
        }
        let done = run_until_done(&mut ctrl, 2000);
        assert_eq!(done.len(), 4);
        // Only the first read misses; the rest hit before the auto-PRE.
        assert_eq!(ctrl.stats().read_hits, 3);
    }

    #[test]
    fn write_drain_triggers_at_high_watermark() {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        let hi = ctrl.config().wq_high;
        for i in 0..hi as u64 {
            ctrl.enqueue_write(i * 64 * 128 * 3); // spread across banks
        }
        let mut view = CycleView::idle(ctrl.total_banks());
        for now in 0..20_000 {
            ctrl.tick(now, &mut view);
            if ctrl.is_idle() {
                break;
            }
        }
        assert!(ctrl.is_idle(), "writes drained");
        assert_eq!(ctrl.stats().writes_done as usize, hi);
        assert!(ctrl.stats().write_drains >= 1);
    }

    #[test]
    fn reads_wait_during_write_burst_and_account_writeburst() {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        let hi = ctrl.config().wq_high;
        // Fill the write queue to the high watermark to force a drain,
        // then a read arrives.
        for i in 0..hi as u64 {
            ctrl.enqueue_write((i * 64) % (1 << 13)); // same bank, same row region
        }
        let mut view = CycleView::idle(ctrl.total_banks());
        ctrl.tick(0, &mut view); // enters drain mode
        ctrl.enqueue_read(0x40, 9);
        let mut done = Vec::new();
        for now in 1..50_000 {
            ctrl.tick(now, &mut view);
            done.extend(ctrl.drain_completions());
            if ctrl.is_idle() {
                break;
            }
        }
        assert_eq!(done.len(), 1);
        assert!(
            done[0].breakdown.writeburst > 0,
            "read delayed by write burst: {:?}",
            done[0].breakdown
        );
    }

    #[test]
    fn refresh_happens_periodically_and_delays_reads() {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        let t = *ctrl.device().timing();
        let mut view = CycleView::idle(ctrl.total_banks());
        // Tick through one tREFI with no traffic: a refresh must occur.
        for now in 0..t.t_refi + t.t_rfc + 100 {
            ctrl.tick(now, &mut view);
        }
        assert_eq!(ctrl.stats().refreshes, 1);
        // A read arriving mid-refresh accrues refresh latency.
        let due = ctrl.device().next_refresh_at(0);
        let mut done = Vec::new();
        let mut now = t.t_refi + t.t_rfc + 100;
        while now < due + 10 {
            ctrl.tick(now, &mut view);
            now += 1;
        }
        ctrl.enqueue_read(0x77_0040, 5);
        while now < due + 3 * t.t_rfc {
            ctrl.tick(now, &mut view);
            done.extend(ctrl.drain_completions());
            if ctrl.is_idle() {
                break;
            }
            now += 1;
        }
        assert_eq!(done.len(), 1);
        assert!(
            done[0].breakdown.refresh > 0,
            "read should see refresh delay: {:?}",
            done[0].breakdown
        );
    }

    #[test]
    fn fr_fcfs_prefers_row_hits_over_older_conflict() {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        // Warm up: open row 0 of bank 0.
        ctrl.enqueue_read(0, 0);
        run_until_done(&mut ctrl, 1000);
        // Older conflicting request to the same bank, newer hit to row 0.
        ctrl.enqueue_read(1 << 17, 1); // conflict (row 1)
        ctrl.enqueue_read(64, 2); // hit (row 0, col 1)
        let done = run_until_done_from(&mut ctrl, 1000, 3000);
        assert_eq!(done.len(), 2);
        // FR-FCFS may serve the hit before the conflict resolves; at the
        // very least the hit must not pay pre/act.
        let hit = done.iter().find(|c| c.meta == 2).unwrap();
        assert_eq!(hit.breakdown.preact, 0);
        assert!(done.iter().find(|c| c.meta == 1).unwrap().done_at >= hit.done_at);
    }

    #[test]
    fn fcfs_serves_strictly_in_order() {
        let mut cfg = CtrlConfig::paper_default();
        cfg.scheduler = SchedulerPolicy::Fcfs;
        let mut ctrl = MemoryController::new(cfg);
        ctrl.enqueue_read(0, 0);
        run_until_done(&mut ctrl, 1000);
        ctrl.enqueue_read(1 << 17, 1); // conflict first
        ctrl.enqueue_read(64, 2); // hit second
        let done = run_until_done_from(&mut ctrl, 1000, 3000);
        let first = done.iter().find(|c| c.meta == 1).unwrap();
        let second = done.iter().find(|c| c.meta == 2).unwrap();
        assert!(first.done_at <= second.done_at, "FCFS is in order");
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        for i in 0..20u64 {
            ctrl.enqueue_read(i * 7919 * 64, i);
        }
        let done = run_until_done(&mut ctrl, 100_000);
        assert_eq!(done.len(), 20);
        for c in done {
            let b = c.breakdown;
            assert_eq!(
                b.total(),
                b.base_cntlr + b.base_dram + b.preact + b.refresh + b.writeburst + b.queue
            );
        }
    }

    #[test]
    fn view_reports_read_cycles_on_the_bus() {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        let mut view = CycleView::idle(ctrl.total_banks());
        ctrl.enqueue_read(0, 1);
        let mut saw_read = false;
        let mut saw_activate = false;
        for now in 0..300 {
            ctrl.tick(now, &mut view);
            if view.bus == Some(dramstack_dram::BurstKind::Read) {
                saw_read = true;
            }
            if view.banks.contains(&BankActivity::Activating) {
                saw_activate = true;
            }
        }
        assert!(saw_read, "read burst observed");
        assert!(saw_activate, "activate observed");
    }

    #[test]
    fn view_flags_bank_group_constraint_for_back_to_back_hits() {
        // Two hits to the same row: the second waits tCCD_L; during that
        // wait the whole bank group must appear constrained.
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        let mut view = CycleView::idle(ctrl.total_banks());
        ctrl.enqueue_read(0, 1);
        ctrl.enqueue_read(64, 2);
        ctrl.enqueue_read(128, 3);
        let mut constrained_group_seen = false;
        for now in 0..500 {
            ctrl.tick(now, &mut view);
            if view.bus.is_none() {
                let g0: Vec<_> = view.banks[0..4].to_vec();
                if g0.contains(&BankActivity::Constrained) {
                    constrained_group_seen = true;
                }
            }
        }
        assert!(constrained_group_seen);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        for i in 0..ctrl.config().read_queue_cap as u64 {
            assert!(ctrl.can_accept_read());
            ctrl.enqueue_read(i * 64, i);
        }
        assert!(!ctrl.can_accept_read());
    }

    #[test]
    fn dual_rank_requests_complete_and_both_ranks_refresh() {
        let mut cfg = CtrlConfig::paper_default();
        cfg.device = dramstack_dram::DeviceConfig::ddr4_2400_dual_rank();
        let mut ctrl = MemoryController::new(cfg);
        assert_eq!(ctrl.total_banks(), 32);
        // Bit 17 is the rank bit in the default dual-rank layout.
        ctrl.enqueue_read(0, 0);
        ctrl.enqueue_read(1 << 17, 1);
        assert_ne!(
            ctrl.mapping().decode(0).bank.rank,
            ctrl.mapping().decode(1 << 17).bank.rank,
            "addresses target both ranks"
        );
        let done = run_until_done(&mut ctrl, 5_000);
        assert_eq!(done.len(), 2);
        // Run past two refresh intervals: both ranks must refresh.
        let mut view = CycleView::idle(ctrl.total_banks());
        for now in 5_000..25_000 {
            ctrl.tick(now, &mut view);
        }
        assert!(
            ctrl.stats().refreshes >= 4,
            "2 ranks × ≥2 tREFI: {}",
            ctrl.stats().refreshes
        );
        assert_eq!(
            ctrl.device().refreshes_done(0),
            ctrl.device().refreshes_done(1)
        );
    }

    #[test]
    fn page_hit_counting_is_symmetric_for_reads_and_writes() {
        // Regression: a same-row burst must count n-1 row hits whether it
        // is served as reads (normal mode) or writes (drain mode). Write
        // hits are attributed in drain mode exactly like read hits — the
        // first CAS pays the ACT, the rest hit the open row.
        let n = 8u64;

        let mut rctrl = MemoryController::new(CtrlConfig::paper_default());
        for i in 0..n {
            rctrl.enqueue_read(i * 64, i);
        }
        run_until_done(&mut rctrl, 10_000);
        assert_eq!(rctrl.stats().reads_done, n);
        assert_eq!(
            rctrl.stats().read_hits,
            n - 1,
            "first read misses, rest hit"
        );

        // Force drain mode with a low watermark so the same-row writes are
        // served as a write burst.
        let mut cfg = CtrlConfig::paper_default();
        cfg.wq_high = n as usize;
        cfg.wq_low = 0;
        let mut wctrl = MemoryController::new(cfg);
        for i in 0..n {
            wctrl.enqueue_write(i * 64);
        }
        let mut view = CycleView::idle(wctrl.total_banks());
        for now in 0..10_000 {
            wctrl.tick(now, &mut view);
            if wctrl.is_idle() {
                break;
            }
        }
        assert!(wctrl.stats().write_drains >= 1, "burst ran in drain mode");
        assert_eq!(wctrl.stats().writes_done, n);
        assert_eq!(
            wctrl.stats().write_hits,
            n - 1,
            "write hits counted like read hits"
        );

        // The aggregate page-hit rate is the same either way.
        assert!((rctrl.stats().page_hit_rate() - wctrl.stats().page_hit_rate()).abs() < 1e-12);
    }

    #[test]
    fn probe_hooks_fire_without_perturbing_results() {
        // Same workload with and without a probe: identical completions
        // and stats; the probe observes the full request lifecycle.
        #[derive(Debug, Default)]
        struct CountingProbe {
            accepted: u64,
            arrivals: u64,
            cas: u64,
            returned: u64,
            commands: u64,
            ticks: u64,
        }
        impl dramstack_obs::Probe for CountingProbe {
            fn request_accepted(&mut self, _id: u64, _phys: u64, _w: bool) {
                self.accepted += 1;
            }
            fn request_arrival(&mut self, _id: u64, _now: Cycle) {
                self.arrivals += 1;
            }
            fn cas_issued(&mut self, _id: u64, _now: Cycle, _w: bool, _hit: bool, _fb: usize) {
                self.cas += 1;
            }
            fn data_returned(&mut self, _id: u64, _now: Cycle) {
                self.returned += 1;
            }
            fn command_issued(&mut self, _now: Cycle, _cmd: Command, _fb: usize) {
                self.commands += 1;
            }
            fn tick(&mut self, _now: Cycle, _rq: usize, _wq: usize, _inf: usize, _d: bool) {
                self.ticks += 1;
            }
        }

        let drive = |probe: bool| {
            let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
            if probe {
                ctrl.attach_probe(Box::new(CountingProbe::default()));
            }
            for i in 0..10u64 {
                ctrl.enqueue_read(i * 7919 * 64, i);
                ctrl.enqueue_write(i * 64);
            }
            let done = run_until_done(&mut ctrl, 100_000);
            (done, ctrl)
        };

        let (done_bare, bare) = drive(false);
        let (done_probed, mut probed) = drive(true);
        assert_eq!(done_bare.len(), done_probed.len());
        for (a, b) in done_bare.iter().zip(&done_probed) {
            assert_eq!(a.done_at, b.done_at, "identical completion times");
            assert_eq!(a.breakdown, b.breakdown);
        }
        assert_eq!(bare.stats(), probed.stats());

        let boxed = probed.take_probe();
        assert!(!probed.probe_attached());
        let counts = format!("{boxed:?}");
        // 20 requests accepted and arrived; 10 reads returned data.
        assert!(counts.contains("accepted: 20"), "{counts}");
        assert!(counts.contains("arrivals: 20"), "{counts}");
        assert!(counts.contains("returned: 10"), "{counts}");
        assert!(counts.contains("cas: 20"), "{counts}");
    }

    #[test]
    fn with_write_queue_scales_watermarks() {
        let cfg = CtrlConfig::paper_default().with_write_queue(128);
        assert_eq!(cfg.write_queue_cap, 128);
        assert_eq!(cfg.wq_high, 112);
        assert_eq!(cfg.wq_low, 32);
    }
}
