//! Scheduling and page-management policies.

use serde::{Deserialize, Serialize};

/// Row-buffer management policy (Section VII-C of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Keep rows open until a conflicting request needs the bank.
    #[default]
    Open,
    /// Close rows (auto-precharge) as soon as no pending access to the open
    /// row remains in the queues.
    Closed,
}

/// Request scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// First-ready, first-come-first-served: row hits first, then oldest
    /// (the paper's configuration).
    #[default]
    FrFcfs,
    /// Strict in-order service of the oldest request — the ablation
    /// baseline.
    Fcfs,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        assert_eq!(PagePolicy::default(), PagePolicy::Open);
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::FrFcfs);
    }
}
