//! DRAM memory controller model.
//!
//! Translates read/write requests into DRAM command sequences under a
//! scheduling policy, page policy and address-mapping scheme, and records
//! the per-request latency breakdown that feeds the latency stacks of
//! `dramstack-core`:
//!
//! * **Queues** — a read queue and a write queue with high/low watermarks;
//!   writes are buffered and drained in bursts (the paper's `writeburst`
//!   latency component).
//! * **Scheduling** — FR-FCFS (row hits first, then oldest) or plain FCFS.
//! * **Page policy** — open (rows stay open) or closed (auto-precharge when
//!   no further hits are queued), Section VII-C of the paper.
//! * **Address mapping** — the paper's default row:bank:bank-group:column
//!   layout (Fig. 5a) and the cache-line-interleaved layout (Fig. 5b).
//!
//! # Example
//!
//! ```
//! use dramstack_memctrl::{MemoryController, CtrlConfig};
//! use dramstack_dram::CycleView;
//!
//! let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
//! let mut view = CycleView::idle(ctrl.total_banks());
//! ctrl.enqueue_read(0x1000, 7);
//! for now in 0..200 {
//!     ctrl.tick(now, &mut view);
//! }
//! let done: Vec<_> = ctrl.drain_completions().collect();
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].meta, 7);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod controller;
mod mapping;
mod policy;
mod request;
mod stats;

pub use controller::{CtrlConfig, CtrlSnapshot, MemoryController};
pub use mapping::{AddressMapping, MappingScheme};
pub use policy::{PagePolicy, SchedulerPolicy};
pub use request::{CompletedRead, LatencyBreakdown, RequestId};
pub use stats::CtrlStats;
