//! Fuzz-style robustness tests: the controller must never deadlock, drop
//! or corrupt a request under randomized arrival patterns and
//! configurations.

use proptest::prelude::*;

use dramstack_dram::CycleView;
use dramstack_memctrl::{CtrlConfig, MappingScheme, MemoryController, PagePolicy, SchedulerPolicy};

#[derive(Debug, Clone, Copy)]
struct FuzzConfig {
    policy: PagePolicy,
    scheduler: SchedulerPolicy,
    mapping: MappingScheme,
    write_queue: usize,
}

fn config_strategy() -> impl Strategy<Value = FuzzConfig> {
    (
        prop_oneof![Just(PagePolicy::Open), Just(PagePolicy::Closed)],
        prop_oneof![Just(SchedulerPolicy::FrFcfs), Just(SchedulerPolicy::Fcfs)],
        prop_oneof![
            Just(MappingScheme::RowBankColumn),
            Just(MappingScheme::CacheLineInterleaved)
        ],
        prop_oneof![Just(16usize), Just(32), Just(128)],
    )
        .prop_map(|(policy, scheduler, mapping, write_queue)| FuzzConfig {
            policy,
            scheduler,
            mapping,
            write_queue,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every accepted read completes exactly once, in bounded time, with a
    /// self-consistent latency breakdown — under any policy combination
    /// and any (biased-random) arrival pattern.
    #[test]
    fn no_request_is_lost_or_stuck(
        cfg in config_strategy(),
        addrs in prop::collection::vec((any::<u32>(), any::<bool>()), 1..150),
        gap in 1u64..40,
    ) {
        let mut ctrl_cfg = CtrlConfig::paper_default();
        ctrl_cfg.page_policy = cfg.policy;
        ctrl_cfg.scheduler = cfg.scheduler;
        ctrl_cfg.mapping = cfg.mapping;
        ctrl_cfg = ctrl_cfg.with_write_queue(cfg.write_queue);
        let mut ctrl = MemoryController::new(ctrl_cfg);
        let mut view = CycleView::idle(ctrl.total_banks());

        let mut pending = addrs.clone();
        pending.reverse();
        let mut issued_reads = Vec::new();
        let mut completed = Vec::new();
        let mut now = 0u64;
        // Feed arrivals every `gap` cycles when a queue has room.
        while (!pending.is_empty() || !ctrl.is_idle()) && now < 3_000_000 {
            if now.is_multiple_of(gap) {
                if let Some(&(addr, is_write)) = pending.last() {
                    let phys = u64::from(addr) & !63;
                    if is_write && ctrl.can_accept_write() {
                        ctrl.enqueue_write(phys);
                        pending.pop();
                    } else if !is_write && ctrl.can_accept_read() {
                        let id = ctrl.enqueue_read(phys, u64::from(addr));
                        issued_reads.push(id);
                        pending.pop();
                    }
                }
            }
            ctrl.tick(now, &mut view);
            completed.extend(ctrl.drain_completions());
            now += 1;
        }
        prop_assert!(pending.is_empty(), "arrivals starved at cycle {now}");
        prop_assert!(ctrl.is_idle(), "controller did not drain by cycle {now}");

        // Exactly-once completion with matching metadata.
        prop_assert_eq!(completed.len(), issued_reads.len());
        let mut ids: Vec<_> = completed.iter().map(|c| c.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), completed.len(), "duplicate completion");
        for c in &completed {
            prop_assert_eq!(c.addr, c.meta & !63, "metadata corrupted");
            let b = c.breakdown;
            prop_assert_eq!(
                b.total(),
                b.base_cntlr + b.base_dram + b.preact + b.refresh + b.writeburst + b.queue
            );
        }
        // Refreshes kept their cadence (one per tREFI, ±1 in flight).
        let expected_refreshes = now / 9360;
        prop_assert!(
            ctrl.stats().refreshes + 1 >= expected_refreshes,
            "refreshes fell behind: {} for {} cycles",
            ctrl.stats().refreshes,
            now
        );
    }

    /// The page-hit statistics are bounded by request counts and the
    /// drain machinery engages whenever writes dominate.
    #[test]
    fn stats_are_internally_consistent(
        n_writes in 40usize..120,
        stride in prop_oneof![Just(64u64), Just(8192), Just(1 << 17)],
    ) {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        let mut view = CycleView::idle(ctrl.total_banks());
        let mut sent = 0usize;
        let mut now = 0u64;
        while (sent < n_writes || !ctrl.is_idle()) && now < 2_000_000 {
            if sent < n_writes && ctrl.can_accept_write() {
                ctrl.enqueue_write(sent as u64 * stride);
                sent += 1;
            }
            ctrl.tick(now, &mut view);
            ctrl.drain_completions().for_each(drop);
            now += 1;
        }
        let s = ctrl.stats();
        prop_assert_eq!(s.writes_done as usize, n_writes);
        prop_assert!(s.write_hits <= s.writes_done);
        prop_assert!(s.read_hits <= s.reads_done);
        prop_assert!(s.page_hit_rate() <= 1.0);
        // Filling the queue beyond the high watermark must trigger drains.
        prop_assert!(s.write_drains >= 1, "no drain for {n_writes} writes");
    }
}
