//! Live terminal stack dashboard.
//!
//! Renders a compact, continuously-updating view of the run: the current
//! sample window's normalized bandwidth and latency stacks as horizontal
//! unicode bars, a sparkline of recent achieved-bandwidth history, and
//! the bottleneck advisor's current diagnosis.
//!
//! The renderer is a pure string producer: [`LiveDashboard::render`]
//! returns the full frame text, and in ANSI mode prefixes the escape
//! sequence that moves the cursor back over the previous frame so the
//! dashboard redraws in place. Callers that detect a non-TTY destination
//! construct the dashboard with `ansi = false` and get plain text blocks
//! suitable for logs and CI output.

use std::collections::VecDeque;

use dramstack_core::{BandwidthStack, BwComponent, LatComponent, LatencyStack};

use crate::palette::{bw_glyph, lat_glyph};

/// Sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Width of the stacked bars, in characters.
const BAR_WIDTH: usize = 48;

/// One rendered window handed to the dashboard.
///
/// The dashboard depends only on stack types and plain strings, so any
/// driver (the simulator's telemetry layer, a replay tool, a test) can
/// feed it.
#[derive(Debug, Clone, Copy)]
pub struct LiveFrame<'a> {
    /// Window index since the start of the run.
    pub window: u64,
    /// First DRAM cycle of the window.
    pub start_cycle: u64,
    /// The window's bandwidth stack.
    pub bandwidth: &'a BandwidthStack,
    /// The window's latency stack.
    pub latency: &'a LatencyStack,
    /// Current sustained bottleneck class name, if the advisor has one.
    pub bottleneck: Option<&'a str>,
    /// Optional free-form status line (e.g. a heartbeat message).
    pub message: Option<&'a str>,
}

/// Stateful live renderer: keeps the sparkline history and, in ANSI
/// mode, how many lines the previous frame used so it can redraw over
/// itself.
#[derive(Debug)]
pub struct LiveDashboard {
    ansi: bool,
    history: VecDeque<f64>,
    history_cap: usize,
    prev_lines: usize,
    frames: u64,
}

impl LiveDashboard {
    /// A dashboard; `ansi = true` redraws in place with escape codes,
    /// `ansi = false` emits plain text blocks (non-TTY destinations).
    pub fn new(ansi: bool) -> Self {
        LiveDashboard {
            ansi,
            history: VecDeque::new(),
            history_cap: BAR_WIDTH,
            prev_lines: 0,
            frames: 0,
        }
    }

    /// Frames rendered so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Whether this dashboard emits ANSI redraw sequences.
    pub fn is_ansi(&self) -> bool {
        self.ansi
    }

    /// Renders one frame. The returned string is written verbatim to the
    /// terminal: in ANSI mode it begins with the cursor-up + clear
    /// sequence that erases the previous frame.
    pub fn render(&mut self, frame: &LiveFrame<'_>) -> String {
        let achieved = frame.bandwidth.achieved_gbps();
        let peak = frame.bandwidth.peak_gbps().max(1e-12);
        self.history.push_back((achieved / peak).clamp(0.0, 1.0));
        while self.history.len() > self.history_cap {
            self.history.pop_front();
        }

        let mut body = String::new();
        body.push_str(&format!(
            "dramstack live — window {:>5}  cycle {:>12}\n",
            frame.window, frame.start_cycle
        ));
        body.push_str(&format!(
            "bw  |{}| {:6.2} / {:5.1} GB/s\n",
            bw_bar(frame.bandwidth),
            achieved,
            frame.bandwidth.peak_gbps()
        ));
        body.push_str(&format!(
            "lat |{}| {:7.1} ns\n",
            lat_bar(frame.latency),
            frame.latency.total_ns()
        ));
        body.push_str(&format!("hist {}\n", sparkline(&self.history)));
        match frame.bottleneck {
            Some(b) => body.push_str(&format!("bottleneck: {b}\n")),
            None => body.push_str("bottleneck: (none sustained)\n"),
        }
        if let Some(m) = frame.message {
            body.push_str(&format!("{m}\n"));
        }

        let lines = body.lines().count();
        let out = if self.ansi && self.prev_lines > 0 {
            format!("\x1b[{}A\x1b[J{body}", self.prev_lines)
        } else if self.ansi {
            body
        } else {
            // Plain mode: blank separator keeps periodic blocks readable.
            format!("{body}\n")
        };
        self.prev_lines = lines;
        self.frames += 1;
        out
    }

    /// Renders the end-of-run line (no escape codes; the final frame
    /// stays on screen above it).
    pub fn render_final(&self) -> String {
        format!("dramstack live — done ({} frames)\n", self.frames)
    }
}

/// The bandwidth stack as a fixed-width glyph bar (normalized to peak).
fn bw_bar(stack: &BandwidthStack) -> String {
    let mut bar = String::new();
    let mut filled = 0usize;
    for &c in &BwComponent::ALL {
        let chars = (stack.fraction(c) * BAR_WIDTH as f64).round() as usize;
        for _ in 0..chars {
            if filled < BAR_WIDTH {
                bar.push(bw_glyph(c));
                filled += 1;
            }
        }
    }
    while filled < BAR_WIDTH {
        bar.push(bw_glyph(BwComponent::Idle));
        filled += 1;
    }
    bar
}

/// The latency stack as a fixed-width glyph bar (normalized to its own
/// total, so the shape of the decomposition is visible at any scale).
fn lat_bar(stack: &LatencyStack) -> String {
    let total = stack.total_ns();
    let mut bar = String::new();
    let mut filled = 0usize;
    if total > 0.0 {
        for &c in &LatComponent::ALL {
            let chars = (stack.ns(c) / total * BAR_WIDTH as f64).round() as usize;
            for _ in 0..chars {
                if filled < BAR_WIDTH {
                    bar.push(lat_glyph(c));
                    filled += 1;
                }
            }
        }
    }
    while filled < BAR_WIDTH {
        bar.push(' ');
        filled += 1;
    }
    bar
}

/// A one-line sparkline of values in `[0, 1]`.
fn sparkline(values: &VecDeque<f64>) -> String {
    values
        .iter()
        .map(|v| {
            let idx = (v * (SPARKS.len() - 1) as f64).round() as usize;
            SPARKS[idx.min(SPARKS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_core::StackSampler;
    use dramstack_dram::{BurstKind, CycleView};

    fn window() -> (BandwidthStack, LatencyStack) {
        let mut s = StackSampler::new(16, 19.2, 0.8333, 100);
        let mut busy = CycleView::idle(16);
        busy.bus = Some(BurstKind::Read);
        for i in 0..100 {
            if i % 2 == 0 {
                s.account(&busy);
            } else {
                s.account(&CycleView::idle(16));
            }
        }
        let sample = s.finish().remove(0);
        (sample.bandwidth, sample.latency)
    }

    fn frame<'a>(bw: &'a BandwidthStack, lat: &'a LatencyStack) -> LiveFrame<'a> {
        LiveFrame {
            window: 3,
            start_cycle: 300,
            bandwidth: bw,
            latency: lat,
            bottleneck: Some("saturated"),
            message: None,
        }
    }

    #[test]
    fn plain_mode_has_no_escape_codes() {
        let (bw, lat) = window();
        let mut d = LiveDashboard::new(false);
        let out = d.render(&frame(&bw, &lat));
        assert!(!out.contains('\x1b'));
        assert!(out.contains("dramstack live"));
        assert!(out.contains("GB/s"));
        assert!(out.contains("bottleneck: saturated"));
    }

    #[test]
    fn ansi_mode_redraws_over_previous_frame() {
        let (bw, lat) = window();
        let mut d = LiveDashboard::new(true);
        let first = d.render(&frame(&bw, &lat));
        assert!(
            !first.starts_with('\x1b'),
            "first frame has nothing to erase"
        );
        let lines = first.lines().count();
        let second = d.render(&frame(&bw, &lat));
        assert!(second.starts_with(&format!("\x1b[{lines}A\x1b[J")));
    }

    #[test]
    fn bars_are_exactly_bar_width_chars() {
        let (bw, lat) = window();
        assert_eq!(bw_bar(&bw).chars().count(), BAR_WIDTH);
        assert_eq!(lat_bar(&lat).chars().count(), BAR_WIDTH);
    }

    #[test]
    fn sparkline_tracks_history_and_stays_bounded() {
        let (bw, lat) = window();
        let mut d = LiveDashboard::new(false);
        for _ in 0..(BAR_WIDTH + 20) {
            d.render(&frame(&bw, &lat));
        }
        assert_eq!(d.history.len(), BAR_WIDTH);
        assert_eq!(d.frames(), (BAR_WIDTH + 20) as u64);
    }

    #[test]
    fn empty_latency_stack_renders_blank_bar() {
        let lat = LatencyStack::empty();
        assert_eq!(lat_bar(&lat).trim(), "");
    }
}
