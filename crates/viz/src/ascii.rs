//! ASCII stacked-bar renderings for terminals.

use dramstack_core::{BandwidthStack, BwComponent, LatComponent, LatencyStack, TimeSample};

use crate::palette::{bw_glyph, lat_glyph};

/// Width of the bar area in characters.
const BAR_WIDTH: usize = 64;

/// Renders horizontal stacked bandwidth bars, one per labeled stack. The
/// bar spans the peak bandwidth; achieved read/write sits at the left,
/// exactly like the bottom of the paper's vertical stacks.
pub fn bandwidth_chart(rows: &[(String, BandwidthStack)]) -> String {
    let mut out = String::new();
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(4).max(4);
    for (label, stack) in rows {
        let mut bar = String::with_capacity(BAR_WIDTH);
        for &c in &BwComponent::ALL {
            let chars = (stack.fraction(c) * BAR_WIDTH as f64).round() as usize;
            for _ in 0..chars {
                if bar.len() < BAR_WIDTH {
                    bar.push(bw_glyph(c));
                }
            }
        }
        while bar.len() < BAR_WIDTH {
            bar.push(bw_glyph(BwComponent::Idle));
        }
        out.push_str(&format!(
            "{label:label_w$} |{bar}| {:5.2} / {:4.1} GB/s\n",
            stack.achieved_gbps(),
            stack.peak_gbps()
        ));
    }
    out.push_str(&legend_bw(label_w));
    out
}

fn legend_bw(label_w: usize) -> String {
    let mut s = format!("{:label_w$}  ", "");
    for &c in &BwComponent::ALL {
        s.push_str(&format!("{}={} ", bw_glyph(c), c.label()));
    }
    s.push('\n');
    s
}

/// Renders horizontal stacked latency bars scaled to the largest total.
pub fn latency_chart(rows: &[(String, LatencyStack)]) -> String {
    let max_ns = rows
        .iter()
        .map(|(_, s)| s.total_ns())
        .fold(1.0_f64, f64::max);
    let mut out = String::new();
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(4).max(4);
    for (label, stack) in rows {
        let mut bar = String::new();
        for &c in &LatComponent::ALL {
            let chars = (stack.ns(c) / max_ns * BAR_WIDTH as f64).round() as usize;
            for _ in 0..chars {
                if bar.len() < BAR_WIDTH {
                    bar.push(lat_glyph(c));
                }
            }
        }
        while bar.len() < BAR_WIDTH {
            bar.push(' ');
        }
        out.push_str(&format!(
            "{label:label_w$} |{bar}| {:6.1} ns\n",
            stack.total_ns()
        ));
    }
    let mut s = format!("{:label_w$}  ", "");
    for &c in &LatComponent::ALL {
        s.push_str(&format!("{}={} ", lat_glyph(c), c.label()));
    }
    s.push('\n');
    out.push_str(&s);
    out
}

/// Renders a through-time bandwidth strip: one character column per
/// sample, height `height` rows, filled bottom-up by achieved bandwidth
/// (`#`) with `%` marking the non-idle (busy) level.
pub fn through_time_strip(samples: &[TimeSample], height: usize) -> String {
    if samples.is_empty() {
        return String::from("(no samples)\n");
    }
    let mut grid = vec![vec![' '; samples.len()]; height];
    for (x, s) in samples.iter().enumerate() {
        let peak = s.bandwidth.peak_gbps();
        let achieved = (s.bandwidth.achieved_gbps() / peak * height as f64).round() as usize;
        let busy =
            ((peak - s.bandwidth.gbps(BwComponent::Idle) - s.bandwidth.gbps(BwComponent::BankIdle))
                / peak
                * height as f64)
                .round() as usize;
        for y in 0..height {
            if y < achieved {
                grid[height - 1 - y][x] = '#';
            } else if y < busy {
                grid[height - 1 - y][x] = '%';
            }
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{} samples, # = achieved bandwidth, % = busy (non-idle)\n",
        samples.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_core::BandwidthAccountant;
    use dramstack_dram::{BurstKind, CycleView};

    fn stack(read_frac: f64) -> BandwidthStack {
        let mut acc = BandwidthAccountant::new(16, 19.2);
        let mut busy = CycleView::idle(16);
        busy.bus = Some(BurstKind::Read);
        let idle = CycleView::idle(16);
        let n = 100;
        for i in 0..n {
            if (i as f64) < read_frac * n as f64 {
                acc.account(&busy);
            } else {
                acc.account(&idle);
            }
        }
        acc.stack()
    }

    #[test]
    fn bandwidth_chart_shows_labels_and_scale() {
        let chart = bandwidth_chart(&[("one".into(), stack(0.25)), ("two".into(), stack(0.75))]);
        assert!(chart.contains("one"));
        assert!(chart.contains("two"));
        assert!(chart.contains("19.2 GB/s"));
        assert!(chart.contains("R=read"));
        // The 75 % row has more R glyphs than the 25 % row.
        let lines: Vec<&str> = chart.lines().collect();
        let count = |l: &str| l.chars().filter(|&c| c == 'R').count();
        assert!(count(lines[1]) > count(lines[0]));
    }

    #[test]
    fn bars_have_fixed_width() {
        let chart = bandwidth_chart(&[("x".into(), stack(0.5))]);
        let line = chart.lines().next().unwrap();
        let bar = line.split('|').nth(1).unwrap();
        assert_eq!(bar.len(), BAR_WIDTH);
    }

    #[test]
    fn latency_chart_renders() {
        let mut s = LatencyStack::empty();
        s.avg_ns[LatComponent::BaseDram.index()] = 20.0;
        s.avg_ns[LatComponent::Queue.index()] = 30.0;
        s.reads = 10;
        let chart = latency_chart(&[("l".into(), s)]);
        assert!(chart.contains("50.0 ns"));
        assert!(chart.contains('q'));
        assert!(chart.contains('d'));
    }

    #[test]
    fn through_time_strip_handles_empty_and_filled() {
        assert!(through_time_strip(&[], 4).contains("no samples"));
        let sample = TimeSample {
            start_cycle: 0,
            cycles: 100,
            bandwidth: stack(0.5),
            latency: LatencyStack::empty(),
            ctrl: Default::default(),
        };
        let strip = through_time_strip(&[sample], 4);
        assert!(strip.contains('#'));
        assert_eq!(strip.lines().count(), 5);
    }
}
