//! Visualization of bandwidth, latency and cycle stacks: ASCII stacked
//! bars for terminals, CSV for spreadsheets, and SVG stacked-bar figures
//! in the style of the paper.
//!
//! # Example
//!
//! ```
//! use dramstack_core::{BandwidthAccountant, BwComponent};
//! use dramstack_dram::{CycleView, BurstKind};
//! use dramstack_viz::ascii;
//!
//! let mut acc = BandwidthAccountant::new(16, 19.2);
//! let mut v = CycleView::idle(16);
//! v.bus = Some(BurstKind::Read);
//! acc.account(&v);
//! let chart = ascii::bandwidth_chart(&[("demo".to_string(), acc.stack())]);
//! assert!(chart.contains("demo"));
//! assert!(chart.contains("GB/s"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ascii;
pub mod csv;
pub mod live;
pub mod palette;
pub mod svg;
pub mod timeline;
