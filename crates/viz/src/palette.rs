//! Component colors and glyphs shared by the renderers.

use dramstack_core::{BwComponent, LatComponent};

/// Fill color (SVG) for a bandwidth-stack component, echoing the paper's
/// legend ordering: useful work in saturated colors, losses in muted ones.
pub fn bw_color(c: BwComponent) -> &'static str {
    match c {
        BwComponent::Read => "#1f77b4",
        BwComponent::Write => "#ff7f0e",
        BwComponent::Refresh => "#7f7f7f",
        BwComponent::Precharge => "#e6c700",
        BwComponent::Activate => "#9edae5",
        BwComponent::Constraints => "#2ca02c",
        BwComponent::BankIdle => "#17344f",
        BwComponent::Idle => "#e7e7e7",
    }
}

/// ASCII glyph for a bandwidth-stack component.
pub fn bw_glyph(c: BwComponent) -> char {
    match c {
        BwComponent::Read => 'R',
        BwComponent::Write => 'W',
        BwComponent::Refresh => 'f',
        BwComponent::Precharge => 'p',
        BwComponent::Activate => 'a',
        BwComponent::Constraints => 'c',
        BwComponent::BankIdle => 'b',
        BwComponent::Idle => '.',
    }
}

/// Fill color (SVG) for a latency-stack component.
pub fn lat_color(c: LatComponent) -> &'static str {
    match c {
        LatComponent::BaseCntlr => "#1f77b4",
        LatComponent::BaseDram => "#aec7e8",
        LatComponent::PreAct => "#e6c700",
        LatComponent::Refresh => "#7f7f7f",
        LatComponent::WriteBurst => "#ff7f0e",
        LatComponent::Queue => "#2ca02c",
    }
}

/// ASCII glyph for a latency-stack component.
pub fn lat_glyph(c: LatComponent) -> char {
    match c {
        LatComponent::BaseCntlr => 'B',
        LatComponent::BaseDram => 'd',
        LatComponent::PreAct => 'p',
        LatComponent::Refresh => 'f',
        LatComponent::WriteBurst => 'w',
        LatComponent::Queue => 'q',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_unique() {
        let mut g: Vec<char> = BwComponent::ALL.iter().map(|&c| bw_glyph(c)).collect();
        g.sort_unstable();
        g.dedup();
        assert_eq!(g.len(), BwComponent::COUNT);
        let mut g: Vec<char> = LatComponent::ALL.iter().map(|&c| lat_glyph(c)).collect();
        g.sort_unstable();
        g.dedup();
        assert_eq!(g.len(), LatComponent::COUNT);
    }

    #[test]
    fn colors_are_hex() {
        for c in BwComponent::ALL {
            assert!(bw_color(c).starts_with('#'));
        }
        for c in LatComponent::ALL {
            assert!(lat_color(c).starts_with('#'));
        }
    }
}
