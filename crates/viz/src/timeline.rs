//! Fig. 1-style command timelines: per-bank lanes showing
//! precharge/activate/CAS windows plus the data-bus lane — the picture
//! the paper uses to explain the accounting.

use dramstack_core::BwComponent;
use dramstack_dram::{CommandKind, TimedCommand, TimingParams};

use crate::palette::bw_glyph;

/// Renders a command trace as an ASCII timeline over
/// `[start, start + width)` cycles. One row per bank that appears in the
/// trace, plus a `bus` row showing data bursts (`R`/`W`).
///
/// # Example
///
/// ```
/// use dramstack_dram::{TimedCommand, Command, BankAddr, TimingParams};
/// use dramstack_viz::timeline::command_timeline;
///
/// let t = TimingParams::ddr4_2400();
/// let bank = BankAddr::new(0, 0, 0);
/// let trace = vec![
///     TimedCommand::new(0, Command::activate(bank, 7)),
///     TimedCommand::new(t.t_rcd, Command::read(bank, 0)),
/// ];
/// let chart = command_timeline(&trace, &t, 0, 60);
/// assert!(chart.contains("r0g0b0"));
/// assert!(chart.contains('R')); // the data burst
/// ```
pub fn command_timeline(
    trace: &[TimedCommand],
    timing: &TimingParams,
    start: u64,
    width: usize,
) -> String {
    let end = start + width as u64;
    // Collect the banks in first-appearance order.
    let mut banks = Vec::new();
    for t in trace {
        if t.cmd.kind != CommandKind::Refresh && !banks.contains(&t.cmd.bank) {
            banks.push(t.cmd.bank);
        }
    }
    let mut lanes: Vec<Vec<char>> = vec![vec!['.'; width]; banks.len()];
    let mut bus: Vec<char> = vec!['.'; width];
    let mut refresh: Vec<char> = vec!['.'; width];

    let paint = |lane: &mut [char], from: u64, to: u64, glyph: char| {
        let lo = from.max(start);
        let hi = to.min(end);
        for t in lo..hi {
            lane[(t - start) as usize] = glyph;
        }
    };

    for t in trace {
        match t.cmd.kind {
            CommandKind::Activate => {
                let lane = banks.iter().position(|b| *b == t.cmd.bank).unwrap();
                paint(
                    &mut lanes[lane],
                    t.at,
                    t.at + timing.t_rcd,
                    bw_glyph(BwComponent::Activate),
                );
            }
            CommandKind::Precharge => {
                let lane = banks.iter().position(|b| *b == t.cmd.bank).unwrap();
                paint(
                    &mut lanes[lane],
                    t.at,
                    t.at + timing.t_rp,
                    bw_glyph(BwComponent::Precharge),
                );
            }
            k if k.is_read() => {
                let lane = banks.iter().position(|b| *b == t.cmd.bank).unwrap();
                paint(&mut lanes[lane], t.at, t.at + timing.cl, 'r');
                paint(
                    &mut bus,
                    t.at + timing.cl,
                    t.at + timing.cl + timing.burst_cycles,
                    'R',
                );
            }
            k if k.is_write() => {
                let lane = banks.iter().position(|b| *b == t.cmd.bank).unwrap();
                paint(&mut lanes[lane], t.at, t.at + timing.cwl, 'w');
                paint(
                    &mut bus,
                    t.at + timing.cwl,
                    t.at + timing.cwl + timing.burst_cycles,
                    'W',
                );
            }
            CommandKind::Refresh => {
                paint(&mut refresh, t.at, t.at + timing.t_rfc, 'F');
            }
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str(&format!("cycles {start}..{end}\n"));
    for (i, bank) in banks.iter().enumerate() {
        out.push_str(&format!("{:8} |", bank.to_string()));
        out.extend(&lanes[i]);
        out.push_str("|\n");
    }
    out.push_str(&format!("{:8} |", "bus"));
    out.extend(&bus);
    out.push_str("|\n");
    if refresh.contains(&'F') {
        out.push_str(&format!("{:8} |", "refresh"));
        out.extend(&refresh);
        out.push_str("|\n");
    }
    out.push_str("a=activate p=precharge r/w=CAS wait R/W=data burst F=refresh\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_dram::{BankAddr, Command};

    #[test]
    fn timeline_paints_act_read_and_burst() {
        let t = TimingParams::ddr4_2400();
        let b = BankAddr::new(0, 0, 0);
        let trace = vec![
            TimedCommand::new(0, Command::activate(b, 5)),
            TimedCommand::new(t.t_rcd, Command::read(b, 0)),
        ];
        let s = command_timeline(&trace, &t, 0, 64);
        assert!(s.contains("r0g0b0"));
        assert!(s.contains('a'), "activate window painted");
        assert!(s.contains('r'), "CAS wait painted");
        assert!(s.contains('R'), "data burst painted");
        // The burst lands CL cycles after the CAS.
        let bus_line = s.lines().find(|l| l.starts_with("bus")).unwrap();
        let first_r = bus_line.find('R').unwrap();
        assert_eq!(first_r as u64, (t.t_rcd + t.cl) + 10); // 10 = "bus      |" prefix
    }

    /// The lane row for a given label (skipping the legend).
    fn lane<'a>(s: &'a str, label: &str) -> &'a str {
        s.lines()
            .find(|l| l.starts_with(label) && l.contains('|'))
            .unwrap_or("")
    }

    #[test]
    fn timeline_windows_clip_to_range() {
        let t = TimingParams::ddr4_2400();
        let b = BankAddr::new(0, 1, 1);
        let trace = vec![TimedCommand::new(100, Command::activate(b, 1))];
        let s = command_timeline(&trace, &t, 0, 50);
        assert!(
            !lane(&s, "r0g1b1").contains('a'),
            "out-of-range command not painted"
        );
        let s = command_timeline(&trace, &t, 90, 40);
        assert!(lane(&s, "r0g1b1").contains('a'));
    }

    #[test]
    fn refresh_lane_appears_only_when_needed() {
        let t = TimingParams::ddr4_2400();
        let s = command_timeline(&[TimedCommand::new(5, Command::refresh(0))], &t, 0, 40);
        assert!(lane(&s, "refresh").contains('F'));
        let s = command_timeline(&[], &t, 0, 40);
        assert!(
            lane(&s, "refresh").is_empty(),
            "no refresh lane without a REF"
        );
    }
}
