//! Hand-rolled SVG stacked-bar figures in the paper's style: vertical
//! bars, one per configuration, components stacked bottom-up, legend on
//! the right.

use dramstack_core::{BandwidthStack, BwComponent, LatComponent, LatencyStack, TimeSample};

use crate::palette::{bw_color, lat_color};

const BAR_W: f64 = 42.0;
const GAP: f64 = 14.0;
const PLOT_H: f64 = 260.0;
const MARGIN_L: f64 = 54.0;
const MARGIN_T: f64 = 30.0;
const MARGIN_B: f64 = 48.0;
const LEGEND_W: f64 = 120.0;

fn header(w: f64, h: f64, title: &str) -> String {
    format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}" font-family="Helvetica,Arial,sans-serif" font-size="11">
<rect width="100%" height="100%" fill="white"/>
<text x="{tx:.0}" y="18" text-anchor="middle" font-size="13">{title}</text>
"##,
        tx = w / 2.0,
    )
}

fn rect(x: f64, y: f64, w: f64, h: f64, fill: &str) -> String {
    format!(
        r#"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{fill}" stroke="black" stroke-width="0.4"/>
"#
    )
}

fn text(x: f64, y: f64, anchor: &str, s: &str) -> String {
    format!(
        r#"<text x="{x:.1}" y="{y:.1}" text-anchor="{anchor}">{s}</text>
"#
    )
}

fn y_axis(out: &mut String, max: f64, unit: &str, ticks: u32) {
    for i in 0..=ticks {
        let v = max * f64::from(i) / f64::from(ticks);
        let y = MARGIN_T + PLOT_H - v / max * PLOT_H;
        out.push_str(&format!(
            r##"<line x1="{x0:.1}" y1="{y:.1}" x2="{x1:.1}" y2="{y:.1}" stroke="#cccccc" stroke-width="0.5"/>
"##,
            x0 = MARGIN_L,
            x1 = MARGIN_L - 4.0,
        ));
        out.push_str(&text(MARGIN_L - 6.0, y + 3.5, "end", &format!("{v:.0}")));
    }
    out.push_str(&text(14.0, MARGIN_T + PLOT_H / 2.0, "middle", unit));
}

/// Renders labeled bandwidth stacks as a paper-style stacked bar chart.
pub fn bandwidth_figure(title: &str, rows: &[(String, BandwidthStack)]) -> String {
    let peak = rows.first().map(|(_, s)| s.peak_gbps()).unwrap_or(19.2);
    let width = MARGIN_L + rows.len() as f64 * (BAR_W + GAP) + GAP + LEGEND_W;
    let height = MARGIN_T + PLOT_H + MARGIN_B;
    let mut out = header(width, height, title);
    y_axis(&mut out, peak, "GB/s", 4);
    for (i, (label, stack)) in rows.iter().enumerate() {
        let x = MARGIN_L + GAP + i as f64 * (BAR_W + GAP);
        let mut y = MARGIN_T + PLOT_H;
        for c in BwComponent::ALL {
            let h = stack.fraction(c) * PLOT_H;
            if h > 0.01 {
                y -= h;
                out.push_str(&rect(x, y, BAR_W, h, bw_color(c)));
            }
        }
        out.push_str(&text(
            x + BAR_W / 2.0,
            MARGIN_T + PLOT_H + 14.0,
            "middle",
            label,
        ));
    }
    let lx = width - LEGEND_W + 8.0;
    for (i, c) in BwComponent::ALL.iter().enumerate() {
        let ly = MARGIN_T + 10.0 + i as f64 * 18.0;
        out.push_str(&rect(lx, ly - 9.0, 12.0, 12.0, bw_color(*c)));
        out.push_str(&text(lx + 17.0, ly + 1.0, "start", c.label()));
    }
    out.push_str("</svg>\n");
    out
}

/// Renders labeled latency stacks as a stacked bar chart scaled to the
/// largest total.
pub fn latency_figure(title: &str, rows: &[(String, LatencyStack)]) -> String {
    let max = rows
        .iter()
        .map(|(_, s)| s.total_ns())
        .fold(1.0_f64, f64::max)
        * 1.05;
    let width = MARGIN_L + rows.len() as f64 * (BAR_W + GAP) + GAP + LEGEND_W;
    let height = MARGIN_T + PLOT_H + MARGIN_B;
    let mut out = header(width, height, title);
    y_axis(&mut out, max, "ns", 5);
    for (i, (label, stack)) in rows.iter().enumerate() {
        let x = MARGIN_L + GAP + i as f64 * (BAR_W + GAP);
        let mut y = MARGIN_T + PLOT_H;
        for c in LatComponent::ALL {
            let h = stack.ns(c) / max * PLOT_H;
            if h > 0.01 {
                y -= h;
                out.push_str(&rect(x, y, BAR_W, h, lat_color(c)));
            }
        }
        out.push_str(&text(
            x + BAR_W / 2.0,
            MARGIN_T + PLOT_H + 14.0,
            "middle",
            label,
        ));
    }
    let lx = width - LEGEND_W + 8.0;
    for (i, c) in LatComponent::ALL.iter().enumerate() {
        let ly = MARGIN_T + 10.0 + i as f64 * 18.0;
        out.push_str(&rect(lx, ly - 9.0, 12.0, 12.0, lat_color(*c)));
        out.push_str(&text(lx + 17.0, ly + 1.0, "start", c.label()));
    }
    out.push_str("</svg>\n");
    out
}

/// Renders a through-time bandwidth area chart (one x-pixel column per
/// sample, components stacked, as in the paper's Fig. 7 middle panel).
pub fn through_time_figure(title: &str, samples: &[TimeSample], cycle_ns: f64) -> String {
    let n = samples.len().max(1);
    let col_w = (900.0 / n as f64).clamp(0.5, 8.0);
    let width = MARGIN_L + n as f64 * col_w + GAP + LEGEND_W;
    let height = MARGIN_T + PLOT_H + MARGIN_B;
    let peak = samples
        .first()
        .map(|s| s.bandwidth.peak_gbps())
        .unwrap_or(19.2);
    let mut out = header(width, height, title);
    y_axis(&mut out, peak, "GB/s", 4);
    for (i, s) in samples.iter().enumerate() {
        let x = MARGIN_L + i as f64 * col_w;
        let mut y = MARGIN_T + PLOT_H;
        for c in BwComponent::ALL {
            let h = s.bandwidth.fraction(c) * PLOT_H;
            if h > 0.005 {
                y -= h;
                out.push_str(&format!(
                    r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"/>
"#,
                    w = col_w,
                    fill = bw_color(c),
                ));
            }
        }
    }
    if let (Some(first), Some(last)) = (samples.first(), samples.last()) {
        let t0 = first.start_cycle as f64 * cycle_ns / 1000.0;
        let t1 = (last.start_cycle + last.cycles) as f64 * cycle_ns / 1000.0;
        out.push_str(&text(
            MARGIN_L,
            MARGIN_T + PLOT_H + 14.0,
            "start",
            &format!("{t0:.0} µs"),
        ));
        out.push_str(&text(
            MARGIN_L + n as f64 * col_w,
            MARGIN_T + PLOT_H + 14.0,
            "end",
            &format!("{t1:.0} µs"),
        ));
    }
    let lx = width - LEGEND_W + 8.0;
    for (i, c) in BwComponent::ALL.iter().enumerate() {
        let ly = MARGIN_T + 10.0 + i as f64 * 18.0;
        out.push_str(&rect(lx, ly - 9.0, 12.0, 12.0, bw_color(*c)));
        out.push_str(&text(lx + 17.0, ly + 1.0, "start", c.label()));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> BandwidthStack {
        let mut s = BandwidthStack::empty(19.2);
        s.weights[BwComponent::Read.index()] = 400.0;
        s.weights[BwComponent::Refresh.index()] = 50.0;
        s.weights[BwComponent::Idle.index()] = 550.0;
        s.total_cycles = 1000;
        s
    }

    #[test]
    fn bandwidth_figure_is_valid_svg_with_bars() {
        let svg = bandwidth_figure("Fig 2", &[("seq 1c".into(), stack())]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("seq 1c"));
        assert!(svg.contains("#1f77b4"), "read color present");
        assert!(svg.matches("<rect").count() > 3);
    }

    #[test]
    fn latency_figure_renders_components() {
        let mut l = LatencyStack::empty();
        l.avg_ns[LatComponent::BaseDram.index()] = 20.0;
        l.avg_ns[LatComponent::Queue.index()] = 60.0;
        l.reads = 5;
        let svg = latency_figure("Latency", &[("a".into(), l)]);
        assert!(svg.contains("</svg>"));
        assert!(svg.contains(lat_color(LatComponent::Queue)));
    }

    #[test]
    fn through_time_figure_handles_many_samples() {
        let samples: Vec<TimeSample> = (0..500)
            .map(|i| TimeSample {
                start_cycle: i * 1200,
                cycles: 1200,
                bandwidth: stack(),
                latency: LatencyStack::empty(),
                ctrl: Default::default(),
            })
            .collect();
        let svg = through_time_figure("bfs", &samples, 0.8333);
        assert!(svg.contains("µs"));
        assert!(svg.matches("<rect").count() > 500);
    }
}
