//! CSV export of stacks and through-time series.

use dramstack_core::{BandwidthStack, BwComponent, LatComponent, LatencyStack, TimeSample};

/// CSV of labeled bandwidth stacks, one row per stack, components in GB/s.
pub fn bandwidth_csv(rows: &[(String, BandwidthStack)]) -> String {
    let mut out = String::from("label");
    for c in BwComponent::ALL {
        out.push(',');
        out.push_str(c.label());
    }
    out.push_str(",achieved,peak\n");
    for (label, s) in rows {
        out.push_str(label);
        for c in BwComponent::ALL {
            out.push_str(&format!(",{:.4}", s.gbps(c)));
        }
        out.push_str(&format!(",{:.4},{:.4}\n", s.achieved_gbps(), s.peak_gbps()));
    }
    out
}

/// CSV of labeled latency stacks, components in nanoseconds.
pub fn latency_csv(rows: &[(String, LatencyStack)]) -> String {
    let mut out = String::from("label");
    for c in LatComponent::ALL {
        out.push(',');
        out.push_str(c.label());
    }
    out.push_str(",total,reads\n");
    for (label, s) in rows {
        out.push_str(label);
        for c in LatComponent::ALL {
            out.push_str(&format!(",{:.4}", s.ns(c)));
        }
        out.push_str(&format!(",{:.4},{}\n", s.total_ns(), s.reads));
    }
    out
}

/// CSV of a through-time series: one row per sample with both stacks.
pub fn samples_csv(samples: &[TimeSample], cycle_ns: f64) -> String {
    let mut out = String::from("t_us");
    for c in BwComponent::ALL {
        out.push_str(&format!(",bw_{}", c.label()));
    }
    for c in LatComponent::ALL {
        out.push_str(&format!(",lat_{}", c.label()));
    }
    out.push_str(",reads\n");
    for s in samples {
        out.push_str(&format!("{:.3}", s.start_cycle as f64 * cycle_ns / 1000.0));
        for c in BwComponent::ALL {
            out.push_str(&format!(",{:.4}", s.bandwidth.gbps(c)));
        }
        for c in LatComponent::ALL {
            out.push_str(&format!(",{:.4}", s.latency.ns(c)));
        }
        out.push_str(&format!(",{}\n", s.latency.reads));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_csv_has_header_and_rows() {
        let s = BandwidthStack::empty(19.2);
        let csv = bandwidth_csv(&[("a".into(), s.clone()), ("b".into(), s)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("label,read,write,refresh"));
        assert!(lines[1].starts_with("a,"));
        assert_eq!(lines[1].split(',').count(), 1 + 8 + 2);
    }

    #[test]
    fn latency_csv_shape() {
        let csv = latency_csv(&[("x".into(), LatencyStack::empty())]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].split(',').count(), 1 + 6 + 2);
    }

    #[test]
    fn samples_csv_time_axis() {
        let sample = TimeSample {
            start_cycle: 1200,
            cycles: 1200,
            bandwidth: BandwidthStack::empty(19.2),
            latency: LatencyStack::empty(),
            ctrl: Default::default(),
        };
        let csv = samples_csv(&[sample], 0.8333);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(
            lines[1].starts_with("1.000"),
            "1200 cycles at 0.8333 ns ≈ 1 µs: {}",
            lines[1]
        );
    }
}
