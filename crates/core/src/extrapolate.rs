//! Stack-based bandwidth extrapolation (Section VIII-B of the paper).
//!
//! Given a bandwidth stack measured at one core count, predict the achieved
//! bandwidth at `k`× the cores: scale every non-idle, non-refresh component
//! by `k` (more traffic means proportionally more pre/act and constraint
//! cycles), keep refresh constant, drop the idle components, and if the
//! scaled stack overflows the peak, rescale the scaled components
//! proportionally so that the stack again sums to the peak. The naive
//! baseline just multiplies the achieved bandwidth and saturates at
//! peak − refresh.

use crate::components::BwComponent;
use crate::stack::BandwidthStack;

/// Extrapolates one bandwidth stack to `k`× the traffic.
///
/// The returned stack sums to the peak bandwidth again: any headroom left
/// becomes `idle`; overflow rescales the scaled components.
///
/// # Example
///
/// ```
/// use dramstack_core::{extrapolate_stack, BandwidthStack, BwComponent};
///
/// // 10 % read, 4 % refresh, rest idle, at one core…
/// let mut one_core = BandwidthStack::empty(19.2);
/// one_core.total_cycles = 1_000;
/// one_core.weights[BwComponent::Read.index()] = 100.0;
/// one_core.weights[BwComponent::Refresh.index()] = 40.0;
/// one_core.weights[BwComponent::Idle.index()] = 860.0;
///
/// // …predicts 80 % of peak at eight cores.
/// let eight = extrapolate_stack(&one_core, 8.0);
/// assert!((eight.achieved_gbps() - 0.8 * 19.2).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `k` is not positive.
pub fn extrapolate_stack(stack: &BandwidthStack, k: f64) -> BandwidthStack {
    assert!(k > 0.0, "scale factor must be positive");
    let refresh = stack.fraction(BwComponent::Refresh);
    // Scale every active component.
    let scaled: Vec<(BwComponent, f64)> = BwComponent::ALL
        .iter()
        .filter(|c| !c.is_idle_kind() && **c != BwComponent::Refresh)
        .map(|&c| (c, stack.fraction(c) * k))
        .collect();
    let scaled_sum: f64 = scaled.iter().map(|(_, f)| f).sum();
    let budget = 1.0 - refresh;
    // Proportional rescale on overflow ("scale down the components
    // proportionally, such that the total stack equals the peak").
    let ratio = if scaled_sum > budget && scaled_sum > 0.0 {
        budget / scaled_sum
    } else {
        1.0
    };

    let mut out = BandwidthStack::empty(stack.peak_gbps);
    out.total_cycles = stack.total_cycles;
    let cycles = stack.total_cycles as f64;
    out.weights[BwComponent::Refresh.index()] = refresh * cycles;
    let mut used = refresh;
    for (c, f) in scaled {
        let f = f * ratio;
        out.weights[c.index()] = f * cycles;
        used += f;
    }
    out.weights[BwComponent::Idle.index()] = (1.0 - used).max(0.0) * cycles;
    out
}

/// Aggregated stack-based prediction over through-time samples, in GB/s.
///
/// Each sample is extrapolated independently (phases scale differently) and
/// the predictions are combined weighted by sample length, as in the paper.
pub fn predict_bandwidth_stack(samples: &[BandwidthStack], k: f64) -> f64 {
    weighted_average(samples, |s| extrapolate_stack(s, k).achieved_gbps())
}

/// Naive prediction: `min(k × achieved, peak − refresh)` per sample.
pub fn predict_bandwidth_naive(samples: &[BandwidthStack], k: f64) -> f64 {
    weighted_average(samples, |s| {
        let cap = s.peak_gbps * (1.0 - s.fraction(BwComponent::Refresh));
        (s.achieved_gbps() * k).min(cap)
    })
}

fn weighted_average(samples: &[BandwidthStack], f: impl Fn(&BandwidthStack) -> f64) -> f64 {
    let total: u64 = samples.iter().map(|s| s.total_cycles).sum();
    if total == 0 {
        return 0.0;
    }
    samples
        .iter()
        .map(|s| f(s) * s.total_cycles as f64)
        .sum::<f64>()
        / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a stack from fractions (must sum to 1).
    fn stack_from(fracs: &[(BwComponent, f64)]) -> BandwidthStack {
        let mut s = BandwidthStack::empty(19.2);
        s.total_cycles = 1_000_000;
        for &(c, f) in fracs {
            s.weights[c.index()] = f * s.total_cycles as f64;
        }
        assert!(s.is_consistent(), "test stack must sum to 1");
        s
    }

    #[test]
    fn linear_regime_scales_achieved_bandwidth() {
        // 10% read, 4% refresh, rest idle: 8× fits under the peak.
        let s = stack_from(&[
            (BwComponent::Read, 0.10),
            (BwComponent::Refresh, 0.04),
            (BwComponent::Idle, 0.86),
        ]);
        let pred = predict_bandwidth_stack(&[s], 8.0);
        assert!((pred - 0.8 * 19.2).abs() < 1e-9);
    }

    #[test]
    fn overheads_make_stack_prediction_lower_than_naive() {
        // Large pre/act and constraints overhead: scaling 8× overflows, so
        // the achieved bandwidth saturates *below* peak − refresh. The
        // naive method overpredicts — exactly the Fig. 9 effect.
        let s = stack_from(&[
            (BwComponent::Read, 0.08),
            (BwComponent::Write, 0.02),
            (BwComponent::Precharge, 0.05),
            (BwComponent::Activate, 0.05),
            (BwComponent::Constraints, 0.05),
            (BwComponent::Refresh, 0.04),
            (BwComponent::BankIdle, 0.21),
            (BwComponent::Idle, 0.50),
        ]);
        let stack_pred = predict_bandwidth_stack(std::slice::from_ref(&s), 8.0);
        let naive_pred = predict_bandwidth_naive(&[s], 8.0);
        assert!(
            stack_pred < naive_pred,
            "stack {stack_pred} < naive {naive_pred}"
        );
        // Scaled active fraction: 0.25 × 8 = 2.0; budget 0.96; achieved
        // fraction = 0.10 × 8 × 0.96 / 2.0 = 0.384.
        assert!((stack_pred - 0.384 * 19.2).abs() < 1e-9);
        // Naive just multiplies: 0.10 × 8 = 0.80 of peak (below its
        // saturation cap of 0.96).
        assert!((naive_pred - 0.80 * 19.2).abs() < 1e-9);
    }

    #[test]
    fn extrapolated_stack_still_sums_to_peak() {
        let s = stack_from(&[
            (BwComponent::Read, 0.10),
            (BwComponent::Precharge, 0.10),
            (BwComponent::Refresh, 0.04),
            (BwComponent::BankIdle, 0.26),
            (BwComponent::Idle, 0.50),
        ]);
        for k in [1.0, 2.0, 4.0, 8.0, 100.0] {
            let e = extrapolate_stack(&s, k);
            assert!(e.is_consistent(), "k={k}");
            assert!((e.total_gbps() - 19.2).abs() < 1e-6, "k={k}");
        }
    }

    #[test]
    fn k_of_one_preserves_active_components() {
        let s = stack_from(&[
            (BwComponent::Read, 0.2),
            (BwComponent::Constraints, 0.1),
            (BwComponent::Refresh, 0.04),
            (BwComponent::BankIdle, 0.16),
            (BwComponent::Idle, 0.5),
        ]);
        let e = extrapolate_stack(&s, 1.0);
        assert!((e.fraction(BwComponent::Read) - 0.2).abs() < 1e-12);
        assert!((e.fraction(BwComponent::Constraints) - 0.1).abs() < 1e-12);
        // Idle kinds are folded into plain idle.
        assert!((e.fraction(BwComponent::Idle) - 0.66).abs() < 1e-12);
        assert_eq!(e.fraction(BwComponent::BankIdle), 0.0);
    }

    #[test]
    fn refresh_is_never_scaled() {
        let s = stack_from(&[
            (BwComponent::Read, 0.3),
            (BwComponent::Refresh, 0.04),
            (BwComponent::Idle, 0.66),
        ]);
        let e = extrapolate_stack(&s, 8.0);
        assert!((e.fraction(BwComponent::Refresh) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn per_sample_extrapolation_differs_from_aggregate() {
        // Phase A: saturating; phase B: idle. Extrapolating per sample and
        // averaging differs from extrapolating the merged stack — the
        // reason the paper applies the method per time sample.
        let a = stack_from(&[
            (BwComponent::Read, 0.4),
            (BwComponent::Refresh, 0.04),
            (BwComponent::Idle, 0.56),
        ]);
        let b = stack_from(&[
            (BwComponent::Read, 0.01),
            (BwComponent::Refresh, 0.04),
            (BwComponent::Idle, 0.95),
        ]);
        let per_sample = predict_bandwidth_stack(&[a.clone(), b.clone()], 8.0);
        let mut merged = a;
        merged.merge(&b);
        let aggregate = predict_bandwidth_stack(&[merged], 8.0);
        assert!(per_sample < aggregate);
    }

    #[test]
    fn empty_sample_list_predicts_zero() {
        assert_eq!(predict_bandwidth_stack(&[], 8.0), 0.0);
        assert_eq!(predict_bandwidth_naive(&[], 8.0), 0.0);
    }
}
