//! Through-time stacks: bandwidth and latency stacks per time window
//! (Section VIII-A of the paper, Fig. 7).
//!
//! A single aggregated stack hides phase behaviour; the sampler snapshots
//! both accountants every `period` DRAM cycles, producing a stack series
//! that exposes phases and feeds the per-sample extrapolation of Fig. 9.

use serde::{Deserialize, Serialize};

use dramstack_dram::{Cycle, CycleView};
use dramstack_memctrl::LatencyBreakdown;
use dramstack_obs::{
    metrics::{CounterId, HistogramId},
    window::QUEUE_DEPTH_BOUNDS,
    CtrlWindowStats, MetricsRegistry, WindowMerge, WindowObservation,
};

use crate::bandwidth::BandwidthAccountant;
use crate::components::{BwComponent, LatComponent};
use crate::latency::{LatencyAccountant, LatencyStack};
use crate::stack::BandwidthStack;

/// One sample of the through-time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSample {
    /// First cycle covered by this sample.
    pub start_cycle: Cycle,
    /// Cycles covered.
    pub cycles: u64,
    /// The bandwidth stack of this window.
    pub bandwidth: BandwidthStack,
    /// The latency stack of reads completing in this window.
    pub latency: LatencyStack,
    /// Controller health over this window (queue depths, row-hit rate,
    /// drain occupancy), sampled from the per-cycle [`CycleView`] fields.
    pub ctrl: CtrlWindowStats,
}

impl TimeSample {
    /// Projects this window onto the advisor's neutral share vocabulary:
    /// bandwidth-stack fractions of peak, latency-stack fractions of mean
    /// read latency and controller health figures.
    pub fn observation(&self) -> WindowObservation {
        let bw = &self.bandwidth;
        let lat = &self.latency;
        let lat_total = lat.total_ns();
        let lat_frac = |c: LatComponent| {
            if lat_total > 0.0 {
                lat.ns(c) / lat_total
            } else {
                0.0
            }
        };
        WindowObservation {
            start_cycle: self.start_cycle,
            cycles: self.cycles,
            bw_data: bw.fraction(BwComponent::Read) + bw.fraction(BwComponent::Write),
            bw_refresh: bw.fraction(BwComponent::Refresh),
            bw_precharge: bw.fraction(BwComponent::Precharge),
            bw_activate: bw.fraction(BwComponent::Activate),
            bw_constraints: bw.fraction(BwComponent::Constraints),
            bw_idle: bw.fraction(BwComponent::Idle),
            lat_queue: lat_frac(LatComponent::Queue),
            lat_refresh: lat_frac(LatComponent::Refresh),
            lat_writeburst: lat_frac(LatComponent::WriteBurst),
            lat_preact: lat_frac(LatComponent::PreAct),
            row_hit_rate: self.ctrl.row_hit_rate(),
            drain_occupancy: self.ctrl.drain_occupancy(),
            mean_read_queue_depth: self.ctrl.mean_read_queue_depth(),
            reads: lat.reads,
        }
    }
}

/// Folding adjacent windows for the telemetry ring: cycle counts add,
/// bandwidth weights add, latency averages merge read-weighted and
/// controller health merges — the same arithmetic as whole-run
/// aggregation, so a downsampled series conserves every quantity.
impl WindowMerge for TimeSample {
    fn merge_window(&mut self, next: &Self) {
        self.cycles += next.cycles;
        self.bandwidth.merge(&next.bandwidth);
        self.latency.merge(&next.latency);
        self.ctrl.merge(&next.ctrl);
    }
}

/// Serializable state of a [`StackSampler`], captured by
/// [`StackSampler::snapshot_state`] and re-injected with
/// [`StackSampler::restore_state`] into a sampler constructed with the
/// same parameters. Captures the open (partial) window — accountants,
/// per-window metrics — alongside the rolled samples, so a restored
/// sampler continues the window bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerState {
    bw: BandwidthAccountant,
    lat: LatencyAccountant,
    window_start: Cycle,
    accounted: u64,
    samples: Vec<TimeSample>,
    metrics: MetricsRegistry,
}

impl SamplerState {
    /// Number of rolled windows held by this state.
    pub fn samples_len(&self) -> usize {
        self.samples.len()
    }

    /// Captures a [`SamplerDelta`] relative to a base state that held
    /// `base_len` rolled windows. The rolled-sample list is append-only
    /// while a simulation advances, so the delta carries only the windows
    /// rolled since the base plus the (small) open-window bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `base_len` exceeds the current sample count — that means
    /// the caller's base bookkeeping is stale, not a recoverable input.
    pub fn delta_since(&self, base_len: usize) -> SamplerDelta {
        assert!(
            base_len <= self.samples.len(),
            "sampler shrank from {base_len} to {} windows — samples are append-only",
            self.samples.len()
        );
        SamplerDelta {
            bw: self.bw.clone(),
            lat: self.lat,
            window_start: self.window_start,
            accounted: self.accounted,
            base_len: base_len as u64,
            appended: self.samples[base_len..].to_vec(),
            metrics: self.metrics.clone(),
        }
    }

    /// Replays a [`SamplerDelta`] onto this (base) state.
    ///
    /// # Errors
    ///
    /// Returns a message when the delta was captured against a base with
    /// a different rolled-window count than this state holds.
    pub fn apply_delta(&mut self, delta: &SamplerDelta) -> Result<(), String> {
        if self.samples.len() as u64 != delta.base_len {
            return Err(format!(
                "sampler delta expects a base with {} windows, state has {}",
                delta.base_len,
                self.samples.len()
            ));
        }
        self.bw = delta.bw.clone();
        self.lat = delta.lat;
        self.window_start = delta.window_start;
        self.accounted = delta.accounted;
        self.samples.extend(delta.appended.iter().cloned());
        self.metrics = delta.metrics.clone();
        Ok(())
    }
}

/// Dirty-state patch for one sampler: the full open-window bookkeeping
/// (accountants, per-window metrics — all small) plus only the windows
/// rolled since the base snapshot. Produced by
/// [`SamplerState::delta_since`], replayed by
/// [`SamplerState::apply_delta`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerDelta {
    bw: BandwidthAccountant,
    lat: LatencyAccountant,
    window_start: Cycle,
    accounted: u64,
    base_len: u64,
    appended: Vec<TimeSample>,
    metrics: MetricsRegistry,
}

impl SamplerDelta {
    /// Number of windows rolled since the base snapshot.
    pub fn appended_len(&self) -> usize {
        self.appended.len()
    }
}

/// Samples bandwidth and latency stacks every fixed number of cycles.
#[derive(Debug, Clone)]
pub struct StackSampler {
    bw: BandwidthAccountant,
    lat: LatencyAccountant,
    period: Cycle,
    cycle_ns: f64,
    window_start: Cycle,
    accounted: u64,
    samples: Vec<TimeSample>,
    /// Per-window controller-health metrics, accumulated from the view and
    /// snapshot into [`TimeSample::ctrl`] at each roll.
    metrics: MetricsRegistry,
    m_cas: CounterId,
    m_cas_hits: CounterId,
    m_drain_cycles: CounterId,
    m_read_depth: HistogramId,
    m_write_depth: HistogramId,
}

impl StackSampler {
    /// Creates a sampler for a channel with `n_banks` banks, `peak_gbps`
    /// peak bandwidth, a command clock of `cycle_ns` nanoseconds per cycle
    /// and the given sampling `period` in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(n_banks: usize, peak_gbps: f64, cycle_ns: f64, period: Cycle) -> Self {
        assert!(period > 0, "sampling period must be nonzero");
        let mut metrics = MetricsRegistry::new();
        let m_cas = metrics.counter("cas");
        let m_cas_hits = metrics.counter("cas_hits");
        let m_drain_cycles = metrics.counter("drain_cycles");
        let m_read_depth = metrics.histogram("read_queue_depth", &QUEUE_DEPTH_BOUNDS);
        let m_write_depth = metrics.histogram("write_queue_depth", &QUEUE_DEPTH_BOUNDS);
        StackSampler {
            bw: BandwidthAccountant::new(n_banks, peak_gbps),
            lat: LatencyAccountant::new(),
            period,
            cycle_ns,
            window_start: 0,
            accounted: 0,
            samples: Vec::new(),
            metrics,
            m_cas,
            m_cas_hits,
            m_drain_cycles,
            m_read_depth,
            m_write_depth,
        }
    }

    /// Accounts one cycle and rolls the window when the period elapses.
    pub fn account(&mut self, view: &CycleView) {
        if view.is_all_idle() {
            // An all-idle cycle touches two accountant counters and the
            // zero bucket of both depth histograms; skip classification.
            self.account_idle(1);
            return;
        }
        self.bw.account(view);
        if let Some(hit) = view.cas_hit {
            self.metrics.inc(self.m_cas, 1);
            if hit {
                self.metrics.inc(self.m_cas_hits, 1);
            }
        }
        if view.drain {
            self.metrics.inc(self.m_drain_cycles, 1);
        }
        self.metrics
            .observe(self.m_read_depth, view.read_q_depth as u64);
        self.metrics
            .observe(self.m_write_depth, view.write_q_depth as u64);
        self.accounted += 1;
        if self.accounted == self.period {
            self.roll();
        }
    }

    /// Accounts `n` fully idle cycles in bulk — bit-identical to calling
    /// [`account`](Self::account) `n` times with [`CycleView::idle`],
    /// including any window rolls inside the span, but at O(windows)
    /// instead of O(cycles) cost. This is the sampler half of the
    /// event-skip fast-forward.
    pub fn account_idle(&mut self, mut n: u64) {
        while n > 0 {
            let take = n.min(self.period - self.accounted);
            self.bw.account_idle(take);
            self.metrics.observe_n(self.m_read_depth, 0, take);
            self.metrics.observe_n(self.m_write_depth, 0, take);
            self.accounted += take;
            n -= take;
            if self.accounted == self.period {
                self.roll();
            }
        }
    }

    /// Accounts `n` identical cycles of `view` in bulk — bit-identical to
    /// calling [`account`](Self::account) `n` times with the same view,
    /// including window rolls inside the span. This is the sampler half of
    /// the *busy* event-horizon skip: a stalled-but-busy controller span
    /// (saturated bus backlog, tRFC shadow, write drain) has a constant
    /// view, so its whole stretch classifies in O(windows).
    ///
    /// The span must not contain CAS issues (`view.cas_hit` is `None`); a
    /// CAS would end the stall that made the span skippable.
    pub fn account_span(&mut self, view: &CycleView, mut n: u64) {
        if view.is_all_idle() {
            self.account_idle(n);
            return;
        }
        debug_assert!(view.cas_hit.is_none(), "CAS inside a bulk busy span");
        while n > 0 {
            let take = n.min(self.period - self.accounted);
            self.bw.account_span(view, take);
            if view.drain {
                self.metrics.inc(self.m_drain_cycles, take);
            }
            self.metrics
                .observe_n(self.m_read_depth, view.read_q_depth as u64, take);
            self.metrics
                .observe_n(self.m_write_depth, view.write_q_depth as u64, take);
            self.accounted += take;
            n -= take;
            if self.accounted == self.period {
                self.roll();
            }
        }
    }

    /// Records a completed read into the current window.
    pub fn add_read(&mut self, b: &LatencyBreakdown) {
        self.lat.add(b);
    }

    fn roll(&mut self) {
        let bandwidth = self.bw.take_sample();
        let latency = self.lat.take_sample(self.cycle_ns);
        let m = self.metrics.snapshot_and_reset();
        let ctrl = CtrlWindowStats {
            cycles: self.accounted,
            cas: m.counter("cas").unwrap_or(0),
            cas_hits: m.counter("cas_hits").unwrap_or(0),
            drain_cycles: m.counter("drain_cycles").unwrap_or(0),
            read_queue_depth: m.histogram("read_queue_depth").expect("registered").clone(),
            write_queue_depth: m
                .histogram("write_queue_depth")
                .expect("registered")
                .clone(),
        };
        self.samples.push(TimeSample {
            start_cycle: self.window_start,
            cycles: self.accounted,
            bandwidth,
            latency,
            ctrl,
        });
        self.window_start += self.accounted;
        self.accounted = 0;
    }

    /// Finishes the trailing partial window (if any) and returns all
    /// samples.
    pub fn finish(mut self) -> Vec<TimeSample> {
        self.flush_partial();
        self.samples
    }

    /// Rolls the open partial window into the sample list without
    /// consuming the sampler (no-op when the window is empty).
    pub fn flush_partial(&mut self) {
        if self.accounted > 0 {
            self.roll();
        }
    }

    /// Samples collected so far (not including the open window).
    pub fn samples(&self) -> &[TimeSample] {
        &self.samples
    }

    /// Captures the sampler's full state, including the open window.
    pub fn snapshot_state(&self) -> SamplerState {
        SamplerState {
            bw: self.bw.clone(),
            lat: self.lat,
            window_start: self.window_start,
            accounted: self.accounted,
            samples: self.samples.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Captures a [`SamplerDelta`] directly from the live sampler against
    /// a base that held `base_len` rolled windows — same result as
    /// `snapshot_state().delta_since(base_len)` without cloning the whole
    /// rolled-window series first.
    ///
    /// # Panics
    ///
    /// Panics if `base_len` exceeds the current window count (stale base
    /// bookkeeping; the series is append-only between reports).
    pub fn delta_since(&self, base_len: usize) -> SamplerDelta {
        assert!(
            base_len <= self.samples.len(),
            "sampler shrank from {base_len} to {} windows — samples are append-only",
            self.samples.len()
        );
        SamplerDelta {
            bw: self.bw.clone(),
            lat: self.lat,
            window_start: self.window_start,
            accounted: self.accounted,
            base_len: base_len as u64,
            appended: self.samples[base_len..].to_vec(),
            metrics: self.metrics.clone(),
        }
    }

    /// Restores state captured by [`snapshot_state`](Self::snapshot_state).
    /// The target must have been constructed with the same parameters
    /// (banks, peak, cycle time, period) as the snapshot source — the
    /// metric handles are deterministic per construction, so only the
    /// mutable state needs re-injecting.
    pub fn restore_state(&mut self, state: &SamplerState) {
        self.bw = state.bw.clone();
        self.lat = state.lat;
        self.window_start = state.window_start;
        self.accounted = state.accounted;
        self.samples = state.samples.clone();
        self.metrics = state.metrics.clone();
    }

    /// The sampling period in cycles.
    pub fn period(&self) -> Cycle {
        self.period
    }
}

/// A detected execution phase: a contiguous run of samples with similar
/// bandwidth behaviour, with its aggregated stacks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Index of the first sample of this phase.
    pub start_sample: usize,
    /// Number of samples covered.
    pub len: usize,
    /// First cycle of the phase.
    pub start_cycle: Cycle,
    /// Cycles covered.
    pub cycles: u64,
    /// Aggregated bandwidth stack of the phase.
    pub bandwidth: BandwidthStack,
    /// Aggregated latency stack of the phase.
    pub latency: LatencyStack,
}

/// Segments a through-time series into phases: a new phase starts when a
/// sample's achieved-bandwidth fraction moves more than `threshold` away
/// from the running phase mean. Runs shorter than `min_len` samples are
/// folded into their successor, so noise does not fragment the series.
///
/// # Example
///
/// ```
/// use dramstack_core::through_time::detect_phases;
///
/// // No samples, no phases; a real series comes from a StackSampler or
/// // a SimReport's `samples` field.
/// assert!(detect_phases(&[], 0.15, 3).is_empty());
/// ```
///
/// # Panics
///
/// Panics if `threshold` is not positive or `min_len` is zero.
pub fn detect_phases(samples: &[TimeSample], threshold: f64, min_len: usize) -> Vec<Phase> {
    assert!(threshold > 0.0, "threshold must be positive");
    assert!(min_len > 0, "min_len must be nonzero");
    let mut boundaries = vec![0usize];
    let mut mean = f64::NAN;
    let mut count = 0usize;
    for (i, s) in samples.iter().enumerate() {
        let v = s.bandwidth.fraction(crate::BwComponent::Read)
            + s.bandwidth.fraction(crate::BwComponent::Write);
        if count == 0 {
            mean = v;
            count = 1;
            continue;
        }
        if (v - mean).abs() > threshold && i - boundaries.last().unwrap() >= min_len {
            boundaries.push(i);
            mean = v;
            count = 1;
        } else {
            mean = (mean * count as f64 + v) / (count + 1) as f64;
            count += 1;
        }
    }
    boundaries.push(samples.len());
    boundaries
        .windows(2)
        .filter(|w| w[1] > w[0])
        .map(|w| {
            let slice = &samples[w[0]..w[1]];
            let bandwidth = aggregate_bandwidth(slice).expect("nonempty phase");
            let latency = aggregate_latency(slice);
            Phase {
                start_sample: w[0],
                len: slice.len(),
                start_cycle: slice[0].start_cycle,
                cycles: slice.iter().map(|s| s.cycles).sum(),
                bandwidth,
                latency,
            }
        })
        .collect()
}

/// Aggregates a sample series back into one overall bandwidth stack.
pub fn aggregate_bandwidth(samples: &[TimeSample]) -> Option<BandwidthStack> {
    let mut iter = samples.iter();
    let mut total = iter.next()?.bandwidth.clone();
    for s in iter {
        total.merge(&s.bandwidth);
    }
    Some(total)
}

/// Aggregates a sample series into one overall latency stack
/// (read-count weighted).
pub fn aggregate_latency(samples: &[TimeSample]) -> LatencyStack {
    let mut total = LatencyStack::empty();
    for s in samples {
        total.merge(&s.latency);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::BwComponent;
    use dramstack_dram::BurstKind;

    fn sampler() -> StackSampler {
        StackSampler::new(16, 19.2, 0.8333, 100)
    }

    #[test]
    fn windows_roll_at_period() {
        let mut s = sampler();
        let mut busy = CycleView::idle(16);
        busy.bus = Some(BurstKind::Read);
        let idle = CycleView::idle(16);
        for _ in 0..100 {
            s.account(&busy);
        }
        for _ in 0..100 {
            s.account(&idle);
        }
        let samples = s.finish();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].start_cycle, 0);
        assert_eq!(samples[1].start_cycle, 100);
        assert!((samples[0].bandwidth.fraction(BwComponent::Read) - 1.0).abs() < 1e-12);
        assert!((samples[1].bandwidth.fraction(BwComponent::Idle) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_window_is_flushed_by_finish() {
        let mut s = sampler();
        for _ in 0..150 {
            s.account(&CycleView::idle(16));
        }
        let samples = s.finish();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].cycles, 50);
    }

    #[test]
    fn reads_land_in_their_window() {
        let mut s = sampler();
        let b = LatencyBreakdown {
            base_cntlr: 10,
            base_dram: 20,
            ..Default::default()
        };
        s.add_read(&b);
        for _ in 0..100 {
            s.account(&CycleView::idle(16));
        }
        s.add_read(&b);
        s.add_read(&b);
        for _ in 0..100 {
            s.account(&CycleView::idle(16));
        }
        let samples = s.finish();
        assert_eq!(samples[0].latency.reads, 1);
        assert_eq!(samples[1].latency.reads, 2);
    }

    #[test]
    fn aggregation_matches_unsampled_accounting() {
        let mut s = sampler();
        let mut busy = CycleView::idle(16);
        busy.bus = Some(BurstKind::Write);
        for i in 0..250 {
            if i % 2 == 0 {
                s.account(&busy);
            } else {
                s.account(&CycleView::idle(16));
            }
        }
        let samples = s.finish();
        let agg = aggregate_bandwidth(&samples).unwrap();
        assert_eq!(agg.total_cycles, 250);
        assert!((agg.fraction(BwComponent::Write) - 125.0 / 250.0).abs() < 1e-12);
        assert!(agg.is_consistent());
    }

    #[test]
    fn aggregate_of_empty_series() {
        assert!(aggregate_bandwidth(&[]).is_none());
        assert_eq!(aggregate_latency(&[]).reads, 0);
    }

    /// Builds a sample with the given read fraction.
    fn sample_with_read(start: Cycle, frac: f64) -> TimeSample {
        let mut s = StackSampler::new(16, 19.2, 0.8333, 100);
        let mut busy = CycleView::idle(16);
        busy.bus = Some(BurstKind::Read);
        let idle = CycleView::idle(16);
        for i in 0..100 {
            if (i as f64) < frac * 100.0 {
                s.account(&busy);
            } else {
                s.account(&idle);
            }
        }
        let mut out = s.finish().remove(0);
        out.start_cycle = start;
        out
    }

    #[test]
    fn phases_are_detected_at_bandwidth_shifts() {
        // 10 low-bandwidth windows, then 10 high, then 10 low again.
        let mut samples = Vec::new();
        for i in 0..30u64 {
            let frac = if (10..20).contains(&i) { 0.8 } else { 0.1 };
            samples.push(sample_with_read(i * 100, frac));
        }
        let phases = detect_phases(&samples, 0.2, 2);
        assert_eq!(phases.len(), 3, "{phases:?}");
        assert_eq!(phases[0].len, 10);
        assert_eq!(phases[1].start_sample, 10);
        assert!(phases[1].bandwidth.fraction(crate::BwComponent::Read) > 0.7);
        assert!(phases[2].bandwidth.fraction(crate::BwComponent::Read) < 0.2);
        // Phases partition the series.
        let covered: usize = phases.iter().map(|p| p.len).sum();
        assert_eq!(covered, samples.len());
        let cycles: u64 = phases.iter().map(|p| p.cycles).sum();
        assert_eq!(cycles, 3000);
    }

    #[test]
    fn uniform_series_is_one_phase() {
        let samples: Vec<_> = (0..20).map(|i| sample_with_read(i * 100, 0.5)).collect();
        let phases = detect_phases(&samples, 0.15, 2);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].len, 20);
    }

    #[test]
    fn short_blips_do_not_fragment() {
        // One deviant window inside a uniform series, min_len 3.
        let mut samples: Vec<_> = (0..20).map(|i| sample_with_read(i * 100, 0.2)).collect();
        samples[7] = sample_with_read(700, 0.9);
        let phases = detect_phases(&samples, 0.25, 3);
        assert!(
            phases.len() <= 3,
            "blip should not explode phases: {}",
            phases.len()
        );
    }

    #[test]
    fn empty_series_has_no_phases() {
        assert!(detect_phases(&[], 0.1, 1).is_empty());
    }

    #[test]
    fn ctrl_window_stats_accumulate_from_view() {
        let mut s = sampler();
        let mut v = CycleView::idle(16);
        v.read_q_depth = 4;
        v.write_q_depth = 1;
        v.drain = true;
        v.cas_hit = Some(true);
        for _ in 0..50 {
            s.account(&v);
        }
        v.cas_hit = Some(false);
        v.drain = false;
        for _ in 0..50 {
            s.account(&v);
        }
        let samples = s.finish();
        assert_eq!(samples.len(), 1);
        let c = &samples[0].ctrl;
        assert_eq!(c.cycles, 100);
        assert_eq!(c.cas, 100);
        assert_eq!(c.cas_hits, 50);
        assert_eq!(c.drain_cycles, 50);
        assert_eq!(c.read_queue_depth.count, 100);
        assert!((c.mean_read_queue_depth() - 4.0).abs() < 1e-12);
        assert!((c.row_hit_rate() - 0.5).abs() < 1e-12);
        assert!((c.drain_occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bulk_idle_equals_repeated_idle_accounting() {
        // Span crosses two window boundaries and leaves a partial window;
        // bulk accounting must produce identical samples, including rolls.
        let mut bulk = sampler();
        let mut single = sampler();
        let idle = CycleView::idle(16);
        let mut busy = CycleView::idle(16);
        busy.bus = Some(BurstKind::Read);
        // A little non-idle prefix so the bulk span starts mid-window.
        for _ in 0..37 {
            bulk.account(&busy);
            single.account(&busy);
        }
        bulk.account_idle(263);
        for _ in 0..263 {
            single.account(&idle);
        }
        let a = bulk.finish();
        let b = single.finish();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn bulk_span_equals_repeated_accounting() {
        // A busy (non-idle, no-CAS) view spanning window boundaries: the
        // bulk path must match per-cycle accounting sample for sample.
        let mut bulk = sampler();
        let mut single = sampler();
        let mut busy = CycleView::idle(16);
        busy.bus = Some(BurstKind::Write);
        busy.read_q_depth = 7;
        busy.write_q_depth = 3;
        busy.drain = true;
        let mut cas = CycleView::idle(16);
        cas.cas_hit = Some(true);
        for _ in 0..37 {
            bulk.account(&cas);
            single.account(&cas);
        }
        bulk.account_span(&busy, 263);
        for _ in 0..263 {
            single.account(&busy);
        }
        // An all-idle span delegates to the idle path.
        bulk.account_span(&CycleView::idle(16), 41);
        for _ in 0..41 {
            single.account(&CycleView::idle(16));
        }
        let a = bulk.finish();
        let b = single.finish();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].ctrl.drain_cycles, 63);
        assert_eq!(a[1].ctrl.drain_cycles, 100);
    }

    #[test]
    fn ctrl_stats_reset_between_windows() {
        let mut s = sampler();
        let mut v = CycleView::idle(16);
        v.cas_hit = Some(true);
        for _ in 0..100 {
            s.account(&v);
        }
        v.cas_hit = None;
        for _ in 0..100 {
            s.account(&v);
        }
        let samples = s.finish();
        assert_eq!(samples[0].ctrl.cas, 100);
        assert_eq!(samples[1].ctrl.cas, 0);
    }
}
