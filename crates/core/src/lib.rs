//! DRAM bandwidth and latency **stacks** — the contribution of
//! *"DRAM Bandwidth and Latency Stacks: Visualizing DRAM Bottlenecks"*
//! (Eyerman, Heirman, Hur — ISPASS 2022).
//!
//! A **bandwidth stack** decomposes the peak bandwidth of a DRAM channel
//! into the achieved read/write bandwidth plus the bandwidth lost to
//! refresh, precharge/activate, timing constraints, unused bank
//! parallelism and plain idleness. The accounting is hierarchical and
//! never double-counts: every DRAM cycle lands in exactly one component
//! (per-bank fractions summing to one cycle), so the stack always adds up
//! to the peak bandwidth.
//!
//! A **latency stack** decomposes the average DRAM read latency into the
//! uncontended base latency, precharge/activate penalties, refresh delays,
//! write-burst delays and residual queueing.
//!
//! The crate also provides [`through_time`] sampling (stacks per time
//! window, for phase analysis) and the paper's stack-based bandwidth
//! extrapolation to higher core counts ([`predict_bandwidth_stack`]).
//!
//! # Example
//!
//! ```
//! use dramstack_core::{BandwidthAccountant, BwComponent};
//! use dramstack_dram::{CycleView, BankActivity, BurstKind};
//!
//! let mut acc = BandwidthAccountant::new(16, 19.2);
//! let mut view = CycleView::idle(16);
//!
//! view.bus = Some(BurstKind::Read);
//! acc.account(&view); // a useful cycle
//! view.bus = None;
//! view.banks[0] = BankActivity::Activating;
//! acc.account(&view); // 1/16 activate + 15/16 bank-idle
//!
//! let stack = acc.stack();
//! assert!((stack.total_gbps() - 19.2).abs() < 1e-9);
//! assert!(stack.gbps(BwComponent::Read) > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bandwidth;
mod components;
mod extrapolate;
mod histogram;
mod latency;
pub mod offline;
mod stack;
pub mod through_time;

pub use bandwidth::{BandwidthAccountant, FirstCauseAccountant};
pub use components::{BwComponent, LatComponent};
pub use extrapolate::{extrapolate_stack, predict_bandwidth_naive, predict_bandwidth_stack};
pub use histogram::{HistogramDelta, LatencyHistogram};
pub use latency::{LatencyAccountant, LatencyStack};
pub use stack::BandwidthStack;
pub use through_time::{SamplerDelta, SamplerState, StackSampler, TimeSample};
