//! The hierarchical bandwidth-stack accounting mechanism (Section IV of
//! the paper).
//!
//! Every DRAM cycle is classified exactly once, with priority:
//!
//! 1. data on the bus → `read`/`write`;
//! 2. refresh in progress → `refresh`;
//! 3. at least one bank occupied → per-bank `1/n` split over
//!    `precharge`/`activate`/`constraints`/`bank_idle`;
//! 4. all banks idle, a pending request blocked by a rank/channel-level
//!    constraint → `constraints` (a refresh drain charges `refresh`);
//! 5. otherwise → `idle`.
//!
//! Following the paper's footnote, the per-bank split is accumulated as
//! integer bank-cycle counters and divided by the bank count during
//! post-processing, which keeps the hot loop in integer arithmetic.

use serde::{Deserialize, Serialize};

use dramstack_dram::{BankActivity, BlockReason, BurstKind, CycleView};

use crate::components::BwComponent;
use crate::stack::BandwidthStack;

/// Online bandwidth-stack accountant for one memory channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandwidthAccountant {
    n_banks: usize,
    /// Peak bandwidth in milli-GB/s to keep the struct `Eq`-friendly.
    peak_milli_gbps: u64,
    /// Full-cycle counters.
    read: u64,
    write: u64,
    refresh: u64,
    constraints_full: u64,
    idle: u64,
    /// Bank-cycle counters (divided by `n_banks` in post-processing).
    precharge_bank: u64,
    activate_bank: u64,
    constraints_bank: u64,
    bank_idle_bank: u64,
    total_cycles: u64,
}

impl BandwidthAccountant {
    /// Creates an accountant for a channel with `n_banks` banks and the
    /// given peak bandwidth in GB/s.
    ///
    /// # Panics
    ///
    /// Panics if `n_banks` is zero or `peak_gbps` is not positive.
    pub fn new(n_banks: usize, peak_gbps: f64) -> Self {
        assert!(n_banks > 0, "need at least one bank");
        assert!(peak_gbps > 0.0, "peak bandwidth must be positive");
        BandwidthAccountant {
            n_banks,
            peak_milli_gbps: (peak_gbps * 1000.0).round() as u64,
            read: 0,
            write: 0,
            refresh: 0,
            constraints_full: 0,
            idle: 0,
            precharge_bank: 0,
            activate_bank: 0,
            constraints_bank: 0,
            bank_idle_bank: 0,
            total_cycles: 0,
        }
    }

    /// Number of cycles accounted so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Classifies one cycle.
    pub fn account(&mut self, view: &CycleView) {
        self.account_span(view, 1);
    }

    /// Classifies `span` identical cycles in one step — the paper's
    /// span-based speedup for homogeneous stretches (e.g. a whole burst or
    /// an idle gap).
    pub fn account_span(&mut self, view: &CycleView, span: u64) {
        self.total_cycles += span;
        // 1. Useful cycles: data moving on the channel.
        match view.bus {
            Some(BurstKind::Read) => {
                self.read += span;
                return;
            }
            Some(BurstKind::Write) => {
                self.write += span;
                return;
            }
            None => {}
        }
        // 2. Refresh blocks the whole chip.
        if view.refreshing {
            self.refresh += span;
            return;
        }
        // 3. Per-bank split when any bank is occupied.
        if view.any_bank_active() {
            for b in &view.banks {
                match b {
                    BankActivity::Precharging => self.precharge_bank += span,
                    BankActivity::Activating => self.activate_bank += span,
                    BankActivity::Constrained => self.constraints_bank += span,
                    BankActivity::Idle => self.bank_idle_bank += span,
                }
            }
            return;
        }
        // 4. All banks idle: rank/channel-level explanation.
        match view.rank_block {
            BlockReason::None => self.idle += span,
            BlockReason::Refresh => self.refresh += span,
            _ => self.constraints_full += span,
        }
    }

    /// Accounts `span` fully idle cycles — bit-identical to
    /// `account_span(&CycleView::idle(n_banks), span)` but without
    /// touching (or needing) a view at all. This is the branch-free fast
    /// path behind the simulator's idle-cycle fast-forward.
    #[inline]
    pub fn account_idle(&mut self, span: u64) {
        self.total_cycles += span;
        self.idle += span;
    }

    /// Produces the finished stack (post-processing step: bank-cycle
    /// counters divided by the bank count).
    pub fn stack(&self) -> BandwidthStack {
        let n = self.n_banks as f64;
        let mut s = BandwidthStack::empty(self.peak_milli_gbps as f64 / 1000.0);
        s.weights[BwComponent::Read.index()] = self.read as f64;
        s.weights[BwComponent::Write.index()] = self.write as f64;
        s.weights[BwComponent::Refresh.index()] = self.refresh as f64;
        s.weights[BwComponent::Precharge.index()] = self.precharge_bank as f64 / n;
        s.weights[BwComponent::Activate.index()] = self.activate_bank as f64 / n;
        s.weights[BwComponent::Constraints.index()] =
            self.constraints_full as f64 + self.constraints_bank as f64 / n;
        s.weights[BwComponent::BankIdle.index()] = self.bank_idle_bank as f64 / n;
        s.weights[BwComponent::Idle.index()] = self.idle as f64;
        s.total_cycles = self.total_cycles;
        s
    }

    /// Returns the stack accumulated since the last call and resets the
    /// counters — the through-time sampling primitive.
    pub fn take_sample(&mut self) -> BandwidthStack {
        let s = self.stack();
        *self = BandwidthAccountant::new(self.n_banks, self.peak_milli_gbps as f64 / 1000.0);
        s
    }
}

/// Ablation baseline: charges each lost cycle *entirely* to the first
/// occupied bank's activity, with no per-bank split and therefore no
/// bank-idle component.
///
/// This is the "obvious" accounting the paper argues against: it hides
/// unused bank parallelism (everything becomes precharge/activate/
/// constraints), so a workload with terrible bank interleaving looks the
/// same as one with perfect interleaving. The `ablation_accounting` bench
/// contrasts the two on the same simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirstCauseAccountant {
    inner: BandwidthAccountant,
}

impl FirstCauseAccountant {
    /// Creates an accountant with the same parameters as
    /// [`BandwidthAccountant::new`].
    pub fn new(n_banks: usize, peak_gbps: f64) -> Self {
        FirstCauseAccountant {
            inner: BandwidthAccountant::new(n_banks, peak_gbps),
        }
    }

    /// Classifies one cycle, whole-cycle-to-first-cause.
    pub fn account(&mut self, view: &CycleView) {
        self.inner.total_cycles += 1;
        match view.bus {
            Some(BurstKind::Read) => {
                self.inner.read += 1;
                return;
            }
            Some(BurstKind::Write) => {
                self.inner.write += 1;
                return;
            }
            None => {}
        }
        if view.refreshing {
            self.inner.refresh += 1;
            return;
        }
        // First occupied bank wins the whole cycle. Bank-cycle counters are
        // bumped by the full bank count so the post-processing division
        // yields whole cycles.
        let n = self.inner.n_banks as u64;
        for b in &view.banks {
            match b {
                BankActivity::Precharging => {
                    self.inner.precharge_bank += n;
                    return;
                }
                BankActivity::Activating => {
                    self.inner.activate_bank += n;
                    return;
                }
                BankActivity::Constrained => {
                    self.inner.constraints_bank += n;
                    return;
                }
                BankActivity::Idle => {}
            }
        }
        match view.rank_block {
            BlockReason::None => self.inner.idle += 1,
            BlockReason::Refresh => self.inner.refresh += 1,
            _ => self.inner.constraints_full += 1,
        }
    }

    /// Produces the finished stack.
    pub fn stack(&self) -> BandwidthStack {
        self.inner.stack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_dram::BankActivity as BA;

    fn acc() -> BandwidthAccountant {
        BandwidthAccountant::new(16, 19.2)
    }

    #[test]
    fn bus_cycles_are_useful() {
        let mut a = acc();
        let mut v = CycleView::idle(16);
        v.bus = Some(BurstKind::Read);
        a.account(&v);
        v.bus = Some(BurstKind::Write);
        a.account(&v);
        let s = a.stack();
        assert!((s.fraction(BwComponent::Read) - 0.5).abs() < 1e-12);
        assert!((s.fraction(BwComponent::Write) - 0.5).abs() < 1e-12);
        assert!(s.is_consistent());
    }

    #[test]
    fn refresh_has_priority_over_banks() {
        let mut a = acc();
        let mut v = CycleView::idle(16);
        v.refreshing = true;
        v.banks[0] = BA::Precharging; // should be ignored
        a.account(&v);
        let s = a.stack();
        assert!((s.fraction(BwComponent::Refresh) - 1.0).abs() < 1e-12);
        assert_eq!(s.fraction(BwComponent::Precharge), 0.0);
    }

    #[test]
    fn per_bank_split_matches_paper_example() {
        // One bank activating, one precharging, two constrained, twelve
        // idle: weights 1/16 each.
        let mut a = acc();
        let mut v = CycleView::idle(16);
        v.banks[0] = BA::Activating;
        v.banks[1] = BA::Precharging;
        v.banks[2] = BA::Constrained;
        v.banks[3] = BA::Constrained;
        a.account(&v);
        let s = a.stack();
        assert!((s.fraction(BwComponent::Activate) - 1.0 / 16.0).abs() < 1e-12);
        assert!((s.fraction(BwComponent::Precharge) - 1.0 / 16.0).abs() < 1e-12);
        assert!((s.fraction(BwComponent::Constraints) - 2.0 / 16.0).abs() < 1e-12);
        assert!((s.fraction(BwComponent::BankIdle) - 12.0 / 16.0).abs() < 1e-12);
        assert!(s.is_consistent());
    }

    #[test]
    fn seq_1c_bank_group_constraint_split() {
        // The paper's sequential 1-core case: a tCCD_L-blocked bank group
        // (4 banks constrained) with the other 12 idle, for a sixth of the
        // time, yields constraints ≈ 0.8 GB/s and bank-idle ≈ 2.4 GB/s.
        let mut a = acc();
        let mut v = CycleView::idle(16);
        for i in 0..4 {
            v.banks[i] = BA::Constrained;
        }
        v.has_pending = true;
        // 2 of every 12 cycles blocked like this, 4 transfer, 6 idle.
        let idle = CycleView::idle(16);
        let mut read = CycleView::idle(16);
        read.bus = Some(BurstKind::Read);
        for _ in 0..1000 {
            a.account_span(&read, 4);
            a.account_span(&v, 2);
            a.account_span(&idle, 6);
        }
        let s = a.stack();
        assert!((s.gbps(BwComponent::Read) - 6.4).abs() < 0.01);
        assert!((s.gbps(BwComponent::Constraints) - 0.8).abs() < 0.01);
        assert!((s.gbps(BwComponent::BankIdle) - 2.4).abs() < 0.01);
        assert!((s.gbps(BwComponent::Idle) - 9.6).abs() < 0.01);
        assert!(s.is_consistent());
    }

    #[test]
    fn all_idle_with_rank_block_charges_constraints() {
        let mut a = acc();
        let mut v = CycleView::idle(16);
        v.rank_block = BlockReason::WtrShort;
        v.has_pending = true;
        a.account(&v);
        assert!((a.stack().fraction(BwComponent::Constraints) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn refresh_drain_charges_refresh() {
        let mut a = acc();
        let mut v = CycleView::idle(16);
        v.rank_block = BlockReason::Refresh;
        a.account(&v);
        assert!((a.stack().fraction(BwComponent::Refresh) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truly_idle_cycle_is_idle() {
        let mut a = acc();
        a.account(&CycleView::idle(16));
        assert!((a.stack().fraction(BwComponent::Idle) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn take_sample_resets() {
        let mut a = acc();
        let mut v = CycleView::idle(16);
        v.bus = Some(BurstKind::Read);
        a.account(&v);
        let s1 = a.take_sample();
        assert_eq!(s1.total_cycles, 1);
        assert_eq!(a.total_cycles(), 0);
        a.account(&CycleView::idle(16));
        let s2 = a.take_sample();
        assert!((s2.fraction(BwComponent::Idle) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_cause_hides_bank_idle() {
        // One activating bank, 15 idle: the paper's split reports mostly
        // bank-idle; the first-cause ablation charges everything to
        // activate.
        let mut split = acc();
        let mut first = FirstCauseAccountant::new(16, 19.2);
        let mut v = CycleView::idle(16);
        v.banks[3] = BA::Activating;
        split.account(&v);
        first.account(&v);
        let s = split.stack();
        let f = first.stack();
        assert!((s.fraction(BwComponent::Activate) - 1.0 / 16.0).abs() < 1e-12);
        assert!((s.fraction(BwComponent::BankIdle) - 15.0 / 16.0).abs() < 1e-12);
        assert!((f.fraction(BwComponent::Activate) - 1.0).abs() < 1e-12);
        assert_eq!(f.fraction(BwComponent::BankIdle), 0.0);
        assert!(f.is_consistent());
    }

    #[test]
    fn first_cause_agrees_on_bus_refresh_idle() {
        let mut split = acc();
        let mut first = FirstCauseAccountant::new(16, 19.2);
        let mut busy = CycleView::idle(16);
        busy.bus = Some(BurstKind::Write);
        let mut refresh = CycleView::idle(16);
        refresh.refreshing = true;
        for v in [&busy, &refresh, &CycleView::idle(16)] {
            split.account(v);
            first.account(v);
        }
        assert_eq!(split.stack(), first.stack());
    }

    #[test]
    fn account_idle_equals_idle_view_span() {
        let mut a1 = acc();
        let mut a2 = acc();
        a1.account_span(&CycleView::idle(16), 1234);
        a2.account_idle(1234);
        assert_eq!(a1, a2);
        assert_eq!(a1.stack(), a2.stack());
    }

    #[test]
    fn span_equals_repeated_single_cycles() {
        let mut a1 = acc();
        let mut a2 = acc();
        let mut v = CycleView::idle(16);
        v.banks[5] = BA::Activating;
        for _ in 0..7 {
            a1.account(&v);
        }
        a2.account_span(&v, 7);
        assert_eq!(a1.stack(), a2.stack());
    }
}
