//! Latency-stack accounting (Section V of the paper).
//!
//! Unlike the bandwidth stack, latency stacks need no overlap reasoning:
//! the components are measured per read request by the memory controller
//! ([`LatencyBreakdown`]) and simply averaged here. Only reads are
//! considered — writes do not stall cores.

use serde::{Deserialize, Serialize};

use dramstack_memctrl::LatencyBreakdown;

use crate::components::LatComponent;

/// Online accumulator of per-read latency breakdowns.
///
/// # Example
///
/// ```
/// use dramstack_core::{LatencyAccountant, LatComponent};
/// use dramstack_memctrl::LatencyBreakdown;
///
/// let mut acc = LatencyAccountant::new();
/// acc.add(&LatencyBreakdown { base_cntlr: 30, base_dram: 21, queue: 9, ..Default::default() });
/// let stack = acc.stack(0.8333); // ns per DDR4-2400 cycle
/// assert_eq!(stack.reads, 1);
/// assert!((stack.total_ns() - 60.0 * 0.8333).abs() < 1e-9);
/// assert!(stack.ns(LatComponent::Queue) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyAccountant {
    sums: [u64; LatComponent::COUNT],
    count: u64,
}

impl LatencyAccountant {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one completed read.
    pub fn add(&mut self, b: &LatencyBreakdown) {
        self.sums[LatComponent::BaseCntlr.index()] += b.base_cntlr;
        self.sums[LatComponent::BaseDram.index()] += b.base_dram;
        self.sums[LatComponent::PreAct.index()] += b.preact;
        self.sums[LatComponent::Refresh.index()] += b.refresh;
        self.sums[LatComponent::WriteBurst.index()] += b.writeburst;
        self.sums[LatComponent::Queue.index()] += b.queue;
        self.count += 1;
    }

    /// Number of reads accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The finished stack, converting cycles to nanoseconds with
    /// `cycle_ns` (e.g. 0.8333 for DDR4-2400).
    pub fn stack(&self, cycle_ns: f64) -> LatencyStack {
        let mut avg_ns = [0.0; LatComponent::COUNT];
        if self.count > 0 {
            for (avg, sum) in avg_ns.iter_mut().zip(self.sums.iter()) {
                *avg = *sum as f64 / self.count as f64 * cycle_ns;
            }
        }
        LatencyStack {
            avg_ns,
            reads: self.count,
        }
    }

    /// Returns the stack accumulated since the last call and resets.
    pub fn take_sample(&mut self, cycle_ns: f64) -> LatencyStack {
        let s = self.stack(cycle_ns);
        *self = LatencyAccountant::new();
        s
    }
}

/// A finished latency stack: average per-read latency split into
/// components, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStack {
    /// Average nanoseconds per component, indexed by
    /// [`LatComponent::index`].
    pub avg_ns: [f64; LatComponent::COUNT],
    /// Number of reads averaged.
    pub reads: u64,
}

impl LatencyStack {
    /// An empty stack (no reads observed).
    pub fn empty() -> Self {
        LatencyStack {
            avg_ns: [0.0; LatComponent::COUNT],
            reads: 0,
        }
    }

    /// Average latency of component `c` in nanoseconds.
    pub fn ns(&self, c: LatComponent) -> f64 {
        self.avg_ns[c.index()]
    }

    /// Total average read latency in nanoseconds (the top of the stack).
    pub fn total_ns(&self) -> f64 {
        self.avg_ns.iter().sum()
    }

    /// The paper's `base` component: controller + device minimum.
    pub fn base_ns(&self) -> f64 {
        self.ns(LatComponent::BaseCntlr) + self.ns(LatComponent::BaseDram)
    }

    /// `(component, ns)` pairs in stack order.
    pub fn rows(&self) -> Vec<(LatComponent, f64)> {
        LatComponent::ALL.iter().map(|&c| (c, self.ns(c))).collect()
    }

    /// Merges a stack measured over `self.reads` reads with another —
    /// a read-count-weighted average.
    pub fn merge(&mut self, other: &LatencyStack) {
        let total = self.reads + other.reads;
        if total == 0 {
            return;
        }
        for i in 0..LatComponent::COUNT {
            self.avg_ns[i] = (self.avg_ns[i] * self.reads as f64
                + other.avg_ns[i] * other.reads as f64)
                / total as f64;
        }
        self.reads = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(q: u64) -> LatencyBreakdown {
        LatencyBreakdown {
            base_cntlr: 12,
            base_dram: 21,
            preact: 17,
            refresh: 0,
            writeburst: 10,
            queue: q,
        }
    }

    #[test]
    fn average_over_reads() {
        let mut acc = LatencyAccountant::new();
        acc.add(&breakdown(10));
        acc.add(&breakdown(30));
        let s = acc.stack(1.0);
        assert_eq!(acc.count(), 2);
        assert!((s.ns(LatComponent::Queue) - 20.0).abs() < 1e-12);
        assert!((s.ns(LatComponent::BaseDram) - 21.0).abs() < 1e-12);
        assert!((s.total_ns() - (12.0 + 21.0 + 17.0 + 10.0 + 20.0)).abs() < 1e-12);
        assert!((s.base_ns() - 33.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_ns_scaling() {
        let mut acc = LatencyAccountant::new();
        acc.add(&breakdown(0));
        let s = acc.stack(0.8333);
        assert!((s.ns(LatComponent::BaseCntlr) - 12.0 * 0.8333).abs() < 1e-9);
    }

    #[test]
    fn empty_stack_is_zero() {
        let s = LatencyAccountant::new().stack(0.8333);
        assert_eq!(s.total_ns(), 0.0);
        assert_eq!(s.reads, 0);
    }

    #[test]
    fn take_sample_resets() {
        let mut acc = LatencyAccountant::new();
        acc.add(&breakdown(0));
        let s = acc.take_sample(1.0);
        assert_eq!(s.reads, 1);
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn merge_weights_by_read_count() {
        let mut a = LatencyStack::empty();
        a.avg_ns[LatComponent::Queue.index()] = 100.0;
        a.reads = 1;
        let mut b = LatencyStack::empty();
        b.avg_ns[LatComponent::Queue.index()] = 10.0;
        b.reads = 9;
        a.merge(&b);
        assert_eq!(a.reads, 10);
        assert!((a.ns(LatComponent::Queue) - 19.0).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LatencyStack::empty();
        a.avg_ns[0] = 5.0;
        a.reads = 3;
        let before = a;
        a.merge(&LatencyStack::empty());
        assert_eq!(a, before);
    }
}
