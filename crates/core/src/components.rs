//! The component sets of the two stacks.

use serde::{Deserialize, Serialize};

/// Bandwidth-stack components, bottom (useful) to top (idle), matching the
/// order of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BwComponent {
    /// Cycles transferring read data — achieved read bandwidth.
    Read,
    /// Cycles transferring write data — achieved write bandwidth.
    Write,
    /// Cycles lost to refresh (tRFC windows and refresh drains).
    Refresh,
    /// Bank share of cycles spent precharging.
    Precharge,
    /// Bank share of cycles spent activating.
    Activate,
    /// Cycles (or bank shares) lost to timing constraints: tCCD, tWTR,
    /// read/write turnaround, tFAW, tRRD, CAS latency waits.
    Constraints,
    /// Bank share of cycles where this bank sat idle while others worked —
    /// unused bank parallelism.
    BankIdle,
    /// Cycles where the whole chip was idle with nothing to do.
    Idle,
}

impl BwComponent {
    /// All components in stack order.
    pub const ALL: [BwComponent; 8] = [
        BwComponent::Read,
        BwComponent::Write,
        BwComponent::Refresh,
        BwComponent::Precharge,
        BwComponent::Activate,
        BwComponent::Constraints,
        BwComponent::BankIdle,
        BwComponent::Idle,
    ];

    /// Number of components.
    pub const COUNT: usize = 8;

    /// Stable index into component arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label used in figure output (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            BwComponent::Read => "read",
            BwComponent::Write => "write",
            BwComponent::Refresh => "refresh",
            BwComponent::Precharge => "precharge",
            BwComponent::Activate => "activate",
            BwComponent::Constraints => "constraints",
            BwComponent::BankIdle => "bank_idle",
            BwComponent::Idle => "idle",
        }
    }

    /// Whether this component counts as achieved (useful) bandwidth.
    pub fn is_useful(self) -> bool {
        matches!(self, BwComponent::Read | BwComponent::Write)
    }

    /// Whether this component represents unused capacity that shrinks as
    /// traffic grows (dropped by the stack extrapolation).
    pub fn is_idle_kind(self) -> bool {
        matches!(self, BwComponent::BankIdle | BwComponent::Idle)
    }
}

impl std::fmt::Display for BwComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Latency-stack components, bottom to top, matching the paper's Fig. 7
/// legend (`base` split into controller and device parts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LatComponent {
    /// Fixed controller pipeline overhead.
    BaseCntlr,
    /// Minimum device read time (CL + burst).
    BaseDram,
    /// Precharge/activate penalty of page misses.
    PreAct,
    /// Waiting for refreshes.
    Refresh,
    /// Waiting for write-buffer drains.
    WriteBurst,
    /// Residual queueing (other requests, timing constraints).
    Queue,
}

impl LatComponent {
    /// All components in stack order.
    pub const ALL: [LatComponent; 6] = [
        LatComponent::BaseCntlr,
        LatComponent::BaseDram,
        LatComponent::PreAct,
        LatComponent::Refresh,
        LatComponent::WriteBurst,
        LatComponent::Queue,
    ];

    /// Number of components.
    pub const COUNT: usize = 6;

    /// Stable index into component arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            LatComponent::BaseCntlr => "base-cntlr",
            LatComponent::BaseDram => "base-dram",
            LatComponent::PreAct => "act/pre",
            LatComponent::Refresh => "refresh",
            LatComponent::WriteBurst => "writeburst",
            LatComponent::Queue => "queue",
        }
    }
}

impl std::fmt::Display for LatComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, c) in BwComponent::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, c) in LatComponent::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn classification_flags() {
        assert!(BwComponent::Read.is_useful());
        assert!(BwComponent::Write.is_useful());
        assert!(!BwComponent::Refresh.is_useful());
        assert!(BwComponent::Idle.is_idle_kind());
        assert!(BwComponent::BankIdle.is_idle_kind());
        assert!(!BwComponent::Constraints.is_idle_kind());
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = BwComponent::ALL.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), BwComponent::COUNT);
    }
}
