//! The bandwidth-stack result type.

use serde::{Deserialize, Serialize};

use crate::components::BwComponent;

/// A finished bandwidth stack: per-component weighted cycle counts over a
/// known number of total cycles, convertible to GB/s.
///
/// Invariant: the component weights sum to `total_cycles` (each accounted
/// cycle distributes exactly weight 1 over the components), so the GB/s
/// components always sum to the peak bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthStack {
    /// Weighted cycles per component, indexed by [`BwComponent::index`].
    pub weights: [f64; BwComponent::COUNT],
    /// Number of cycles accounted.
    pub total_cycles: u64,
    /// Peak channel bandwidth in GB/s this stack is normalized against.
    pub peak_gbps: f64,
}

impl BandwidthStack {
    /// An empty stack for a channel with the given peak bandwidth.
    pub fn empty(peak_gbps: f64) -> Self {
        BandwidthStack {
            weights: [0.0; BwComponent::COUNT],
            total_cycles: 0,
            peak_gbps,
        }
    }

    /// Fraction of all cycles attributed to `c`, in `[0, 1]`.
    pub fn fraction(&self, c: BwComponent) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.weights[c.index()] / self.total_cycles as f64
    }

    /// Bandwidth attributed to `c`, in GB/s.
    pub fn gbps(&self, c: BwComponent) -> f64 {
        self.fraction(c) * self.peak_gbps
    }

    /// Achieved bandwidth: read + write components, in GB/s.
    pub fn achieved_gbps(&self) -> f64 {
        self.gbps(BwComponent::Read) + self.gbps(BwComponent::Write)
    }

    /// The peak bandwidth (the top of the stack), in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.peak_gbps
    }

    /// Sum of all components in GB/s — equals the peak for any non-empty,
    /// correctly accounted stack.
    pub fn total_gbps(&self) -> f64 {
        BwComponent::ALL.iter().map(|&c| self.gbps(c)).sum()
    }

    /// Merges another stack (e.g. from a second channel or a later sample)
    /// into this one.
    ///
    /// # Panics
    ///
    /// Panics if the peak bandwidths differ.
    pub fn merge(&mut self, other: &BandwidthStack) {
        assert!(
            (self.peak_gbps - other.peak_gbps).abs() < 1e-9,
            "cannot merge stacks with different peak bandwidths"
        );
        for i in 0..BwComponent::COUNT {
            self.weights[i] += other.weights[i];
        }
        self.total_cycles += other.total_cycles;
    }

    /// `(component, GB/s)` pairs in stack order — convenient for rendering.
    pub fn rows(&self) -> Vec<(BwComponent, f64)> {
        BwComponent::ALL
            .iter()
            .map(|&c| (c, self.gbps(c)))
            .collect()
    }

    /// Aggregates per-channel stacks into one system-level stack whose
    /// peak is the sum of the channel peaks (the paper: "we construct one
    /// stack per memory controller/channel, which can be aggregated
    /// afterwards").
    ///
    /// Component fractions are averaged over channels, so `gbps()` yields
    /// system-level GB/s and the stack still sums to the (system) peak.
    ///
    /// # Panics
    ///
    /// Panics if `stacks` is empty or the channels disagree on peak
    /// bandwidth or cycle count.
    pub fn aggregate_channels(stacks: &[BandwidthStack]) -> BandwidthStack {
        let refs: Vec<&BandwidthStack> = stacks.iter().collect();
        Self::aggregate_channel_refs(&refs)
    }

    /// By-reference variant of [`aggregate_channels`](Self::aggregate_channels)
    /// — lets callers aggregate stacks that live inside larger structures
    /// (e.g. per-channel `TimeSample` windows) without cloning each stack
    /// first.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as `aggregate_channels`.
    pub fn aggregate_channel_refs(stacks: &[&BandwidthStack]) -> BandwidthStack {
        assert!(!stacks.is_empty(), "need at least one channel stack");
        let first = stacks[0];
        let n = stacks.len() as f64;
        let mut out = BandwidthStack::empty(first.peak_gbps * n);
        out.total_cycles = first.total_cycles;
        for s in stacks {
            assert!(
                (s.peak_gbps - first.peak_gbps).abs() < 1e-9,
                "channels must share a peak bandwidth"
            );
            assert_eq!(
                s.total_cycles, first.total_cycles,
                "channels must cover equal time"
            );
            for i in 0..BwComponent::COUNT {
                out.weights[i] += s.weights[i] / n;
            }
        }
        out
    }

    /// Consistency check: weights are non-negative and sum to the cycle
    /// count (within floating-point tolerance).
    pub fn is_consistent(&self) -> bool {
        let sum: f64 = self.weights.iter().sum();
        self.weights.iter().all(|w| *w >= -1e-9)
            && (sum - self.total_cycles as f64).abs() < 1e-6 * (self.total_cycles.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BandwidthStack {
        let mut s = BandwidthStack::empty(19.2);
        s.weights[BwComponent::Read.index()] = 300.0;
        s.weights[BwComponent::Write.index()] = 100.0;
        s.weights[BwComponent::Refresh.index()] = 50.0;
        s.weights[BwComponent::Idle.index()] = 550.0;
        s.total_cycles = 1000;
        s
    }

    #[test]
    fn fractions_and_gbps() {
        let s = sample();
        assert!((s.fraction(BwComponent::Read) - 0.3).abs() < 1e-12);
        assert!((s.gbps(BwComponent::Read) - 5.76).abs() < 1e-9);
        assert!((s.achieved_gbps() - 7.68).abs() < 1e-9);
        assert!((s.total_gbps() - 19.2).abs() < 1e-9);
        assert!(s.is_consistent());
    }

    #[test]
    fn paper_postprocessing_example() {
        // Paper Section IV: 1 M cycles at 1.2 GHz, 100 k precharge cycles,
        // 16 B per cycle → 1.92 GB/s precharge component.
        let mut s = BandwidthStack::empty(19.2);
        s.weights[BwComponent::Precharge.index()] = 100_000.0;
        s.weights[BwComponent::Idle.index()] = 900_000.0;
        s.total_cycles = 1_000_000;
        assert!((s.gbps(BwComponent::Precharge) - 1.92).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total_cycles, 2000);
        assert!((a.achieved_gbps() - 7.68).abs() < 1e-9);
        assert!(a.is_consistent());
    }

    #[test]
    #[should_panic(expected = "different peak")]
    fn merge_rejects_mismatched_peak() {
        let mut a = sample();
        let b = BandwidthStack::empty(25.6);
        a.merge(&b);
    }

    #[test]
    fn empty_stack_is_all_zero() {
        let s = BandwidthStack::empty(19.2);
        assert_eq!(s.achieved_gbps(), 0.0);
        assert_eq!(s.fraction(BwComponent::Idle), 0.0);
        assert!(s.is_consistent());
    }

    #[test]
    fn aggregate_channels_sums_peaks_and_bandwidth() {
        // Channel A: 50 % read; channel B: fully idle.
        let mut a = BandwidthStack::empty(19.2);
        a.weights[BwComponent::Read.index()] = 500.0;
        a.weights[BwComponent::Idle.index()] = 500.0;
        a.total_cycles = 1000;
        let mut b = BandwidthStack::empty(19.2);
        b.weights[BwComponent::Idle.index()] = 1000.0;
        b.total_cycles = 1000;
        let sys = BandwidthStack::aggregate_channels(&[a.clone(), b]);
        assert!((sys.peak_gbps() - 38.4).abs() < 1e-9);
        // System read bandwidth = channel A's 9.6 GB/s.
        assert!((sys.gbps(BwComponent::Read) - 9.6).abs() < 1e-9);
        assert!((sys.total_gbps() - 38.4).abs() < 1e-9);
        assert!(sys.is_consistent());
        // Single-channel aggregation is the identity.
        let same = BandwidthStack::aggregate_channels(&[a.clone()]);
        assert_eq!(same, a);
        // The by-ref variant agrees with the by-value one.
        let by_ref = BandwidthStack::aggregate_channel_refs(&[&a]);
        assert_eq!(by_ref, a);
    }

    #[test]
    #[should_panic(expected = "equal time")]
    fn aggregate_rejects_mismatched_cycles() {
        let a = BandwidthStack::empty(19.2);
        let mut b = BandwidthStack::empty(19.2);
        b.total_cycles = 5;
        let _ = BandwidthStack::aggregate_channels(&[a, b]);
    }

    #[test]
    fn rows_are_in_stack_order() {
        let s = sample();
        let rows = s.rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].0, BwComponent::Read);
        assert_eq!(rows[7].0, BwComponent::Idle);
    }
}
