//! Offline bandwidth-stack construction from a timed command trace.
//!
//! Section IV of the paper: "a command trace (including timings) can be
//! collected from the hardware or a DRAM simulator, and the bandwidth
//! stack can be constructed offline from this trace using the accounting
//! mechanism described in this section."
//!
//! The analyzer replays the trace into a fresh [`DramDevice`] (validating
//! every command against the full timing model — a malformed trace is
//! rejected, not mis-accounted) and classifies every cycle with the same
//! hierarchical rules as the online accountant. The only information a
//! command trace lacks is request *arrival* times, so blocked-request
//! analysis is approximated from the next command in the trace, exactly
//! as the paper describes ("analyzing the commands before that first
//! channel transfer to find the events that prevented a transfer"):
//! pre/act, refresh, read/write and bank-occupancy attribution are exact;
//! the boundary between `constraints`/`bank-idle` and `idle` is inferred.
//!
//! Latency stacks cannot be reconstructed from command traces (they need
//! per-request arrival times); use the online [`LatencyAccountant`]
//! (crate::LatencyAccountant) for those.

use std::error::Error;
use std::fmt;

use dramstack_dram::{
    BankActivity, BankState, BlockLevel, BlockReason, CommandError, Cycle, CycleView, DeviceConfig,
    DramDevice, TimedCommand,
};

use crate::bandwidth::BandwidthAccountant;
use crate::stack::BandwidthStack;

/// Error from offline trace analysis.
#[derive(Debug)]
pub enum OfflineError {
    /// Commands are not sorted by issue cycle.
    TraceNotSorted {
        /// Index of the out-of-order record.
        index: usize,
    },
    /// The device rejected a command — the trace is inconsistent with the
    /// timing model.
    CommandRejected {
        /// The offending record.
        cmd: TimedCommand,
        /// The device's reason.
        source: CommandError,
    },
}

impl fmt::Display for OfflineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfflineError::TraceNotSorted { index } => {
                write!(f, "trace not sorted by cycle at record {index}")
            }
            OfflineError::CommandRejected { cmd, source } => {
                write!(
                    f,
                    "device rejected `{}` at cycle {}: {source}",
                    cmd.cmd, cmd.at
                )
            }
        }
    }
}

impl Error for OfflineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OfflineError::CommandRejected { source, .. } => Some(source),
            OfflineError::TraceNotSorted { .. } => None,
        }
    }
}

/// Builds the bandwidth stack of a command trace covering
/// `[0, total_cycles)`.
///
/// # Errors
///
/// Returns [`OfflineError`] if the trace is unsorted or violates the
/// timing model of `config`.
pub fn stack_from_trace(
    trace: &[TimedCommand],
    config: DeviceConfig,
    total_cycles: Cycle,
) -> Result<BandwidthStack, OfflineError> {
    for (i, w) in trace.windows(2).enumerate() {
        if w[1].at < w[0].at {
            return Err(OfflineError::TraceNotSorted { index: i + 1 });
        }
    }
    let mut device = DramDevice::new(config);
    let n_banks = config.geometry.total_banks() as usize;
    let mut acc = BandwidthAccountant::new(n_banks, config.peak_bandwidth_gbps());
    let mut view = CycleView::idle(n_banks);
    let mut next_cmd = 0usize;

    for now in 0..total_cycles {
        device.advance(now);
        while next_cmd < trace.len() && trace[next_cmd].at == now {
            let t = trace[next_cmd];
            device
                .issue(t.cmd, now)
                .map_err(|source| OfflineError::CommandRejected { cmd: t, source })?;
            next_cmd += 1;
        }
        build_offline_view(&device, trace.get(next_cmd), now, &mut view);
        acc.account(&view);
    }
    Ok(acc.stack())
}

/// Classifies one cycle from device state plus the next trace command.
fn build_offline_view(
    device: &DramDevice,
    upcoming: Option<&TimedCommand>,
    now: Cycle,
    view: &mut CycleView,
) {
    view.reset();
    view.bus = device.bus_activity(now);
    let ranks = device.geometry().ranks;
    view.refreshing = (0..ranks).any(|r| device.is_refreshing(r, now));
    view.has_pending = upcoming.is_some();

    let g = device.geometry();
    for flat in 0..g.total_banks() as usize {
        view.banks[flat] = match device.bank_state(flat, now) {
            BankState::Precharging => BankActivity::Precharging,
            BankState::Activating => BankActivity::Activating,
            _ => BankActivity::Idle,
        };
    }
    if view.bus.is_some() || view.refreshing {
        return;
    }
    // The refresh-drain window is reconstructible offline: a refresh is
    // due (the tREFI grid) but its REF has not issued yet. The online
    // controller charges these lost cycles to refresh; do the same.
    if (0..ranks).any(|r| device.refresh_due(r, now)) {
        view.rank_block = BlockReason::Refresh;
        return;
    }

    // Infer why the *next* command hasn't issued yet: if the device says it
    // could not have issued at `now` AND it did issue as soon as the
    // constraint lifted, the gap is a constraint; otherwise the request
    // simply hadn't arrived (idle).
    let Some(next) = upcoming else {
        return;
    };
    let bank = next.cmd.bank;
    let earliest = match next.cmd.kind {
        k if k.is_read() => device.earliest_read(bank, now),
        k if k.is_write() => device.earliest_write(bank, now),
        dramstack_dram::CommandKind::Activate => device.earliest_activate(bank, now),
        dramstack_dram::CommandKind::Precharge => device.earliest_precharge(bank, now),
        // Refresh gaps are handled by the refresh-due window above.
        _ => return,
    };
    if earliest.ready(now) {
        return; // could have issued: the gap is arrival time, i.e. idle
    }
    if next.at > earliest.at.saturating_add(1) {
        // It issued later than the constraint required, so the constraint
        // was not what delayed it — the request arrived late.
        return;
    }
    match earliest.reason.level() {
        BlockLevel::BankGroup => {
            for b in g.iter_banks() {
                if b.rank == bank.rank && b.bank_group == bank.bank_group {
                    let flat = g.flat_bank(b);
                    if view.banks[flat] == BankActivity::Idle {
                        view.banks[flat] = BankActivity::Constrained;
                    }
                }
            }
        }
        BlockLevel::Rank => {
            let flat = g.flat_bank(bank);
            if view.banks[flat] == BankActivity::Idle {
                view.banks[flat] = BankActivity::Constrained;
            }
            if view.rank_block == BlockReason::None {
                view.rank_block = earliest.reason;
            }
        }
        BlockLevel::Bank | BlockLevel::None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_dram::{BankAddr, Command};

    use crate::components::BwComponent;

    fn cfg() -> DeviceConfig {
        DeviceConfig::ddr4_2400()
    }

    #[test]
    fn simple_trace_produces_read_bandwidth() {
        let b = BankAddr::new(0, 0, 0);
        let t = dramstack_dram::TimingParams::ddr4_2400();
        let trace = vec![
            TimedCommand::new(0, Command::activate(b, 3)),
            TimedCommand::new(t.t_rcd, Command::read(b, 0)),
            TimedCommand::new(t.t_rcd + t.t_ccd_l, Command::read(b, 1)),
        ];
        let stack = stack_from_trace(&trace, cfg(), 200).unwrap();
        assert!(stack.is_consistent());
        // Two bursts of 4 cycles over 200 cycles.
        assert!((stack.fraction(BwComponent::Read) - 8.0 / 200.0).abs() < 1e-9);
        assert!(stack.fraction(BwComponent::Activate) > 0.0);
        // The tCCD_L gap between the reads shows up as constraints.
        assert!(stack.fraction(BwComponent::Constraints) > 0.0);
    }

    #[test]
    fn unsorted_trace_is_rejected() {
        let b = BankAddr::new(0, 0, 0);
        let trace = vec![
            TimedCommand::new(50, Command::activate(b, 3)),
            TimedCommand::new(10, Command::precharge(b)),
        ];
        let err = stack_from_trace(&trace, cfg(), 100).unwrap_err();
        assert!(matches!(err, OfflineError::TraceNotSorted { index: 1 }));
    }

    #[test]
    fn illegal_trace_is_rejected_with_reason() {
        let b = BankAddr::new(0, 0, 0);
        // Read without an open row.
        let trace = vec![TimedCommand::new(5, Command::read(b, 0))];
        let err = stack_from_trace(&trace, cfg(), 100).unwrap_err();
        assert!(matches!(err, OfflineError::CommandRejected { .. }));
        assert!(err.to_string().contains("rejected"));
        // tRCD violation.
        let trace = vec![
            TimedCommand::new(0, Command::activate(b, 1)),
            TimedCommand::new(3, Command::read(b, 0)),
        ];
        assert!(stack_from_trace(&trace, cfg(), 100).is_err());
    }

    #[test]
    fn empty_trace_is_all_idle_plus_nothing() {
        let stack = stack_from_trace(&[], cfg(), 1000).unwrap();
        assert!((stack.fraction(BwComponent::Idle) - 1.0).abs() < 1e-12);
    }
}
