//! Read-latency histograms — an extension beyond the paper's averages.
//!
//! The latency *stack* reports the average decomposition; the histogram
//! captures the distribution (tail latencies under write bursts and
//! refreshes are invisible in an average). Buckets are logarithmic with
//! four sub-steps per octave, covering ~20 ns to ~100 µs of DRAM cycles.

use serde::{Deserialize, Serialize};

use dramstack_dram::Cycle;

/// Number of histogram buckets.
const BUCKETS: usize = 64;

/// A log-bucketed histogram of read latencies (in DRAM cycles).
///
/// # Example
///
/// ```
/// use dramstack_core::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for latency in [40, 45, 50, 55, 900] {
///     h.add(latency); // one tail read among fast ones
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(50.0) < 100);
/// assert_eq!(h.percentile(100.0), 900);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    min: Cycle,
    max: Cycle,
    sum: u128,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            min: Cycle::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Bucket index for a latency: 4 sub-steps per power of two above 16
    /// cycles.
    fn bucket(latency: Cycle) -> usize {
        if latency < 16 {
            return 0;
        }
        let octave = 63 - latency.leading_zeros() as usize; // ≥ 4
        let sub = ((latency >> (octave - 2)) & 0b11) as usize;
        (((octave - 4) * 4) + sub + 1).min(BUCKETS - 1)
    }

    /// Lower bound (cycles) of bucket `i`.
    fn bucket_floor(i: usize) -> Cycle {
        if i == 0 {
            return 0;
        }
        let i = i - 1;
        let octave = i / 4 + 4;
        let sub = (i % 4) as u64;
        (1u64 << octave) + (sub << (octave - 2))
    }

    /// Records one read latency.
    pub fn add(&mut self, latency: Cycle) {
        self.counts[Self::bucket(latency)] += 1;
        self.total += 1;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        self.sum += u128::from(latency);
    }

    /// Number of reads recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded latency (cycles); 0 when empty.
    pub fn min(&self) -> Cycle {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded latency (cycles).
    pub fn max(&self) -> Cycle {
        self.max
    }

    /// Mean latency in cycles; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Approximate `p`-th percentile (0–100) in cycles, resolved to the
    /// bucket floor.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Cycle {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.total == 0 {
            return 0;
        }
        let rank = (p / 100.0 * self.total as f64).ceil().max(1.0) as u64;
        if rank >= self.total {
            return self.max;
        }
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// `(bucket_floor_cycles, count)` pairs for non-empty buckets.
    pub fn buckets(&self) -> Vec<(Cycle, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (Self::bucket_floor(i), *c))
            .collect()
    }

    /// Captures the growth since `prev` as a sparse per-bucket patch.
    ///
    /// The histogram is append-only (counts only grow), so the patch is
    /// the per-bucket count increase plus the absolute scalar tails
    /// (total/min/max/sum). `prev` must be an earlier state of this same
    /// histogram; a bucket that somehow shrank saturates to zero growth
    /// and the scalar fields still describe `self` exactly.
    pub fn delta_since(&self, prev: &LatencyHistogram) -> HistogramDelta {
        let mut bucket_indices = Vec::new();
        let mut bucket_added = Vec::new();
        for (i, (&now, &before)) in self.counts.iter().zip(&prev.counts).enumerate() {
            let grew = now.saturating_sub(before);
            if grew > 0 {
                bucket_indices.push(i as u32);
                bucket_added.push(grew);
            }
        }
        HistogramDelta {
            bucket_indices,
            bucket_added,
            total: self.total,
            min: self.min,
            max: self.max,
            sum: self.sum,
        }
    }

    /// Replays a patch captured by [`delta_since`](Self::delta_since),
    /// advancing this histogram from the patch's base state to the state
    /// it was captured at.
    ///
    /// # Errors
    ///
    /// Rejects structurally broken patches (index out of range, ragged
    /// index/count columns) and patches that do not fit this base (the
    /// replayed bucket counts must sum to the patch's `total`) — applying
    /// a delta against the wrong base surfaces as a typed error, never as
    /// a silently wrong distribution.
    pub fn apply_delta(&mut self, delta: &HistogramDelta) -> Result<(), String> {
        if delta.bucket_indices.len() != delta.bucket_added.len() {
            return Err(format!(
                "histogram delta is ragged: {} indices vs {} counts",
                delta.bucket_indices.len(),
                delta.bucket_added.len()
            ));
        }
        if let Some(&bad) = delta
            .bucket_indices
            .iter()
            .find(|&&i| i as usize >= BUCKETS)
        {
            return Err(format!(
                "histogram delta bucket index {bad} out of range (histogram has {BUCKETS} buckets)"
            ));
        }
        let replayed: u64 =
            self.counts.iter().sum::<u64>() + delta.bucket_added.iter().sum::<u64>();
        if replayed != delta.total {
            return Err(format!(
                "histogram delta does not fit this base: replayed counts sum to {replayed}, \
                 delta expects total {}",
                delta.total
            ));
        }
        for (&i, &add) in delta.bucket_indices.iter().zip(&delta.bucket_added) {
            self.counts[i as usize] += add;
        }
        self.total = delta.total;
        self.min = delta.min;
        self.max = delta.max;
        self.sum = delta.sum;
        Ok(())
    }
}

/// A sparse patch between two states of one [`LatencyHistogram`]:
/// per-bucket count growth in two index-aligned columns plus the absolute
/// scalar tails. Long runs checkpoint this instead of re-serializing all
/// 64 buckets in every delta; an empty patch (quiet checkpoint window)
/// serializes to almost nothing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramDelta {
    /// Buckets that grew since the base (ascending indices).
    pub bucket_indices: Vec<u32>,
    /// Count growth per entry of `bucket_indices`.
    pub bucket_added: Vec<u64>,
    /// Absolute read count after replay.
    pub total: u64,
    /// Absolute minimum latency after replay (raw field: `Cycle::MAX`
    /// while the histogram is empty).
    pub min: Cycle,
    /// Absolute maximum latency after replay.
    pub max: Cycle,
    /// Absolute latency sum after replay.
    pub sum: u128,
}

impl HistogramDelta {
    /// Number of buckets the patch touches.
    pub fn touched(&self) -> usize {
        self.bucket_indices.len()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn basic_stats() {
        let mut h = LatencyHistogram::new();
        for v in [40u64, 50, 60, 400] {
            h.add(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 40);
        assert_eq!(h.max(), 400);
        assert!((h.mean() - 137.5).abs() < 1e-9);
        // Median lands in the 40–60 region, p100 at the max.
        let p50 = h.percentile(50.0);
        assert!((40..=60).contains(&p50), "p50 {p50}");
        assert_eq!(h.percentile(100.0), 400);
    }

    #[test]
    fn delta_roundtrip_matches_direct_state() {
        let mut base = LatencyHistogram::new();
        for v in [40u64, 50, 60] {
            base.add(v);
        }
        let mut grown = base.clone();
        for v in [45u64, 900, 40, 1_000_000] {
            grown.add(v);
        }
        let delta = grown.delta_since(&base);
        // Sparse: only the buckets that grew are listed.
        assert!(delta.touched() < 64);
        assert!(delta.touched() >= 2);
        let mut replayed = base.clone();
        replayed.apply_delta(&delta).unwrap();
        assert_eq!(replayed, grown);
        assert_eq!(replayed.percentile(100.0), grown.percentile(100.0));
    }

    #[test]
    fn quiet_window_delta_is_empty() {
        let mut h = LatencyHistogram::new();
        h.add(100);
        let delta = h.delta_since(&h.clone());
        assert_eq!(delta.touched(), 0);
        let mut replayed = h.clone();
        replayed.apply_delta(&delta).unwrap();
        assert_eq!(replayed, h);
    }

    #[test]
    fn delta_from_empty_base_rebuilds_everything() {
        let empty = LatencyHistogram::new();
        let mut grown = LatencyHistogram::new();
        for v in [17u64, 33, 1000, 50_000] {
            grown.add(v);
        }
        let delta = grown.delta_since(&empty);
        let mut replayed = LatencyHistogram::new();
        replayed.apply_delta(&delta).unwrap();
        assert_eq!(replayed, grown);
        assert_eq!(replayed.min(), 17);
        assert_eq!(replayed.max(), 50_000);
    }

    #[test]
    fn delta_against_wrong_base_is_rejected() {
        let mut a = LatencyHistogram::new();
        a.add(100);
        let mut b = a.clone();
        b.add(200);
        let delta = b.delta_since(&a);
        // Replaying onto a base with extra reads breaks the total check.
        let mut wrong = a.clone();
        wrong.add(999);
        let err = wrong.apply_delta(&delta).unwrap_err();
        assert!(err.contains("does not fit"), "{err}");
    }

    #[test]
    fn corrupt_deltas_are_typed_errors() {
        let mut h = LatencyHistogram::new();
        h.add(100);
        let mut ragged = h.delta_since(&LatencyHistogram::new());
        ragged.bucket_added.push(1);
        assert!(h
            .clone()
            .apply_delta(&ragged)
            .unwrap_err()
            .contains("ragged"));
        let mut oob = h.delta_since(&LatencyHistogram::new());
        oob.bucket_indices[0] = 64;
        assert!(h
            .clone()
            .apply_delta(&oob)
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        a.add(100);
        let mut b = LatencyHistogram::new();
        b.add(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.min(), 100);
    }

    proptest! {
        #[test]
        fn buckets_are_monotonic_and_ordered(values in prop::collection::vec(1u64..1_000_000, 1..200)) {
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.add(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            // Percentiles are monotone.
            let mut last = 0;
            for p in [1.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
                let v = h.percentile(p);
                prop_assert!(v >= last, "p{p}: {v} < {last}");
                last = v;
            }
            // All percentiles within [min, max].
            prop_assert!(h.percentile(50.0) >= h.min());
            prop_assert!(h.percentile(50.0) <= h.max());
            // Bucket counts sum to the total.
            let sum: u64 = h.buckets().iter().map(|(_, c)| c).sum();
            prop_assert_eq!(sum, h.count());
        }

        #[test]
        fn bucket_floor_is_le_value(v in 0u64..10_000_000) {
            let b = LatencyHistogram::bucket(v);
            prop_assert!(LatencyHistogram::bucket_floor(b) <= v.max(16));
        }
    }
}
