//! Ablation benches for the design choices called out in DESIGN.md:
//! scheduler policy, the per-bank accounting split, write-queue sizing and
//! the DRAM speed grade.

use criterion::{criterion_group, criterion_main, Criterion};

use dramstack_core::{BandwidthAccountant, BwComponent, FirstCauseAccountant};
use dramstack_dram::{CycleView, DeviceConfig};
use dramstack_memctrl::{CtrlConfig, MappingScheme, MemoryController, PagePolicy, SchedulerPolicy};
use dramstack_sim::{Simulator, SystemConfig};
use dramstack_workloads::SyntheticPattern;

fn run_with_ctrl(mut cfg: SystemConfig, pattern: SyntheticPattern, us: f64) -> f64 {
    cfg.sample_period = 12_000;
    Simulator::with_synthetic(cfg, pattern)
        .run_for_us(us)
        .achieved_gbps()
}

/// FR-FCFS vs strict FCFS on the random pattern (row hits matter).
fn ablation_scheduler(c: &mut Criterion) {
    let mk = |sched| {
        let mut cfg = SystemConfig::paper_default(4);
        cfg.ctrl.scheduler = sched;
        cfg
    };
    let frfcfs = run_with_ctrl(
        mk(SchedulerPolicy::FrFcfs),
        SyntheticPattern::random(0.2),
        25.0,
    );
    let fcfs = run_with_ctrl(
        mk(SchedulerPolicy::Fcfs),
        SyntheticPattern::random(0.2),
        25.0,
    );
    println!("ablation_scheduler: FR-FCFS {frfcfs:.2} GB/s vs FCFS {fcfs:.2} GB/s");
    assert!(frfcfs >= fcfs * 0.95, "FR-FCFS should not lose to FCFS");
    c.bench_function("ablation/scheduler_frfcfs", |b| {
        b.iter(|| {
            run_with_ctrl(
                mk(SchedulerPolicy::FrFcfs),
                SyntheticPattern::random(0.2),
                5.0,
            )
        })
    });
    c.bench_function("ablation/scheduler_fcfs", |b| {
        b.iter(|| {
            run_with_ctrl(
                mk(SchedulerPolicy::Fcfs),
                SyntheticPattern::random(0.2),
                5.0,
            )
        })
    });
}

/// The paper's 1/n per-bank split vs whole-cycle-to-first-cause: drive
/// both accountants from the same controller and compare the stacks.
fn ablation_accounting(c: &mut Criterion) {
    let run_both = |us_cycles: u64| {
        let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
        let mut view = CycleView::idle(ctrl.total_banks());
        let peak = ctrl.config().device.peak_bandwidth_gbps();
        let mut split = BandwidthAccountant::new(ctrl.total_banks(), peak);
        let mut first = FirstCauseAccountant::new(ctrl.total_banks(), peak);
        // A bursty single-bank-group row-hit stream, where the split
        // matters most.
        let mut next_addr = 0u64;
        for now in 0..us_cycles {
            if now % 12 == 0 && ctrl.can_accept_read() {
                ctrl.enqueue_read(next_addr, 0);
                next_addr += 64;
            }
            ctrl.tick(now, &mut view);
            split.account(&view);
            first.account(&view);
            ctrl.drain_completions().for_each(drop);
        }
        (split.stack(), first.stack())
    };
    let (split, first) = run_both(120_000);
    println!(
        "ablation_accounting: split bank-idle {:.2} GB/s vs first-cause bank-idle {:.2} GB/s",
        split.gbps(BwComponent::BankIdle),
        first.gbps(BwComponent::BankIdle)
    );
    // The first-cause accounting hides bank parallelism loss entirely.
    assert_eq!(first.gbps(BwComponent::BankIdle), 0.0);
    assert!(split.gbps(BwComponent::BankIdle) > 0.0);
    c.bench_function("ablation/accounting_split", |b| {
        b.iter(|| run_both(12_000).0)
    });
}

/// Write-queue watermark sweep on the store-heavy sequential pattern.
fn ablation_writeq(c: &mut Criterion) {
    for wq in [16usize, 32, 128] {
        let mut cfg = SystemConfig::paper_default(1);
        cfg.ctrl = cfg.ctrl.with_write_queue(wq);
        let bw = run_with_ctrl(cfg, SyntheticPattern::sequential(0.5), 25.0);
        println!("ablation_writeq: wq={wq} -> {bw:.2} GB/s");
    }
    c.bench_function("ablation/writeq_128", |b| {
        b.iter(|| {
            let mut cfg = SystemConfig::paper_default(1);
            cfg.ctrl = cfg.ctrl.with_write_queue(128);
            run_with_ctrl(cfg, SyntheticPattern::sequential(0.5), 5.0)
        })
    });
}

/// DDR4-2400 vs DDR4-3200: the faster grade lifts the saturated plateau.
fn ablation_ddr4_3200(c: &mut Criterion) {
    let mk = |dev: DeviceConfig| {
        let mut cfg = SystemConfig::paper_default(8);
        cfg.ctrl.device = dev;
        cfg
    };
    let slow = run_with_ctrl(
        mk(DeviceConfig::ddr4_2400()),
        SyntheticPattern::sequential(0.0),
        25.0,
    );
    let fast = run_with_ctrl(
        mk(DeviceConfig::ddr4_3200()),
        SyntheticPattern::sequential(0.0),
        25.0,
    );
    println!("ablation_ddr4: 2400 -> {slow:.2} GB/s, 3200 -> {fast:.2} GB/s");
    assert!(
        fast > slow,
        "DDR4-3200 should beat DDR4-2400 when saturated"
    );
    c.bench_function("ablation/ddr4_3200", |b| {
        b.iter(|| {
            run_with_ctrl(
                mk(DeviceConfig::ddr4_3200()),
                SyntheticPattern::sequential(0.0),
                5.0,
            )
        })
    });
}

/// Page-policy ablation on GAP-like mixed traffic.
fn ablation_page_policy(c: &mut Criterion) {
    let mk = |policy| {
        let mut cfg = SystemConfig::paper_default(2);
        cfg.ctrl.page_policy = policy;
        cfg
    };
    c.bench_function("ablation/page_open", |b| {
        b.iter(|| run_with_ctrl(mk(PagePolicy::Open), SyntheticPattern::random(0.0), 5.0))
    });
    c.bench_function("ablation/page_closed", |b| {
        b.iter(|| run_with_ctrl(mk(PagePolicy::Closed), SyntheticPattern::random(0.0), 5.0))
    });
    // Guard: the mapping enum is exercised too.
    let mut cfg = SystemConfig::paper_default(1);
    cfg.ctrl.mapping = MappingScheme::CacheLineInterleaved;
    let bw = run_with_ctrl(cfg, SyntheticPattern::sequential(0.5), 10.0);
    println!("ablation_page_policy: interleaved seq w50 1c -> {bw:.2} GB/s");
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_scheduler, ablation_accounting, ablation_writeq,
              ablation_ddr4_3200, ablation_page_policy
}
criterion_main!(ablations);
