//! Criterion benches that regenerate every figure's experiment at reduced
//! scale — `cargo bench` both times the simulator and checks that each
//! figure's driver runs end to end.

use criterion::{criterion_group, criterion_main, Criterion};

use dramstack_memctrl::{MappingScheme, PagePolicy};
use dramstack_sim::experiments::{self, run_gap, run_synthetic, ExperimentScale};
use dramstack_workloads::{GapKernel, SyntheticPattern};

fn synth(
    c: &mut Criterion,
    id: &str,
    cores: usize,
    p: SyntheticPattern,
    pol: PagePolicy,
    map: MappingScheme,
) {
    c.bench_function(id, |b| {
        b.iter(|| {
            run_synthetic(cores, p, pol, map, 10.0)
                .expect("paper configuration is valid")
                .achieved_gbps()
        })
    });
}

fn fig2_readonly_scaling(c: &mut Criterion) {
    // Print the quick-scale figure rows once for reference.
    let rows = experiments::fig2(&ExperimentScale::quick()).expect("paper configuration is valid");
    for r in &rows {
        println!("fig2 {}: {:.2} GB/s", r.label, r.report.achieved_gbps());
    }
    synth(
        c,
        "fig2/seq_1c",
        1,
        SyntheticPattern::sequential(0.0),
        PagePolicy::Open,
        MappingScheme::RowBankColumn,
    );
    synth(
        c,
        "fig2/rand_8c",
        8,
        SyntheticPattern::random(0.0),
        PagePolicy::Open,
        MappingScheme::RowBankColumn,
    );
}

fn fig3_store_fraction(c: &mut Criterion) {
    synth(
        c,
        "fig3/seq_w50_1c",
        1,
        SyntheticPattern::sequential(0.5),
        PagePolicy::Open,
        MappingScheme::RowBankColumn,
    );
    synth(
        c,
        "fig3/rand_w50_1c",
        1,
        SyntheticPattern::random(0.5),
        PagePolicy::Open,
        MappingScheme::RowBankColumn,
    );
}

fn fig4_page_policy(c: &mut Criterion) {
    synth(
        c,
        "fig4/seq_closed_2c",
        2,
        SyntheticPattern::sequential(0.0),
        PagePolicy::Closed,
        MappingScheme::RowBankColumn,
    );
    synth(
        c,
        "fig4/rand_closed_2c",
        2,
        SyntheticPattern::random(0.0),
        PagePolicy::Closed,
        MappingScheme::RowBankColumn,
    );
}

fn fig6_bank_indexing(c: &mut Criterion) {
    synth(
        c,
        "fig6/seq_w50_int",
        1,
        SyntheticPattern::sequential(0.5),
        PagePolicy::Open,
        MappingScheme::CacheLineInterleaved,
    );
    synth(
        c,
        "fig6/seq_closed_int_2c",
        2,
        SyntheticPattern::sequential(0.0),
        PagePolicy::Closed,
        MappingScheme::CacheLineInterleaved,
    );
}

fn fig7_through_time(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let g = scale.build_graph();
    c.bench_function("fig7/bfs_8c_through_time", |b| {
        b.iter(|| {
            run_gap(
                GapKernel::Bfs,
                &g,
                8,
                PagePolicy::Closed,
                MappingScheme::RowBankColumn,
                32,
                &scale.gap,
                scale.max_cycles,
            )
            .expect("paper configuration is valid")
            .samples
            .len()
        })
    });
}

fn fig8_latency_opts(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let g = scale.build_graph();
    c.bench_function("fig8/bfs_8c_wq128", |b| {
        b.iter(|| {
            run_gap(
                GapKernel::Bfs,
                &g,
                8,
                PagePolicy::Closed,
                MappingScheme::RowBankColumn,
                128,
                &scale.gap,
                scale.max_cycles,
            )
            .expect("paper configuration is valid")
            .avg_read_latency_ns()
        })
    });
}

fn fig9_extrapolation(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let row =
        experiments::fig9_kernel(GapKernel::Bfs, &scale).expect("paper configuration is valid");
    println!(
        "fig9 quick bfs: measured {:.2}, naive err {:.0} %, stack err {:.0} %",
        row.measured_8c,
        row.naive_error() * 100.0,
        row.stack_error() * 100.0
    );
    c.bench_function("fig9/cc_predict", |b| {
        b.iter(|| {
            experiments::fig9_kernel(GapKernel::Cc, &scale)
                .expect("paper configuration is valid")
                .stack
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig2_readonly_scaling, fig3_store_fraction, fig4_page_policy,
              fig6_bank_indexing, fig7_through_time, fig8_latency_opts,
              fig9_extrapolation
}
criterion_main!(figures);
