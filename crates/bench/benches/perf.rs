//! Simulator performance benches: how fast the substrate itself runs.
//! (The paper stresses that accounting must not "impractically slow down
//! simulation" — `accounting/*` quantifies our overhead.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use dramstack_core::BandwidthAccountant;
use dramstack_dram::{BankActivity, BankAddr, Command, CycleView, DeviceConfig, DramDevice};
use dramstack_memctrl::{CtrlConfig, MemoryController};
use dramstack_sim::{Simulator, SystemConfig};
use dramstack_workloads::SyntheticPattern;

/// Raw device command throughput: ACT+RD pairs across bank groups.
fn device_issue(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf/device");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("act_read_pairs_1000", |b| {
        b.iter(|| {
            let mut dev = DramDevice::new(DeviceConfig::ddr4_2400());
            let mut now = 0u64;
            for i in 0..1000u32 {
                let bank = BankAddr::new(0, i % 4, (i / 4) % 4);
                let at = dev.earliest_activate(bank, now).at;
                if dev.bank(bank).open_row().is_none() {
                    dev.issue(Command::activate(bank, i % 1024), at).unwrap();
                }
                let rd = dev.earliest_read(bank, at + 1).at;
                dev.issue(Command::read(bank, i % 128), rd).unwrap();
                let pre = dev.earliest_precharge(bank, rd).at;
                dev.issue(Command::precharge(bank), pre).unwrap();
                now = pre;
                dev.advance(now);
            }
            dev.stats().reads
        })
    });
    g.finish();
}

/// Controller tick rate with a steady request stream.
fn controller_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf/controller");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("ticks_100k_loaded", |b| {
        b.iter(|| {
            let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
            let mut view = CycleView::idle(ctrl.total_banks());
            let mut addr = 0u64;
            for now in 0..100_000u64 {
                if now % 8 == 0 && ctrl.can_accept_read() {
                    ctrl.enqueue_read(addr, 0);
                    addr = addr.wrapping_add(64).wrapping_mul(2862933555777941757) % (1 << 30);
                }
                ctrl.tick(now, &mut view);
                ctrl.drain_completions().for_each(drop);
            }
            ctrl.stats().reads_done
        })
    });
    g.finish();
}

/// Pure accounting cost per classified cycle (the paper's overhead
/// concern) — per-cycle vs span-batched.
fn accounting(c: &mut Criterion) {
    let mut busy_view = CycleView::idle(16);
    busy_view.banks[0] = BankActivity::Activating;
    busy_view.banks[5] = BankActivity::Precharging;

    let mut g = c.benchmark_group("perf/accounting");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("per_cycle_1m", |b| {
        b.iter(|| {
            let mut acc = BandwidthAccountant::new(16, 19.2);
            for _ in 0..1_000_000 {
                acc.account(&busy_view);
            }
            acc.total_cycles()
        })
    });
    g.bench_function("span_batched_1m", |b| {
        b.iter(|| {
            let mut acc = BandwidthAccountant::new(16, 19.2);
            for _ in 0..1_000 {
                acc.account_span(&busy_view, 1_000);
            }
            acc.total_cycles()
        })
    });
    g.finish();
}

/// Whole-system simulation rate (DRAM cycles per second of wall time).
fn full_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf/system");
    for cores in [1usize, 8] {
        g.throughput(Throughput::Elements(12_000));
        g.bench_function(format!("sim_10us_{cores}c"), |b| {
            b.iter(|| {
                let cfg = SystemConfig::paper_default(cores);
                let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::random(0.2));
                sim.run_for_us(10.0).sim_cycles
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = perf;
    config = Criterion::default().sample_size(10);
    targets = device_issue, controller_tick, accounting, full_system
}
criterion_main!(perf);
