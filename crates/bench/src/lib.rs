//! Shared rendering/reporting helpers for the figure binaries and
//! Criterion benches.
//!
//! Every figure of the paper has a binary (`cargo run --release --bin
//! fig2` …) that regenerates its data at full scale and writes an ASCII
//! table to stdout plus CSV/SVG files under `results/`. The Criterion
//! benches exercise the same experiment drivers at reduced scale so
//! `cargo bench` both times the simulator and regenerates quick-scale
//! figure data.

use std::fs;
use std::path::{Path, PathBuf};

use dramstack_core::{BandwidthStack, LatencyStack};
use dramstack_sim::experiments::{ExperimentScale, SynthRow};
use dramstack_viz::{ascii, csv, svg};

/// Where figure outputs land (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Picks the experiment scale from the first CLI argument
/// (`quick` or default full).
pub fn scale_from_args() -> ExperimentScale {
    match std::env::args().nth(1).as_deref() {
        Some("quick") => ExperimentScale::quick(),
        _ => ExperimentScale::full(),
    }
}

/// Extracts `(label, bandwidth stack)` pairs from synthetic rows.
pub fn bw_rows(rows: &[SynthRow]) -> Vec<(String, BandwidthStack)> {
    rows.iter()
        .map(|r| (r.label.clone(), r.report.bandwidth_stack.clone()))
        .collect()
}

/// Extracts `(label, latency stack)` pairs from synthetic rows.
pub fn lat_rows(rows: &[SynthRow]) -> Vec<(String, LatencyStack)> {
    rows.iter()
        .map(|r| (r.label.clone(), r.report.latency_stack))
        .collect()
}

/// Prints a figure's bandwidth + latency charts and writes its CSV/SVG
/// artifacts into `results/`.
pub fn emit_figure(name: &str, title: &str, rows: &[SynthRow]) {
    let bw = bw_rows(rows);
    let lat = lat_rows(rows);
    println!("=== {title} ===");
    println!("{}", ascii::bandwidth_chart(&bw));
    println!("{}", ascii::latency_chart(&lat));
    let dir = results_dir();
    let write = |file: &str, content: String| {
        let path = dir.join(file);
        if let Err(e) = fs::write(&path, content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    };
    write(&format!("{name}_bandwidth.csv"), csv::bandwidth_csv(&bw));
    write(&format!("{name}_latency.csv"), csv::latency_csv(&lat));
    write(
        &format!("{name}_bandwidth.svg"),
        svg::bandwidth_figure(&format!("{title} — bandwidth stacks"), &bw),
    );
    write(
        &format!("{name}_latency.svg"),
        svg::latency_figure(&format!("{title} — latency stacks"), &lat),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists());
    }
}
