//! Regenerates Fig. 6: default vs cache-line-interleaved bank indexing
//! for the two high-queueing configurations.

use dramstack_bench::{emit_figure, scale_from_args};
use dramstack_sim::experiments::fig6;

fn main() {
    let scale = scale_from_args();
    let rows = fig6(&scale).expect("paper configuration is valid");
    emit_figure("fig6", "Fig. 6: default vs interleaved indexing", &rows);
}
