//! Regenerates Fig. 3: stacks vs store fraction (0–50 %) on one core.

use dramstack_bench::{emit_figure, scale_from_args};
use dramstack_sim::experiments::fig3;

fn main() {
    let scale = scale_from_args();
    let rows = fig3(&scale).expect("paper configuration is valid");
    emit_figure("fig3", "Fig. 3: store fraction sweep, 1 core", &rows);
}
