//! Regenerates Fig. 4: open vs closed page policy, read-only, 2 cores.

use dramstack_bench::{emit_figure, scale_from_args};
use dramstack_sim::experiments::fig4;

fn main() {
    let scale = scale_from_args();
    let rows = fig4(&scale).expect("paper configuration is valid");
    emit_figure("fig4", "Fig. 4: open vs closed page policy, 2 cores", &rows);
}
