//! Regenerates Fig. 8: latency stacks for bfs 8c (default / interleaved /
//! 128-entry write queue) and tc 1c (default / interleaved / open page).

use dramstack_bench::{results_dir, scale_from_args};
use dramstack_sim::experiments::fig8;
use dramstack_viz::{ascii, csv, svg};

fn main() {
    let scale = scale_from_args();
    let rows = fig8(&scale).expect("paper configuration is valid");
    let lat: Vec<_> = rows.iter().map(|r| (r.label.clone(), r.latency)).collect();

    println!("=== Fig. 8: latency stacks under mapping/write-queue variants ===");
    println!("{}", ascii::latency_chart(&lat));
    for r in &rows {
        println!(
            "{:24} total {:6.1} ns   bw {:5.2} GB/s   page-hit {:4.1} %",
            r.label,
            r.latency.total_ns(),
            r.achieved_gbps,
            r.page_hit_rate * 100.0
        );
    }

    let dir = results_dir();
    std::fs::write(dir.join("fig8_latency.csv"), csv::latency_csv(&lat)).expect("write csv");
    std::fs::write(
        dir.join("fig8_latency.svg"),
        svg::latency_figure("Fig. 8: latency stacks", &lat),
    )
    .expect("write svg");
    println!("wrote {}", dir.join("fig8_latency.csv").display());
    println!("wrote {}", dir.join("fig8_latency.svg").display());
}
