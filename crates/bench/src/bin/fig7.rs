//! Regenerates Fig. 7: through-time cycle, bandwidth and latency stacks
//! for bfs on 8 cores.

use dramstack_bench::{results_dir, scale_from_args};
use dramstack_cpu::CycleComponent;
use dramstack_sim::experiments::fig7;
use dramstack_viz::{ascii, csv, svg};

fn main() {
    let scale = scale_from_args();
    let report = fig7(&scale).expect("paper configuration is valid");
    let cycle_ns = 1000.0 / 1200.0;

    println!("=== Fig. 7: through-time stacks, bfs 8 cores ===");
    println!(
        "simulated {:.2} ms, {} samples, achieved {:.2} GB/s, avg read latency {:.1} ns",
        report.elapsed_us / 1000.0,
        report.samples.len(),
        report.achieved_gbps(),
        report.avg_read_latency_ns()
    );
    println!("{}", ascii::through_time_strip(&report.samples, 10));

    println!("cycle stack (aggregate over cores):");
    for (c, f) in report.cycle_stack.rows() {
        println!("  {:14} {:5.1} %", c.label(), f * 100.0);
    }
    println!("cycle stack through time (idle fraction per window):");
    let idle_series: String = report
        .cycle_samples
        .iter()
        .map(|s| {
            let f = s.fraction(CycleComponent::Idle);
            char::from_digit((f * 9.99) as u32, 10).unwrap_or('9')
        })
        .collect();
    println!("  {idle_series}");

    let dir = results_dir();
    let write = |file: &str, content: String| {
        let path = dir.join(file);
        std::fs::write(&path, content).expect("write results");
        println!("wrote {}", path.display());
    };
    write(
        "fig7_samples.csv",
        csv::samples_csv(&report.samples, cycle_ns),
    );
    write(
        "fig7_bandwidth.svg",
        svg::through_time_figure(
            "Fig. 7: bfs 8c — bandwidth through time",
            &report.samples,
            cycle_ns,
        ),
    );
    // Cycle-stack series CSV.
    let mut cyc = String::from("window");
    for c in CycleComponent::ALL {
        cyc.push(',');
        cyc.push_str(c.label());
    }
    cyc.push('\n');
    for (i, s) in report.cycle_samples.iter().enumerate() {
        cyc.push_str(&i.to_string());
        for c in CycleComponent::ALL {
            cyc.push_str(&format!(",{:.4}", s.fraction(c)));
        }
        cyc.push('\n');
    }
    write("fig7_cycles.csv", cyc);
}
