//! Regenerates Fig. 9: measured vs naive vs stack-extrapolated 8-core
//! bandwidth for the six GAP kernels.

use dramstack_bench::{results_dir, scale_from_args};
use dramstack_sim::experiments::fig9;

fn main() {
    let scale = scale_from_args();
    let rows = fig9(&scale).expect("paper configuration is valid");

    println!("=== Fig. 9: bandwidth extrapolation 1c -> 8c ===");
    println!(
        "{:6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "kernel", "measured", "naive", "err%", "stack", "err%"
    );
    let mut csv = String::from("kernel,measured_8c,naive,naive_err,stack,stack_err\n");
    let (mut naive_sum, mut stack_sum) = (0.0, 0.0);
    for r in &rows {
        println!(
            "{:6} {:>10.2} {:>10.2} {:>10.1} {:>10.2} {:>10.1}",
            r.kernel.name(),
            r.measured_8c,
            r.naive,
            r.naive_error() * 100.0,
            r.stack,
            r.stack_error() * 100.0
        );
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            r.kernel.name(),
            r.measured_8c,
            r.naive,
            r.naive_error(),
            r.stack,
            r.stack_error()
        ));
        naive_sum += r.naive_error();
        stack_sum += r.stack_error();
    }
    let n = rows.len() as f64;
    println!(
        "average error: naive {:.1} %  stack {:.1} %  (paper: 27 % vs 8 %)",
        naive_sum / n * 100.0,
        stack_sum / n * 100.0
    );

    let path = results_dir().join("fig9_extrapolation.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("wrote {}", path.display());
}
