//! Simulator throughput harness.
//!
//! Measures simulation speed (million simulated DRAM cycles per host
//! second) for a spread of representative configurations, the speedup of
//! the idle-cycle fast-forward, and the wall-clock scaling of the
//! parallel sweep runner. Writes `BENCH_sim_throughput.json` at the repo
//! root. Pass `quick` as the first argument for the CI-sized run.

use std::path::Path;
use std::time::{Duration, Instant};

use serde::{Serialize, Value};

use dramstack_bench::scale_from_args;
use dramstack_cpu::{InstrStream, VecStream};
use dramstack_memctrl::{MappingScheme, PagePolicy};
use dramstack_serve::{Client, ClientError, ServeConfig, Server};
use dramstack_sim::{
    experiments::{run_synthetic, ExperimentScale},
    parallel, CheckpointChain, SimReport, Simulator, SnapshotFormat, SystemConfig, Telemetry,
    TelemetryConfig,
};
use dramstack_workloads::{GapKernel, SyntheticPattern};

/// Throughput of one timed configuration.
#[derive(Debug, Serialize)]
struct ConfigResult {
    /// Configuration label.
    name: String,
    /// Simulated DRAM cycles covered.
    sim_cycles: u64,
    /// Host seconds for the run (drive loop only).
    wall_seconds: f64,
    /// Million simulated cycles per host second.
    msim_cycles_per_sec: f64,
    /// Cycles covered by the event-skip fast-forward.
    fast_forwarded_cycles: u64,
    /// Cycles covered by the busy-path event-horizon skip.
    busy_forwarded_cycles: u64,
}

/// Busy-path event engine on vs. off for one loaded configuration.
#[derive(Debug, Serialize)]
struct BusySpeedup {
    /// Configuration label (matches the `configs` entry).
    name: String,
    /// Msim-cycles/s with the busy engine on.
    on_msim_cycles_per_sec: f64,
    /// Msim-cycles/s with the busy engine off.
    off_msim_cycles_per_sec: f64,
    /// `on / off` throughput ratio.
    speedup: f64,
    /// Cycles the engine-on run covered via busy-horizon skips.
    busy_forwarded_cycles: u64,
}

/// Wall-clock scaling of the parallel sweep runner.
#[derive(Debug, Serialize)]
struct SweepResult {
    /// Number of independent simulations in the sweep.
    jobs: usize,
    /// Worker threads of the parallel leg.
    threads: usize,
    /// Wall seconds with one worker.
    serial_seconds: f64,
    /// Wall seconds with `threads` workers.
    parallel_seconds: f64,
    /// `serial_seconds / parallel_seconds`.
    speedup: f64,
}

/// Overhead of the streaming telemetry layer on a loaded run.
#[derive(Debug, Serialize)]
struct TelemetryOverhead {
    /// Msim-cycles/s with telemetry off.
    off_msim_cycles_per_sec: f64,
    /// Msim-cycles/s with telemetry on (JSONL + Prometheus to a sink).
    on_msim_cycles_per_sec: f64,
    /// `on / off` — 1.0 means free.
    relative_throughput: f64,
}

/// Cost of periodic checkpointing on a loaded run. The timed leg uses
/// the production pipeline — binary delta chain encoded synchronously,
/// written by the background [`CheckpointChain`] writer thread — so the
/// numbers reflect what `--checkpoint-dir` actually costs. The blob
/// sizes compare one *full* snapshot of the same machine state in both
/// encodings, measured outside the timed region.
#[derive(Debug, Serialize)]
struct CheckpointOverhead {
    /// Checkpoint interval in DRAM cycles.
    every_cycles: u64,
    /// Checkpoints emitted during the timed run.
    snapshots_taken: usize,
    /// Encoded size of the last checkpoint blob written (a delta once
    /// the chain is warm — the steady-state unit of checkpoint I/O).
    snapshot_bytes: usize,
    /// Full-snapshot size as pretty-printed JSON, in bytes.
    blob_bytes_json: usize,
    /// The same full snapshot in the binary `.dsnp` encoding, in bytes.
    blob_bytes_binary: usize,
    /// Msim-cycles/s with checkpointing off.
    off_msim_cycles_per_sec: f64,
    /// Msim-cycles/s with periodic checkpointing on.
    on_msim_cycles_per_sec: f64,
    /// `on / off` — 1.0 means free.
    relative_throughput: f64,
    /// `off / on` — how many times slower the checkpointed run is
    /// (1.0 means free; the pipeline targets <= 1.3).
    checkpointed_slowdown: f64,
}

/// The simulation service under 2× overload: submission bursts offering
/// twice the in-flight capacity (workers + queue slots), so roughly half
/// of every burst sheds with 429 while admitted jobs run to completion.
/// Job latency is the server-side queued→finished time (`elapsed_ms`),
/// so it includes queueing delay — the quantity a caller experiences.
#[derive(Debug, Serialize)]
struct ServeBench {
    /// Worker threads of the benchmarked daemon.
    workers: usize,
    /// Admission-queue capacity.
    queue_cap: usize,
    /// Submission attempts offered (2× capacity per burst).
    jobs_offered: usize,
    /// Jobs admitted and run to a report.
    jobs_completed: usize,
    /// Submissions shed with 429.
    shed_429: u64,
    /// `shed_429 / jobs_offered` under the 2× overload.
    shed_rate: f64,
    /// HTTP requests served per host second across the whole leg
    /// (submissions + status polls), one connection per request.
    requests_per_sec: f64,
    /// Median server-side job latency (queued → finished), ms.
    p50_job_latency_ms: f64,
    /// 99th-percentile server-side job latency, ms.
    p99_job_latency_ms: f64,
}

#[derive(Debug, Serialize)]
struct BenchOutput {
    /// `quick` or `full`.
    scale: String,
    /// Per-configuration throughput.
    configs: Vec<ConfigResult>,
    /// Idle-workload speedup of fast-forward on vs off.
    idle_fast_forward_speedup: f64,
    /// Busy-path event engine speedup per loaded configuration (every
    /// pair is also asserted bit-identical engine on vs. off).
    busy_speedup: Vec<BusySpeedup>,
    /// Streaming-telemetry cost on the seq_2c workload.
    telemetry: TelemetryOverhead,
    /// Periodic-checkpoint cost on the seq_2c workload (record, not
    /// gate: CI only validates the section's presence and shape).
    checkpoint: CheckpointOverhead,
    /// Parallel sweep scaling.
    sweep: SweepResult,
    /// The simulation service under 2× overload (record, not gate).
    serve: ServeBench,
}

/// Drives an in-process `dramstack serve` daemon at 2× its in-flight
/// capacity and records throughput, shed rate, and job-latency tails.
fn serve_bench(job_us: f64) -> ServeBench {
    let workers = 2usize;
    let queue_cap = 2usize;
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let serve_thread = std::thread::spawn(move || server.serve());

    let client = Client::new(addr);
    let spec = format!(r#"{{"pattern":"seq","cores":1,"us":{job_us}}}"#);
    let capacity = workers + queue_cap;
    let bursts = 2usize;
    let per_burst = 2 * capacity;
    let mut requests = 0u64;
    let mut shed = 0u64;
    let mut ids = Vec::new();
    let t0 = Instant::now();
    for burst in 0..bursts {
        for _ in 0..per_burst {
            requests += 1;
            match client.submit_job(&spec) {
                Ok(id) => ids.push(id),
                Err(ClientError::Status { code: 429, .. }) => shed += 1,
                Err(e) => panic!("serve bench submission failed: {e}"),
            }
        }
        if burst + 1 < bursts {
            // Let the pool make some progress so the next burst overloads
            // a live server rather than a still-full queue.
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    // Poll every admitted job to a terminal state, counting each status
    // request toward the served-request tally.
    let mut latencies_ms = Vec::with_capacity(ids.len());
    for &id in &ids {
        loop {
            requests += 1;
            let body = client.job_status(id).expect("status readable");
            let v: Value = serde_json::from_str(&body).expect("status is JSON");
            let status = match &v {
                Value::Map(entries) => entries
                    .iter()
                    .find(|(k, _)| k == "status")
                    .and_then(|(_, s)| match s {
                        Value::Str(s) => Some(s.as_str()),
                        _ => None,
                    })
                    .expect("status field"),
                _ => panic!("status body is not an object"),
            };
            if status == "done" {
                let ms = match &v {
                    Value::Map(entries) => entries
                        .iter()
                        .find(|(k, _)| k == "elapsed_ms")
                        .and_then(|(_, s)| match s {
                            Value::Float(f) => Some(*f),
                            Value::Int(i) => Some(*i as f64),
                            _ => None,
                        })
                        .expect("elapsed_ms field"),
                    _ => unreachable!(),
                };
                latencies_ms.push(ms);
                break;
            }
            assert!(
                status == "queued" || status == "running",
                "serve bench job {id} ended `{status}`"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    handle.drain();
    let _ = serve_thread.join();

    assert!(
        !latencies_ms.is_empty(),
        "no job was admitted under overload"
    );
    assert!(
        shed > 0,
        "2x overload never shed — the leg is not overloading"
    );
    latencies_ms.sort_by(f64::total_cmp);
    let pct = |q: f64| {
        let idx = ((latencies_ms.len() - 1) as f64 * q).round() as usize;
        latencies_ms[idx]
    };
    let offered = bursts * per_burst;
    ServeBench {
        workers,
        queue_cap,
        jobs_offered: offered,
        jobs_completed: latencies_ms.len(),
        shed_429: shed,
        shed_rate: shed as f64 / offered as f64,
        requests_per_sec: requests as f64 / wall,
        p50_job_latency_ms: pct(0.50),
        p99_job_latency_ms: pct(0.99),
    }
}

fn config_result(name: &str, report: &SimReport) -> ConfigResult {
    ConfigResult {
        name: name.to_string(),
        sim_cycles: report.perf.sim_cycles,
        wall_seconds: report.perf.wall_seconds,
        msim_cycles_per_sec: report.perf.sim_cycles_per_second / 1e6,
        fast_forwarded_cycles: report.perf.fast_forwarded_cycles,
        busy_forwarded_cycles: report.perf.busy_forwarded_cycles,
    }
}

/// Times one loaded configuration with the busy engine on and off,
/// asserts the two reports bit-identical (modulo perf), and records both
/// the throughput entry (engine on) and the speedup pair.
fn busy_pair(
    name: &str,
    run: impl Fn(bool) -> SimReport,
    configs: &mut Vec<ConfigResult>,
    speedups: &mut Vec<BusySpeedup>,
) {
    let on = run(true);
    let off = run(false);
    assert_eq!(
        on.strip_perf(),
        off.strip_perf(),
        "busy engine must not perturb results ({name})"
    );
    speedups.push(BusySpeedup {
        name: name.to_string(),
        on_msim_cycles_per_sec: on.perf.sim_cycles_per_second / 1e6,
        off_msim_cycles_per_sec: off.perf.sim_cycles_per_second / 1e6,
        speedup: on.perf.sim_cycles_per_second / off.perf.sim_cycles_per_second.max(1e-12),
        busy_forwarded_cycles: on.perf.busy_forwarded_cycles,
    });
    configs.push(config_result(name, &on));
}

/// An idle (empty-workload) run with the fast-forward on or off.
fn run_idle(us: f64, fast_forward: bool) -> SimReport {
    let cfg = SystemConfig::paper_default(1);
    let streams: Vec<Box<dyn InstrStream>> = vec![Box::new(VecStream::new(Vec::new()))];
    let mut sim = Simulator::new(cfg, streams);
    sim.set_fast_forward(fast_forward);
    sim.enable_profiling();
    sim.run_for_us(us)
}

fn run_pattern(cores: usize, pattern: SyntheticPattern, us: f64, busy: bool) -> SimReport {
    let cfg = SystemConfig::paper_default(cores);
    let mut sim = Simulator::with_synthetic(cfg, pattern);
    sim.set_busy_engine(busy);
    sim.enable_profiling();
    sim.run_for_us(us)
}

/// The same loaded run with the full telemetry stack attached — JSONL
/// and Prometheus streaming into `io::sink()`, so the measurement is the
/// layer's own cost rather than filesystem speed.
fn run_pattern_telemetry(cores: usize, pattern: SyntheticPattern, us: f64) -> SimReport {
    let cfg = SystemConfig::paper_default(cores);
    let mut sim = Simulator::with_synthetic(cfg, pattern);
    let tel = Telemetry::new(TelemetryConfig {
        prom_every_windows: 16,
        ..TelemetryConfig::default()
    })
    .with_jsonl(Box::new(std::io::sink()))
    .with_prometheus(Box::new(std::io::sink()));
    sim.attach_telemetry(tel);
    sim.enable_profiling();
    sim.run_for_us(us)
}

fn run_bfs(scale: &ExperimentScale, busy: bool) -> SimReport {
    let g = scale.build_graph();
    let mut cfg = SystemConfig::paper_gap(8);
    cfg.ctrl.page_policy = PagePolicy::Closed;
    cfg.sample_period = 2400;
    let traces = GapKernel::Bfs.trace(&g, 8, &scale.gap);
    let mut sim = Simulator::with_traces(cfg, traces);
    sim.set_busy_engine(busy);
    sim.enable_profiling();
    sim.run_to_completion(scale.max_cycles)
}

fn main() {
    let scale = scale_from_args();
    let scale_name = if std::env::args().nth(1).as_deref() == Some("quick") {
        "quick"
    } else {
        "full"
    };
    // Long enough that the idle run crosses many refresh periods.
    let idle_us = scale.synth_us * 4.0;

    let mut configs = Vec::new();

    let idle_on = run_idle(idle_us, true);
    let idle_off = run_idle(idle_us, false);
    let idle_speedup = idle_on.perf.sim_cycles_per_second / idle_off.perf.sim_cycles_per_second;
    configs.push(config_result("idle_1c_ff_on", &idle_on));
    configs.push(config_result("idle_1c_ff_off", &idle_off));

    // Loaded configurations: each timed with the busy-path event engine
    // on and off, asserted bit-identical, with the ratio recorded.
    let mut busy_speedup = Vec::new();
    busy_pair(
        "seq_8c",
        |on| run_pattern(8, SyntheticPattern::sequential(0.0), scale.synth_us, on),
        &mut configs,
        &mut busy_speedup,
    );
    busy_pair(
        "rand_2c",
        |on| run_pattern(2, SyntheticPattern::random(0.2), scale.synth_us, on),
        &mut configs,
        &mut busy_speedup,
    );
    busy_pair(
        "rand_8c",
        |on| run_pattern(8, SyntheticPattern::random(0.2), scale.synth_us, on),
        &mut configs,
        &mut busy_speedup,
    );
    busy_pair(
        "mixed_rw_8c",
        |on| run_pattern(8, SyntheticPattern::sequential(0.4), scale.synth_us, on),
        &mut configs,
        &mut busy_speedup,
    );
    busy_pair(
        "gap_bfs_8c",
        |on| run_bfs(&scale, on),
        &mut configs,
        &mut busy_speedup,
    );

    // Telemetry overhead: identical loaded workload with the layer off
    // and fully on (series + advisor + JSONL + periodic Prometheus).
    let tel_off = run_pattern(2, SyntheticPattern::sequential(0.0), scale.synth_us, true);
    let tel_on = run_pattern_telemetry(2, SyntheticPattern::sequential(0.0), scale.synth_us);
    assert_eq!(
        tel_off.strip_perf(),
        tel_on.strip_perf(),
        "telemetry must not perturb results"
    );
    let telemetry = TelemetryOverhead {
        off_msim_cycles_per_sec: tel_off.perf.sim_cycles_per_second / 1e6,
        on_msim_cycles_per_sec: tel_on.perf.sim_cycles_per_second / 1e6,
        relative_throughput: tel_on.perf.sim_cycles_per_second
            / tel_off.perf.sim_cycles_per_second.max(1e-12),
    };
    configs.push(config_result("seq_2c_telemetry_off", &tel_off));
    configs.push(config_result("seq_2c_telemetry_on", &tel_on));

    // Checkpoint overhead: the telemetry-off run doubles as the
    // no-checkpoint baseline; the checkpointed leg runs the production
    // pipeline (binary delta chain + background writer) every quarter
    // of the run, into a throwaway directory.
    let ckpt_cfg = SystemConfig::paper_default(2);
    let ckpt_end = ckpt_cfg.us_to_cycles(scale.synth_us);
    let ckpt_every = (ckpt_end / 4).max(1);
    let ckpt_dir =
        std::env::temp_dir().join(format!("dramstack-bench-ckpt-{}", std::process::id()));
    let mut snapshots_taken = 0usize;
    let mut snapshot_bytes = 0usize;
    let ckpt_on = {
        let mut sim =
            Simulator::with_synthetic(ckpt_cfg.clone(), SyntheticPattern::sequential(0.0));
        sim.set_busy_engine(true);
        sim.enable_profiling();
        let mut chain = CheckpointChain::create(&ckpt_dir, "bench", SnapshotFormat::Binary, true)
            .expect("temp checkpoint dir is writable");
        let mut next = ckpt_every;
        while sim.now() < ckpt_end {
            sim.advance_to_cycle(ckpt_end.min(next));
            if sim.now() == next {
                snapshot_bytes = chain.checkpoint(&mut sim).expect("checkpoint encodes");
                snapshots_taken += 1;
                next += ckpt_every;
            }
        }
        chain.finish().expect("checkpoint writer flushes");
        sim.report()
    };
    assert_eq!(
        tel_off.strip_perf(),
        ckpt_on.strip_perf(),
        "periodic checkpointing must not perturb results"
    );
    assert!(snapshots_taken > 0, "checkpoint leg took no snapshots");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    // Full-snapshot encoding comparison on the same end-of-run machine
    // state, on an untimed replica so blob measurement can't pollute the
    // throughput numbers above.
    let (blob_bytes_json, blob_bytes_binary) = {
        let mut sim = Simulator::with_synthetic(ckpt_cfg, SyntheticPattern::sequential(0.0));
        sim.set_busy_engine(true);
        sim.advance_to_cycle(ckpt_end);
        let snap = sim.snapshot().expect("synthetic streams snapshot");
        (snap.to_json().len(), snap.to_binary().len())
    };
    let checkpoint = CheckpointOverhead {
        every_cycles: ckpt_every,
        snapshots_taken,
        snapshot_bytes,
        blob_bytes_json,
        blob_bytes_binary,
        off_msim_cycles_per_sec: tel_off.perf.sim_cycles_per_second / 1e6,
        on_msim_cycles_per_sec: ckpt_on.perf.sim_cycles_per_second / 1e6,
        relative_throughput: ckpt_on.perf.sim_cycles_per_second
            / tel_off.perf.sim_cycles_per_second.max(1e-12),
        checkpointed_slowdown: tel_off.perf.sim_cycles_per_second
            / ckpt_on.perf.sim_cycles_per_second.max(1e-12),
    };
    configs.push(config_result("seq_2c_checkpointed", &ckpt_on));

    // Parallel sweep scaling: the same independent job list run on one
    // worker and on all available workers.
    let threads = parallel::available_threads();
    let grid: Vec<(usize, SyntheticPattern)> = vec![
        (1, SyntheticPattern::sequential(0.0)),
        (2, SyntheticPattern::sequential(0.0)),
        (1, SyntheticPattern::random(0.0)),
        (2, SyntheticPattern::random(0.0)),
        (1, SyntheticPattern::sequential(0.2)),
        (2, SyntheticPattern::sequential(0.2)),
        (1, SyntheticPattern::random(0.2)),
        (2, SyntheticPattern::random(0.2)),
    ];
    let job = |(cores, pattern): (usize, SyntheticPattern)| {
        run_synthetic(
            cores,
            pattern,
            PagePolicy::Open,
            MappingScheme::RowBankColumn,
            scale.synth_us,
        )
        .expect("paper configuration is valid")
        .sim_cycles
    };
    let t0 = Instant::now();
    let serial = parallel::map_with_threads(grid.clone(), 1, job);
    let serial_seconds = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let par = parallel::map_with_threads(grid, threads, job);
    let parallel_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(serial, par, "parallel sweep must match serial");

    // The simulation service under 2× overload. Jobs must run long
    // relative to a submission round trip, or the pool drains each burst
    // as fast as it arrives and nothing sheds.
    let serve = serve_bench((scale.synth_us * 8.0).max(160.0));

    let out = BenchOutput {
        scale: scale_name.to_string(),
        configs,
        idle_fast_forward_speedup: idle_speedup,
        busy_speedup,
        telemetry,
        checkpoint,
        sweep: SweepResult {
            jobs: serial.len(),
            threads,
            serial_seconds,
            parallel_seconds,
            speedup: serial_seconds / parallel_seconds.max(1e-12),
        },
        serve,
    };

    for c in &out.configs {
        println!(
            "{:16} {:>12} cycles  {:>8.2} Msim-cycles/s  ({} fast-forwarded, {} busy-forwarded)",
            c.name,
            c.sim_cycles,
            c.msim_cycles_per_sec,
            c.fast_forwarded_cycles,
            c.busy_forwarded_cycles
        );
    }
    for b in &out.busy_speedup {
        println!(
            "busy engine {:12} {:>6.2} -> {:>6.2} Msim-cycles/s ({:.2}x, {} cycles busy-forwarded)",
            b.name,
            b.off_msim_cycles_per_sec,
            b.on_msim_cycles_per_sec,
            b.speedup,
            b.busy_forwarded_cycles
        );
    }
    println!(
        "telemetry overhead: {:.2} -> {:.2} Msim-cycles/s ({:.1} % of telemetry-off throughput)",
        out.telemetry.off_msim_cycles_per_sec,
        out.telemetry.on_msim_cycles_per_sec,
        out.telemetry.relative_throughput * 100.0
    );
    println!(
        "checkpoint overhead: {:.2} -> {:.2} Msim-cycles/s ({:.2}x slowdown, {} checkpoints, last blob {} bytes every {} cycles)",
        out.checkpoint.off_msim_cycles_per_sec,
        out.checkpoint.on_msim_cycles_per_sec,
        out.checkpoint.checkpointed_slowdown,
        out.checkpoint.snapshots_taken,
        out.checkpoint.snapshot_bytes,
        out.checkpoint.every_cycles
    );
    println!(
        "full snapshot blob: {} bytes JSON -> {} bytes binary ({:.1}x smaller)",
        out.checkpoint.blob_bytes_json,
        out.checkpoint.blob_bytes_binary,
        out.checkpoint.blob_bytes_json as f64 / (out.checkpoint.blob_bytes_binary as f64).max(1.0)
    );
    println!(
        "serve (2x overload): {:.1} req/s, {}/{} jobs admitted+done, shed rate {:.0} %, job latency p50 {:.0} ms / p99 {:.0} ms",
        out.serve.requests_per_sec,
        out.serve.jobs_completed,
        out.serve.jobs_offered,
        out.serve.shed_rate * 100.0,
        out.serve.p50_job_latency_ms,
        out.serve.p99_job_latency_ms
    );
    println!(
        "idle fast-forward speedup: {:.1}x | sweep: {} jobs, {} threads, {:.2}s -> {:.2}s ({:.2}x)",
        out.idle_fast_forward_speedup,
        out.sweep.jobs,
        out.sweep.threads,
        out.sweep.serial_seconds,
        out.sweep.parallel_seconds,
        out.sweep.speedup
    );

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim_throughput.json");
    let json = serde_json::to_string_pretty(&out).expect("serializable");
    std::fs::write(&path, json).expect("write BENCH_sim_throughput.json");
    println!("wrote {}", path.display());
}
