//! Regenerates every figure of the paper in one run and writes all
//! artifacts under `results/`. Pass `quick` for a fast reduced-scale run.

use dramstack_bench::{emit_figure, results_dir, scale_from_args};
use dramstack_sim::experiments;

fn main() {
    let scale = scale_from_args();
    let t0 = std::time::Instant::now();

    emit_figure(
        "fig2",
        "Fig. 2: read-only seq/random, 1-8 cores",
        &experiments::fig2(&scale).expect("paper configuration is valid"),
    );
    emit_figure(
        "fig3",
        "Fig. 3: store fraction sweep, 1 core",
        &experiments::fig3(&scale).expect("paper configuration is valid"),
    );
    emit_figure(
        "fig4",
        "Fig. 4: open vs closed page policy, 2 cores",
        &experiments::fig4(&scale).expect("paper configuration is valid"),
    );
    emit_figure(
        "fig6",
        "Fig. 6: default vs interleaved indexing",
        &experiments::fig6(&scale).expect("paper configuration is valid"),
    );

    // Figs. 7–9 have dedicated binaries with richer output; run their
    // drivers here for the artifacts.
    let report = experiments::fig7(&scale).expect("paper configuration is valid");
    let cycle_ns = 1000.0 / 1200.0;
    std::fs::write(
        results_dir().join("fig7_samples.csv"),
        dramstack_viz::csv::samples_csv(&report.samples, cycle_ns),
    )
    .expect("write fig7 csv");
    println!(
        "fig7: bfs 8c, {:.2} ms simulated, {} samples, {:.2} GB/s",
        report.elapsed_us / 1000.0,
        report.samples.len(),
        report.achieved_gbps()
    );

    let rows8 = experiments::fig8(&scale).expect("paper configuration is valid");
    let lat: Vec<_> = rows8.iter().map(|r| (r.label.clone(), r.latency)).collect();
    std::fs::write(
        results_dir().join("fig8_latency.csv"),
        dramstack_viz::csv::latency_csv(&lat),
    )
    .expect("write fig8 csv");
    println!("fig8: {} latency-stack variants", rows8.len());

    let rows9 = experiments::fig9(&scale).expect("paper configuration is valid");
    let avg_naive: f64 = rows9
        .iter()
        .map(experiments::Fig9Row::naive_error)
        .sum::<f64>()
        / rows9.len() as f64;
    let avg_stack: f64 = rows9
        .iter()
        .map(experiments::Fig9Row::stack_error)
        .sum::<f64>()
        / rows9.len() as f64;
    println!(
        "fig9: avg extrapolation error naive {:.1} % vs stack {:.1} %",
        avg_naive * 100.0,
        avg_stack * 100.0
    );

    println!("all figures regenerated in {:?}", t0.elapsed());
}
