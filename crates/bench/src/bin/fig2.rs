//! Regenerates Fig. 2: bandwidth and latency stacks for the sequential
//! and random read-only patterns on 1–8 cores.

use dramstack_bench::{emit_figure, scale_from_args};
use dramstack_sim::experiments::fig2;

fn main() {
    let scale = scale_from_args();
    let rows = fig2(&scale).expect("paper configuration is valid");
    emit_figure("fig2", "Fig. 2: read-only seq/random, 1-8 cores", &rows);
}
