//! Single-source shortest paths via rounds of Bellman-Ford relaxations
//! (a simplification of GAP's delta-stepping that keeps the same memory
//! character: sequential CSR scans plus random distance-array updates).

use crate::gap::{GapConfig, KernelCtx};
use crate::trace::hash_bit;

const INF: u32 = u32::MAX;

/// Deterministic synthetic edge weight in `1..=64`.
fn weight_of(edge_idx: u32) -> u32 {
    let mut z = u64::from(edge_idx).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (z % 64) as u32 + 1
}

pub(crate) fn run(ctx: &mut KernelCtx<'_>, cfg: &GapConfig) {
    let n = u64::from(ctx.g.n);
    let cores = ctx.t.cores();
    let dist_arr = ctx.alloc(n, 4);
    let weights_arr = ctx.alloc(ctx.g.targets.len().max(1) as u64, 4);

    let src = ctx.g.max_degree_vertex();
    let mut dist = vec![INF; n as usize];
    dist[src as usize] = 0;

    for round in 0..cfg.sssp_rounds {
        let mut changed = false;
        for core in 0..cores {
            let r = ctx.t.chunk(n, core);
            for v in r {
                ctx.t.load(core, dist_arr.addr(v));
                ctx.t.branch(
                    core,
                    hash_bit(v ^ (u64::from(round) << 16), cfg.mispredict_pct, 100),
                );
                if dist[v as usize] == INF {
                    continue; // nothing to relax from an unreached vertex
                }
                let (lo, hi) = ctx.load_offsets(core, v as u32);
                for idx in lo..hi {
                    let u = ctx.g.targets[idx as usize];
                    ctx.t.load(core, ctx.tgts.addr(u64::from(idx)));
                    ctx.t.load(core, weights_arr.addr(u64::from(idx)));
                    ctx.t.load(core, dist_arr.addr(u64::from(u)));
                    let cand = dist[v as usize].saturating_add(weight_of(idx));
                    if cand < dist[u as usize] {
                        dist[u as usize] = cand;
                        ctx.t.store(core, dist_arr.addr(u64::from(u)));
                        changed = true;
                    }
                    ctx.t.compute(core, 1);
                }
            }
        }
        ctx.t.barrier();
        ctx.t.compute(0, 16);
        ctx.t.barrier();
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::weight_of;
    use crate::gap::{GapConfig, GapKernel};
    use crate::graph::Graph;
    use dramstack_cpu::Instr;

    #[test]
    fn weights_are_deterministic_and_bounded() {
        for i in 0..1000 {
            let w = weight_of(i);
            assert!((1..=64).contains(&w));
            assert_eq!(w, weight_of(i));
        }
    }

    #[test]
    fn sssp_relaxes_and_stores_distances() {
        let g = Graph::uniform(256, 8, 3);
        let traces = GapKernel::Sssp.trace(&g, 2, &GapConfig::default());
        let stores: usize = traces
            .iter()
            .map(|t| {
                t.iter()
                    .filter(|i| matches!(i, Instr::Store { .. }))
                    .count()
            })
            .sum();
        // Connected uniform graph: nearly every vertex gets a distance.
        assert!(stores > 200, "stores {stores}");
    }
}
