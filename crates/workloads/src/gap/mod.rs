//! GAP-style graph kernels as trace-generating programs.
//!
//! Each kernel is a real implementation of the algorithm (direction-
//! optimizing BFS, pull PageRank, label-propagation CC, Brandes BC,
//! Bellman-Ford SSSP, sorted-intersection TC) that executes on an actual
//! [`Graph`] while emitting, per simulated core, the loads/stores/compute
//! the parallel version would perform. Work is partitioned with OpenMP-
//! style static chunks and synchronized with barriers, which produces the
//! phase behaviour the paper analyzes in Fig. 7.

mod bc;
mod bfs;
mod cc;
mod pr;
mod sssp;
mod tc;

use serde::{Deserialize, Serialize};

use dramstack_cpu::Instr;

use crate::alloc::{AddressSpace, ArrayRef};
use crate::graph::Graph;
use crate::trace::TraceBuilder;

/// The six GAP kernels of the paper's Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GapKernel {
    /// Betweenness centrality (Brandes, sampled sources).
    Bc,
    /// Breadth-first search (direction-optimizing).
    Bfs,
    /// Connected components (label propagation + pointer jumping).
    Cc,
    /// PageRank (pull).
    Pr,
    /// Single-source shortest paths (Bellman-Ford rounds).
    Sssp,
    /// Triangle counting (sorted adjacency intersection).
    Tc,
}

impl GapKernel {
    /// All kernels, in the paper's Fig. 9 order.
    pub const ALL: [GapKernel; 6] = [
        GapKernel::Bc,
        GapKernel::Bfs,
        GapKernel::Cc,
        GapKernel::Pr,
        GapKernel::Sssp,
        GapKernel::Tc,
    ];

    /// GAP's short name.
    pub fn name(self) -> &'static str {
        match self {
            GapKernel::Bc => "bc",
            GapKernel::Bfs => "bfs",
            GapKernel::Cc => "cc",
            GapKernel::Pr => "pr",
            GapKernel::Sssp => "sssp",
            GapKernel::Tc => "tc",
        }
    }

    /// Generates the per-core instruction traces for this kernel.
    pub fn trace(self, g: &Graph, n_cores: usize, cfg: &GapConfig) -> Vec<Vec<Instr>> {
        let mut ctx = KernelCtx::new(g, n_cores);
        match self {
            GapKernel::Bc => bc::run(&mut ctx, cfg),
            GapKernel::Bfs => bfs::run(&mut ctx, cfg),
            GapKernel::Cc => cc::run(&mut ctx, cfg),
            GapKernel::Pr => pr::run(&mut ctx, cfg),
            GapKernel::Sssp => sssp::run(&mut ctx, cfg),
            GapKernel::Tc => tc::run(&mut ctx, cfg),
        }
        ctx.t.into_traces()
    }
}

impl std::fmt::Display for GapKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Kernel-size knobs (bounded so full cycle simulation stays fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapConfig {
    /// PageRank iterations.
    pub pr_iterations: u32,
    /// Maximum Bellman-Ford rounds.
    pub sssp_rounds: u32,
    /// Maximum label-propagation rounds.
    pub cc_rounds: u32,
    /// BC source vertices.
    pub bc_sources: u32,
    /// Probability (numerator over 100) that a data-dependent branch
    /// mispredicts.
    pub mispredict_pct: u64,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            pr_iterations: 3,
            sssp_rounds: 4,
            cc_rounds: 4,
            bc_sources: 1,
            mispredict_pct: 8,
        }
    }
}

/// Shared state for kernel trace generation: the graph, the trace builder
/// and the simulated addresses of the CSR arrays.
pub(crate) struct KernelCtx<'g> {
    pub g: &'g Graph,
    pub t: TraceBuilder,
    pub space: AddressSpace,
    pub offs: ArrayRef,
    pub tgts: ArrayRef,
}

impl<'g> KernelCtx<'g> {
    fn new(g: &'g Graph, n_cores: usize) -> Self {
        let mut space = AddressSpace::default();
        let offs = space.alloc(g.offsets.len() as u64, 4);
        let tgts = space.alloc(g.targets.len().max(1) as u64, 4);
        KernelCtx {
            g,
            t: TraceBuilder::new(n_cores),
            space,
            offs,
            tgts,
        }
    }

    /// Allocates a property array of `len` `elem_bytes`-sized elements.
    pub fn alloc(&mut self, len: u64, elem_bytes: u32) -> ArrayRef {
        self.space.alloc(len, elem_bytes)
    }

    /// Emits the CSR offset loads for vertex `v` and returns its neighbor
    /// slice bounds.
    pub fn load_offsets(&mut self, core: usize, v: u32) -> (u32, u32) {
        self.t.load(core, self.offs.addr(u64::from(v)));
        self.t.load(core, self.offs.addr(u64::from(v) + 1));
        (self.g.offsets[v as usize], self.g.offsets[v as usize + 1])
    }

    /// Emits the loads scanning `v`'s adjacency list and returns a copy of
    /// the neighbors.
    pub fn scan_neighbors(&mut self, core: usize, v: u32) -> Vec<u32> {
        let (lo, hi) = self.load_offsets(core, v);
        for idx in lo..hi {
            self.t.load(core, self.tgts.addr(u64::from(idx)));
        }
        self.g.neighbors(v).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_cpu::Instr;

    fn small_graph() -> Graph {
        Graph::kronecker(8, 4, 11)
    }

    fn count_kinds(traces: &[Vec<Instr>]) -> (u64, u64, u64, u64) {
        let (mut loads, mut stores, mut computes, mut barriers) = (0, 0, 0, 0);
        for t in traces {
            for i in t {
                match i {
                    Instr::Load { .. } | Instr::ChainLoad { .. } => loads += 1,
                    Instr::Store { .. } => stores += 1,
                    Instr::Compute { .. } => computes += 1,
                    Instr::Barrier { .. } => barriers += 1,
                    Instr::Branch { .. } => {}
                }
            }
        }
        (loads, stores, computes, barriers)
    }

    #[test]
    fn every_kernel_produces_nonempty_traces_per_core() {
        let g = small_graph();
        for k in GapKernel::ALL {
            for cores in [1usize, 4] {
                let traces = k.trace(&g, cores, &GapConfig::default());
                assert_eq!(traces.len(), cores, "{k}");
                let (loads, _, _, _) = count_kinds(&traces);
                assert!(loads > 0, "{k} must load something");
            }
        }
    }

    #[test]
    fn barriers_match_across_cores() {
        let g = small_graph();
        for k in GapKernel::ALL {
            let traces = k.trace(&g, 4, &GapConfig::default());
            let barrier_seq = |t: &Vec<Instr>| -> Vec<u32> {
                t.iter()
                    .filter_map(|i| match i {
                        Instr::Barrier { id } => Some(*id),
                        _ => None,
                    })
                    .collect()
            };
            let first = barrier_seq(&traces[0]);
            for t in &traces[1..] {
                assert_eq!(
                    barrier_seq(t),
                    first,
                    "{k}: all cores see the same barriers"
                );
            }
            assert!(!first.is_empty(), "{k} should synchronize at least once");
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let g = small_graph();
        let a = GapKernel::Bfs.trace(&g, 2, &GapConfig::default());
        let b = GapKernel::Bfs.trace(&g, 2, &GapConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn mutating_kernels_emit_stores() {
        let g = small_graph();
        for k in [
            GapKernel::Bfs,
            GapKernel::Pr,
            GapKernel::Cc,
            GapKernel::Sssp,
            GapKernel::Bc,
        ] {
            let traces = k.trace(&g, 2, &GapConfig::default());
            let (_, stores, _, _) = count_kinds(&traces);
            assert!(stores > 0, "{k} must store results");
        }
    }

    #[test]
    fn tc_is_read_only_and_sequential_heavy() {
        let g = small_graph();
        let traces = GapKernel::Tc.trace(&g, 1, &GapConfig::default());
        let (loads, stores, computes, _) = count_kinds(&traces);
        assert_eq!(stores, 0, "tc writes nothing");
        assert!(loads > 1000);
        assert!(computes > 0);
    }
}
