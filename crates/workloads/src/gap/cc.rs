//! Connected components by label propagation with a pointer-jumping
//! compression pass (Shiloach–Vishkin flavour). The compression pass is a
//! chain of dependent loads — genuine pointer chasing.

use crate::gap::{GapConfig, KernelCtx};
use crate::trace::hash_bit;

pub(crate) fn run(ctx: &mut KernelCtx<'_>, cfg: &GapConfig) {
    let n = u64::from(ctx.g.n);
    let cores = ctx.t.cores();
    let comp_arr = ctx.alloc(n, 4);

    let mut comp: Vec<u32> = (0..ctx.g.n).collect();

    for round in 0..cfg.cc_rounds {
        let mut changed = false;
        // Hook: adopt the smallest label among neighbors.
        for core in 0..cores {
            let r = ctx.t.chunk(n, core);
            for v in r {
                ctx.t.load(core, comp_arr.addr(v));
                let neigh = ctx.scan_neighbors(core, v as u32);
                for u in neigh {
                    ctx.t.load(core, comp_arr.addr(u64::from(u)));
                    if comp[u as usize] < comp[v as usize] {
                        comp[v as usize] = comp[u as usize];
                        ctx.t.store(core, comp_arr.addr(v));
                        changed = true;
                    }
                    ctx.t.compute(core, 1);
                }
                ctx.t.branch(
                    core,
                    hash_bit(v ^ (u64::from(round) << 40), cfg.mispredict_pct, 100),
                );
            }
        }
        ctx.t.barrier();

        // Compress: comp[v] = comp[comp[v]] — dependent loads.
        for core in 0..cores {
            let r = ctx.t.chunk(n, core);
            for v in r {
                ctx.t.load(core, comp_arr.addr(v));
                let c = comp[v as usize];
                ctx.t
                    .chain_load(core, comp_arr.addr(u64::from(c)), (v % 8) as u8);
                if comp[c as usize] != comp[v as usize] {
                    comp[v as usize] = comp[c as usize];
                    ctx.t.store(core, comp_arr.addr(v));
                }
                ctx.t.compute(core, 1);
            }
        }
        ctx.t.barrier();
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::gap::{GapConfig, GapKernel};
    use crate::graph::Graph;
    use dramstack_cpu::Instr;

    #[test]
    fn cc_uses_dependent_loads_in_compression() {
        let g = Graph::kronecker(8, 4, 17);
        let traces = GapKernel::Cc.trace(&g, 2, &GapConfig::default());
        let chains = traces[0]
            .iter()
            .filter(|i| matches!(i, Instr::ChainLoad { .. }))
            .count();
        assert!(chains > 0, "pointer jumping must chain loads");
    }

    #[test]
    fn cc_converges_early_on_a_clique() {
        // A tiny complete graph converges in one round; the trace must not
        // contain cc_rounds × per-round barrier pairs.
        let edges: Vec<(u32, u32)> = (0..8u32)
            .flat_map(|u| (u + 1..8).map(move |v| (u, v)))
            .collect();
        let g = Graph::from_edges(8, &edges);
        let cfg = GapConfig {
            cc_rounds: 8,
            ..GapConfig::default()
        };
        let traces = GapKernel::Cc.trace(&g, 1, &cfg);
        let barriers = traces[0]
            .iter()
            .filter(|i| matches!(i, Instr::Barrier { .. }))
            .count();
        assert!(
            barriers <= 4,
            "clique converges in ≤ 2 rounds, got {barriers} barriers"
        );
    }
}
