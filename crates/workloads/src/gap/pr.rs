//! Pull-based PageRank: each vertex gathers the scaled scores of its
//! neighbors — mostly-random reads of the score array plus a sequential
//! CSR scan, the classic memory-bound graph kernel.

use crate::gap::{GapConfig, KernelCtx};

const DAMPING: f64 = 0.85;

pub(crate) fn run(ctx: &mut KernelCtx<'_>, cfg: &GapConfig) {
    let n = u64::from(ctx.g.n);
    let cores = ctx.t.cores();
    let scores_arr = ctx.alloc(n, 8);
    let scores_new_arr = ctx.alloc(n, 8);

    let mut scores = vec![1.0 / n as f64; n as usize];
    let base = (1.0 - DAMPING) / n as f64;

    for _iter in 0..cfg.pr_iterations {
        let mut scores_new = vec![0.0f64; n as usize];
        for core in 0..cores {
            let r = ctx.t.chunk(n, core);
            for v in r {
                let neigh = ctx.scan_neighbors(core, v as u32);
                let mut sum = 0.0;
                for u in neigh {
                    // Contribution needs the neighbor's score and degree.
                    ctx.t.load(core, scores_arr.addr(u64::from(u)));
                    ctx.t.load(core, ctx.offs.addr(u64::from(u)));
                    sum += scores[u as usize] / f64::from(ctx.g.degree(u).max(1));
                    ctx.t.compute(core, 2);
                }
                scores_new[v as usize] = base + DAMPING * sum;
                ctx.t.store(core, scores_new_arr.addr(v));
                ctx.t.compute(core, 2);
            }
        }
        scores = scores_new;
        ctx.t.barrier();
        // Core 0: swap buffers / convergence check.
        ctx.t.compute(0, 16);
        ctx.t.barrier();
    }
}

#[cfg(test)]
mod tests {
    use crate::gap::{GapConfig, GapKernel};
    use crate::graph::Graph;
    use dramstack_cpu::Instr;

    #[test]
    fn pr_stores_once_per_vertex_per_iteration() {
        let g = Graph::kronecker(8, 4, 5);
        let cfg = GapConfig {
            pr_iterations: 2,
            ..GapConfig::default()
        };
        let traces = GapKernel::Pr.trace(&g, 1, &cfg);
        let stores = traces[0]
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count() as u32;
        assert_eq!(stores, 2 * g.n);
    }

    #[test]
    fn pr_load_volume_scales_with_edges_and_iterations() {
        let g = Graph::kronecker(8, 4, 5);
        let one = GapKernel::Pr.trace(
            &g,
            1,
            &GapConfig {
                pr_iterations: 1,
                ..Default::default()
            },
        );
        let two = GapKernel::Pr.trace(
            &g,
            1,
            &GapConfig {
                pr_iterations: 2,
                ..Default::default()
            },
        );
        let loads = |t: &Vec<Instr>| t.iter().filter(|i| matches!(i, Instr::Load { .. })).count();
        assert!(
            loads(&two[0]) > 19 * loads(&one[0]) / 10,
            "two iterations ≈ 2× loads"
        );
    }
}
