//! Betweenness centrality (Brandes): a forward BFS accumulating shortest-
//! path counts, then a backward sweep over the BFS levels accumulating
//! dependencies. Two phases with very different traffic, as in GAP.

use crate::gap::{GapConfig, KernelCtx};
use crate::trace::hash_bit;

pub(crate) fn run(ctx: &mut KernelCtx<'_>, cfg: &GapConfig) {
    let n = u64::from(ctx.g.n);
    let cores = ctx.t.cores();
    let depth_arr = ctx.alloc(n, 4);
    let sigma_arr = ctx.alloc(n, 8);
    let delta_arr = ctx.alloc(n, 8);
    let bc_arr = ctx.alloc(n, 8);
    let queue_arr = ctx.alloc(n, 4);

    for s in 0..cfg.bc_sources {
        // A different well-connected source per round.
        let src = if s == 0 {
            ctx.g.max_degree_vertex()
        } else {
            (u64::from(s).wrapping_mul(0x9E37_79B9) % n) as u32
        };

        let mut depth = vec![u32::MAX; n as usize];
        let mut sigma = vec![0u64; n as usize];
        depth[src as usize] = 0;
        sigma[src as usize] = 1;
        let mut levels: Vec<Vec<u32>> = vec![vec![src]];

        // Forward: BFS levels with path counting.
        while let Some(frontier) = levels.last() {
            if frontier.is_empty() {
                levels.pop();
                break;
            }
            let d = (levels.len() - 1) as u32;
            let frontier = frontier.clone();
            let mut next = Vec::new();
            for core in 0..cores {
                let r = ctx.t.chunk(frontier.len() as u64, core);
                for i in r {
                    let v = frontier[i as usize];
                    ctx.t.load(core, queue_arr.addr(i));
                    let neigh = ctx.scan_neighbors(core, v);
                    for u in neigh {
                        ctx.t.load(core, depth_arr.addr(u64::from(u)));
                        if depth[u as usize] == u32::MAX {
                            depth[u as usize] = d + 1;
                            ctx.t.store(core, depth_arr.addr(u64::from(u)));
                            next.push(u);
                        }
                        if depth[u as usize] == d + 1 {
                            sigma[u as usize] += sigma[v as usize];
                            ctx.t.load(core, sigma_arr.addr(u64::from(u)));
                            ctx.t.store(core, sigma_arr.addr(u64::from(u)));
                        }
                        ctx.t.branch(
                            core,
                            hash_bit(u64::from(u) ^ (u64::from(d) << 20), cfg.mispredict_pct, 100),
                        );
                    }
                }
            }
            ctx.t.barrier();
            levels.push(next);
        }

        // Backward: dependency accumulation per level, deepest first.
        let mut delta = vec![0.0f64; n as usize];
        for d in (0..levels.len().saturating_sub(1)).rev() {
            let level = levels[d].clone();
            for core in 0..cores {
                let r = ctx.t.chunk(level.len() as u64, core);
                for i in r {
                    let v = level[i as usize];
                    ctx.t.load(core, queue_arr.addr(i));
                    let neigh = ctx.scan_neighbors(core, v);
                    let mut acc = 0.0;
                    for u in neigh {
                        ctx.t.load(core, depth_arr.addr(u64::from(u)));
                        if depth[u as usize] == d as u32 + 1 {
                            ctx.t.load(core, sigma_arr.addr(u64::from(u)));
                            ctx.t.load(core, delta_arr.addr(u64::from(u)));
                            acc += sigma[v as usize] as f64 / sigma[u as usize].max(1) as f64
                                * (1.0 + delta[u as usize]);
                            ctx.t.compute(core, 3);
                        }
                    }
                    delta[v as usize] += acc;
                    ctx.t.store(core, delta_arr.addr(u64::from(v)));
                    ctx.t.load(core, bc_arr.addr(u64::from(v)));
                    ctx.t.store(core, bc_arr.addr(u64::from(v)));
                }
            }
            ctx.t.barrier();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::gap::{GapConfig, GapKernel};
    use crate::graph::Graph;
    use dramstack_cpu::Instr;

    #[test]
    fn bc_has_forward_and_backward_phases() {
        let g = Graph::uniform(256, 8, 21);
        let traces = GapKernel::Bc.trace(&g, 2, &GapConfig::default());
        let barriers = traces[0]
            .iter()
            .filter(|i| matches!(i, Instr::Barrier { .. }))
            .count();
        // Forward levels + backward levels.
        assert!(barriers >= 4, "got {barriers}");
    }

    #[test]
    fn more_sources_mean_more_work() {
        let g = Graph::uniform(128, 6, 2);
        let one = GapKernel::Bc.trace(
            &g,
            1,
            &GapConfig {
                bc_sources: 1,
                ..Default::default()
            },
        );
        let two = GapKernel::Bc.trace(
            &g,
            1,
            &GapConfig {
                bc_sources: 2,
                ..Default::default()
            },
        );
        assert!(two[0].len() > 3 * one[0].len() / 2);
    }
}
