//! Triangle counting with degree ordering and sorted-list intersection —
//! GAP's algorithm. The two-pointer merges make this the most sequential
//! of the kernels; the paper notes tc "mainly does sequential accesses
//! and thus favors an open page policy".
//!
//! Vertices are assigned to cores round-robin (GAP uses dynamic OpenMP
//! scheduling): the skewed RMAT degree distribution makes contiguous
//! chunks hopelessly imbalanced. Heavily skewed list pairs intersect by
//! binary-searching the smaller list into the larger, as real
//! implementations do.

use crate::gap::{GapConfig, KernelCtx};

/// Above this size ratio, intersect via binary search instead of merging.
const SKEW_RATIO: usize = 16;

pub(crate) fn run(ctx: &mut KernelCtx<'_>, _cfg: &GapConfig) {
    let n = ctx.g.n;
    let cores = ctx.t.cores();

    // Degree-descending rank (GAP relabels; we keep a rank array).
    let mut order: Vec<u32> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(ctx.g.degree(v)));
    let mut rank = vec![0u32; n as usize];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }

    // Filtered adjacency A[v] = { u in N(v) : rank[u] > rank[v] }, stored
    // as indices into the CSR target array so the trace loads real
    // addresses.
    let mut filt: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    for v in 0..n {
        let lo = ctx.g.offsets[v as usize];
        let hi = ctx.g.offsets[v as usize + 1];
        for idx in lo..hi {
            let u = ctx.g.targets[idx as usize];
            if rank[u as usize] > rank[v as usize] {
                filt[v as usize].push(idx);
            }
        }
    }

    // Parallelize over (v, u) pairs round-robin — the trace analogue of
    // GAP's dynamic OpenMP scheduling. Per-vertex assignment cannot
    // balance an RMAT graph: the hub vertex alone owns most of the
    // intersection work.
    let mut triangles: u64 = 0;
    let mut pair: usize = 0;
    for v in 0..n {
        let av = filt[v as usize].clone();
        for &uidx in &av {
            let core = pair % cores;
            pair += 1;
            let u = ctx.g.targets[uidx as usize];
            ctx.t.load(core, ctx.tgts.addr(u64::from(uidx)));
            let au = &filt[u as usize];
            let (small, large) = if av.len() <= au.len() {
                (&av, au)
            } else {
                (au, &av)
            };
            if large.len() > SKEW_RATIO * small.len().max(1) {
                triangles += intersect_binary(ctx, core, small, large);
            } else {
                triangles += intersect_merge(ctx, core, &av, au);
            }
        }
    }
    ctx.t.barrier();
    // Core 0 reduces the per-core counts.
    ctx.t.compute(0, 8 + (triangles % 8) as u32);
    ctx.t.barrier();
}

/// Two-pointer merge intersection; each pointer advance loads the newly
/// examined CSR entry.
fn intersect_merge(ctx: &mut KernelCtx<'_>, core: usize, av: &[u32], au: &[u32]) -> u64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut found = 0u64;
    let mut steps = 0u32;
    if !av.is_empty() && !au.is_empty() {
        ctx.t.load(core, ctx.tgts.addr(u64::from(av[0])));
        ctx.t.load(core, ctx.tgts.addr(u64::from(au[0])));
    }
    while i < av.len() && j < au.len() {
        let a = ctx.g.targets[av[i] as usize];
        let b = ctx.g.targets[au[j] as usize];
        match a.cmp(&b) {
            std::cmp::Ordering::Equal => {
                found += 1;
                i += 1;
                j += 1;
                if i < av.len() {
                    ctx.t.load(core, ctx.tgts.addr(u64::from(av[i])));
                }
                if j < au.len() {
                    ctx.t.load(core, ctx.tgts.addr(u64::from(au[j])));
                }
            }
            std::cmp::Ordering::Less => {
                i += 1;
                if i < av.len() {
                    ctx.t.load(core, ctx.tgts.addr(u64::from(av[i])));
                }
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                if j < au.len() {
                    ctx.t.load(core, ctx.tgts.addr(u64::from(au[j])));
                }
            }
        }
        steps += 1;
    }
    ctx.t.compute(core, steps.max(1));
    found
}

/// Binary-search intersection for skewed pairs: each probe of the large
/// list is a chain of dependent loads (the classic log₂ pattern).
fn intersect_binary(ctx: &mut KernelCtx<'_>, core: usize, small: &[u32], large: &[u32]) -> u64 {
    let mut found = 0u64;
    for &sidx in small {
        let needle = ctx.g.targets[sidx as usize];
        ctx.t.load(core, ctx.tgts.addr(u64::from(sidx)));
        let (mut lo, mut hi) = (0usize, large.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let lidx = large[mid];
            ctx.t.load(core, ctx.tgts.addr(u64::from(lidx)));
            let val = ctx.g.targets[lidx as usize];
            match val.cmp(&needle) {
                std::cmp::Ordering::Equal => {
                    found += 1;
                    break;
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        ctx.t.compute(core, 2);
    }
    found
}

#[cfg(test)]
mod tests {
    use crate::gap::{GapConfig, GapKernel};
    use crate::graph::Graph;
    use dramstack_cpu::Instr;

    #[test]
    fn tc_loads_dominate_and_intersections_happen() {
        let g = Graph::kronecker(9, 6, 13);
        let traces = GapKernel::Tc.trace(&g, 1, &GapConfig::default());
        let loads = traces[0]
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        assert!(
            loads > g.edge_count(),
            "every filtered edge examined at least once"
        );
    }

    #[test]
    fn tc_on_triangle_free_graph_is_cheap() {
        // A star graph has no triangles and little intersection work.
        let edges: Vec<(u32, u32)> = (1..64u32).map(|v| (0, v)).collect();
        let star = Graph::from_edges(64, &edges);
        let t_star = GapKernel::Tc.trace(&star, 1, &GapConfig::default());
        let g = Graph::kronecker(6, 8, 1);
        let t_kron = GapKernel::Tc.trace(&g, 1, &GapConfig::default());
        assert!(t_star[0].len() < t_kron[0].len());
    }

    #[test]
    fn tc_work_is_balanced_across_cores() {
        // Round-robin assignment: no core should hold the vast majority
        // of the work even on a skewed RMAT graph.
        let g = Graph::kronecker(10, 8, 3);
        let traces = GapKernel::Tc.trace(&g, 8, &GapConfig::default());
        let sizes: Vec<usize> = traces.iter().map(Vec::len).collect();
        let max = *sizes.iter().max().unwrap();
        let total: usize = sizes.iter().sum();
        assert!(
            max < total / 2,
            "one core holds {max} of {total} instructions: {sizes:?}"
        );
    }

    #[test]
    fn triangle_count_is_independent_of_core_count() {
        // The reduction compute op encodes triangles % 8; it must not
        // change with parallelism (the count is a graph property).
        let g = Graph::kronecker(8, 6, 7);
        let find_marker = |traces: &Vec<Vec<Instr>>| -> u32 {
            // The final compute on core 0 before the last barrier.
            traces[0]
                .iter()
                .rev()
                .find_map(|i| match i {
                    Instr::Compute { count } => Some(*count),
                    _ => None,
                })
                .unwrap()
        };
        let one = GapKernel::Tc.trace(&g, 1, &GapConfig::default());
        let four = GapKernel::Tc.trace(&g, 4, &GapConfig::default());
        assert_eq!(find_marker(&one), find_marker(&four));
    }
}
