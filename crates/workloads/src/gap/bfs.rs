//! Direction-optimizing breadth-first search (Beamer's algorithm, as in
//! GAP): top-down steps while the frontier is small, bottom-up steps once
//! it covers a significant fraction of the graph. The switch produces the
//! forward/backward phase behaviour visible in the paper's Fig. 7.

use crate::gap::{GapConfig, KernelCtx};
use crate::trace::hash_bit;

/// Frontier-size fraction above which BFS switches to bottom-up.
const BOTTOM_UP_DIVISOR: u64 = 16;

pub(crate) fn run(ctx: &mut KernelCtx<'_>, cfg: &GapConfig) {
    let n = u64::from(ctx.g.n);
    let cores = ctx.t.cores();
    let parent_arr = ctx.alloc(n, 4);
    let front_arr = ctx.alloc(n, 4);
    let next_arr = ctx.alloc(n, 4);
    let bitmap_arr = ctx.alloc(n.div_ceil(64), 8);

    let src = ctx.g.max_degree_vertex();
    let mut parent = vec![u32::MAX; n as usize];
    parent[src as usize] = src;
    let mut frontier = vec![src];
    let mut iter: u64 = 0;

    while !frontier.is_empty() {
        let bottom_up = frontier.len() as u64 > n / BOTTOM_UP_DIVISOR;
        let mut next: Vec<u32> = Vec::new();

        if !bottom_up {
            // Top-down: cores split the frontier queue.
            for core in 0..cores {
                let r = ctx.t.chunk(frontier.len() as u64, core);
                for i in r {
                    let v = frontier[i as usize];
                    ctx.t.load(core, front_arr.addr(i));
                    let neigh = ctx.scan_neighbors(core, v);
                    for u in neigh {
                        ctx.t.load(core, parent_arr.addr(u64::from(u)));
                        let claim = parent[u as usize] == u32::MAX;
                        ctx.t.branch(
                            core,
                            hash_bit(u64::from(u) ^ (iter << 32), cfg.mispredict_pct, 100),
                        );
                        if claim {
                            parent[u as usize] = v;
                            ctx.t.store(core, parent_arr.addr(u64::from(u)));
                            ctx.t.store(core, next_arr.addr(next.len() as u64));
                            next.push(u);
                        }
                    }
                    ctx.t.compute(core, 2);
                }
            }
        } else {
            // Bottom-up: cores split all vertices; unvisited vertices look
            // for any parent in the current frontier (early exit).
            let in_front: Vec<bool> = {
                let mut b = vec![false; n as usize];
                for &v in &frontier {
                    b[v as usize] = true;
                }
                b
            };
            for core in 0..cores {
                let r = ctx.t.chunk(n, core);
                for v in r {
                    ctx.t.load(core, parent_arr.addr(v));
                    if parent[v as usize] != u32::MAX {
                        continue;
                    }
                    let (lo, hi) = ctx.load_offsets(core, v as u32);
                    let mut claimed = false;
                    for idx in lo..hi {
                        let u = ctx.g.targets[idx as usize];
                        ctx.t.load(core, ctx.tgts.addr(u64::from(idx)));
                        ctx.t.load(core, bitmap_arr.addr(u64::from(u) / 64));
                        if in_front[u as usize] {
                            parent[v as usize] = u;
                            ctx.t.store(core, parent_arr.addr(v));
                            ctx.t.store(core, bitmap_arr.addr(v / 64));
                            next.push(v as u32);
                            claimed = true;
                            break; // early exit: found a parent
                        }
                    }
                    ctx.t
                        .branch(core, hash_bit(v ^ (iter << 24), cfg.mispredict_pct, 100));
                    if claimed {
                        ctx.t.compute(core, 1);
                    }
                }
            }
        }

        ctx.t.barrier();
        // Core 0 housekeeping: swap frontier buffers, update counters.
        ctx.t.compute(0, 16);
        ctx.t.barrier();
        frontier = next;
        iter += 1;
    }
}

#[cfg(test)]
mod tests {
    use crate::gap::{GapConfig, GapKernel};
    use crate::graph::Graph;

    #[test]
    fn bfs_has_multiple_synchronized_iterations() {
        let g = Graph::kronecker(9, 6, 3);
        let traces = GapKernel::Bfs.trace(&g, 2, &GapConfig::default());
        let barriers = traces[0]
            .iter()
            .filter(|i| matches!(i, dramstack_cpu::Instr::Barrier { .. }))
            .count();
        // ≥ 2 barriers per BFS level, several levels.
        assert!(barriers >= 6, "got {barriers} barriers");
    }

    #[test]
    fn bfs_visits_the_whole_component() {
        // Every vertex reachable from the max-degree source gets exactly
        // one parent store (top-down) or one parent store (bottom-up):
        // stores to parent_arr ≥ component size − 1. We check indirectly:
        // the trace mentions a store for most vertices of a well-connected
        // graph.
        let g = Graph::uniform(512, 8, 9);
        let traces = GapKernel::Bfs.trace(&g, 1, &GapConfig::default());
        let stores = traces[0]
            .iter()
            .filter(|i| matches!(i, dramstack_cpu::Instr::Store { .. }))
            .count();
        assert!(
            stores > 400,
            "most of the graph should be claimed: {stores}"
        );
    }
}
