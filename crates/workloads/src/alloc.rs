//! A bump allocator assigning physical address ranges to workload data
//! structures.
//!
//! GAP kernels run as real Rust algorithms; every array they touch gets a
//! region in the simulated physical address space so the emitted loads and
//! stores land on realistic, distinct DRAM rows.

use serde::{Deserialize, Serialize};

/// Bump allocator over the simulated physical address space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressSpace {
    next: u64,
    align: u64,
}

impl AddressSpace {
    /// Starts allocating at `base` (page-aligned regions thereafter).
    pub fn new(base: u64) -> Self {
        AddressSpace {
            next: base,
            align: 4096,
        }
    }

    /// Allocates `elems` elements of `elem_bytes` each, aligned to a page.
    pub fn alloc(&mut self, elems: u64, elem_bytes: u32) -> ArrayRef {
        let base = self.next;
        let bytes = elems * u64::from(elem_bytes);
        self.next = (base + bytes).div_ceil(self.align) * self.align;
        ArrayRef {
            base,
            elem_bytes,
            len: elems,
        }
    }

    /// Next free address.
    pub fn watermark(&self) -> u64 {
        self.next
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        // Skip the first 16 MB (as an OS would reserve low memory).
        AddressSpace::new(16 << 20)
    }
}

/// A simulated array: a base address plus element size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayRef {
    /// First byte of the region.
    pub base: u64,
    /// Bytes per element.
    pub elem_bytes: u32,
    /// Number of elements.
    pub len: u64,
}

impl ArrayRef {
    /// Byte address of element `idx`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `idx` is in bounds.
    pub fn addr(&self, idx: u64) -> u64 {
        debug_assert!(idx < self.len, "index {idx} out of bounds ({})", self.len);
        self.base + idx * u64::from(self.elem_bytes)
    }

    /// Total bytes covered.
    pub fn bytes(&self) -> u64 {
        self.len * u64::from(self.elem_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut s = AddressSpace::new(0);
        let a = s.alloc(1000, 4);
        let b = s.alloc(10, 8);
        assert!(a.base + a.bytes() <= b.base);
        assert_eq!(b.base % 4096, 0);
        assert!(s.watermark() >= b.base + b.bytes());
    }

    #[test]
    fn element_addressing() {
        let mut s = AddressSpace::new(4096);
        let a = s.alloc(100, 8);
        assert_eq!(a.addr(0), 4096);
        assert_eq!(a.addr(7), 4096 + 56);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)]
    fn out_of_bounds_is_caught_in_debug() {
        let mut s = AddressSpace::new(0);
        let a = s.alloc(4, 4);
        let _ = a.addr(4);
    }
}
