//! STREAM-style bandwidth kernels (McCalpin): copy, scale, add, triad.
//!
//! The canonical way to measure sustainable memory bandwidth — and a
//! natural companion to bandwidth stacks, because each kernel has a
//! different read:write ratio and therefore a different stack shape
//! (triad reads two arrays per store; copy reads one).

use serde::{Deserialize, Serialize};

use dramstack_cpu::Instr;

use crate::alloc::AddressSpace;
use crate::trace::TraceBuilder;

/// The four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKernel {
    /// `c[i] = a[i]` — 1 read : 1 write (plus the write-allocate read).
    Copy,
    /// `b[i] = α·c[i]` — 1 read : 1 write with a multiply.
    Scale,
    /// `c[i] = a[i] + b[i]` — 2 reads : 1 write.
    Add,
    /// `a[i] = b[i] + α·c[i]` — 2 reads : 1 write with a multiply-add.
    Triad,
}

impl StreamKernel {
    /// All kernels in STREAM's traditional order.
    pub const ALL: [StreamKernel; 4] = [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ];

    /// STREAM's name for the kernel.
    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "copy",
            StreamKernel::Scale => "scale",
            StreamKernel::Add => "add",
            StreamKernel::Triad => "triad",
        }
    }

    /// Bytes moved per element by the *algorithm* (reads + the store),
    /// STREAM's counting convention (8-byte elements).
    pub fn bytes_per_element(self) -> u64 {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }

    /// ALU operations modeled per element.
    fn flops(self) -> u32 {
        match self {
            StreamKernel::Copy => 1,
            StreamKernel::Scale => 2,
            StreamKernel::Add => 2,
            StreamKernel::Triad => 3,
        }
    }
}

impl std::fmt::Display for StreamKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates one pass of `kernel` over arrays of `elems` 8-byte elements,
/// statically chunked over `n_cores` cores with a barrier at the end.
pub fn stream_trace(kernel: StreamKernel, n_cores: usize, elems: u64) -> Vec<Vec<Instr>> {
    let mut space = AddressSpace::default();
    let a = space.alloc(elems, 8);
    let b = space.alloc(elems, 8);
    let c = space.alloc(elems, 8);
    let mut t = TraceBuilder::new(n_cores);
    for core in 0..n_cores {
        for i in t.chunk(elems, core) {
            match kernel {
                StreamKernel::Copy => {
                    t.load(core, a.addr(i));
                    t.store(core, c.addr(i));
                }
                StreamKernel::Scale => {
                    t.load(core, c.addr(i));
                    t.store(core, b.addr(i));
                }
                StreamKernel::Add => {
                    t.load(core, a.addr(i));
                    t.load(core, b.addr(i));
                    t.store(core, c.addr(i));
                }
                StreamKernel::Triad => {
                    t.load(core, b.addr(i));
                    t.load(core, c.addr(i));
                    t.store(core, a.addr(i));
                }
            }
            t.compute(core, kernel.flops());
        }
    }
    t.barrier();
    t.into_traces()
}

/// Generates `repeats` passes of all four kernels in STREAM order, with
/// barriers between passes — the standard benchmark loop.
pub fn stream_benchmark(n_cores: usize, elems: u64, repeats: u32) -> Vec<Vec<Instr>> {
    let mut space = AddressSpace::default();
    let a = space.alloc(elems, 8);
    let b = space.alloc(elems, 8);
    let c = space.alloc(elems, 8);
    let mut t = TraceBuilder::new(n_cores);
    for _ in 0..repeats {
        for kernel in StreamKernel::ALL {
            for core in 0..n_cores {
                for i in t.chunk(elems, core) {
                    match kernel {
                        StreamKernel::Copy => {
                            t.load(core, a.addr(i));
                            t.store(core, c.addr(i));
                        }
                        StreamKernel::Scale => {
                            t.load(core, c.addr(i));
                            t.store(core, b.addr(i));
                        }
                        StreamKernel::Add => {
                            t.load(core, a.addr(i));
                            t.load(core, b.addr(i));
                            t.store(core, c.addr(i));
                        }
                        StreamKernel::Triad => {
                            t.load(core, b.addr(i));
                            t.load(core, c.addr(i));
                            t.store(core, a.addr(i));
                        }
                    }
                    t.compute(core, kernel.flops());
                }
            }
            t.barrier();
        }
    }
    t.into_traces()
}

/// A pointer-chase (lat_mem_rd-style) trace: `count` dependent loads with
/// the given stride over `footprint_bytes`, measuring *loaded* latency —
/// the latency stack's natural microbenchmark. A stride of one DRAM row
/// (8 KiB) makes every access a row miss; a 64 B stride gets row hits.
pub fn pointer_chase_trace(footprint_bytes: u64, stride: u64, count: u64) -> Vec<Vec<Instr>> {
    assert!(stride >= 8, "stride below one element");
    let mut t = TraceBuilder::new(1);
    let base = 0x4000_0000u64;
    let mut pos = 0u64;
    for _ in 0..count {
        t.chain_load(0, base + pos, 0);
        pos = (pos + stride) % footprint_bytes;
    }
    t.into_traces()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(trace: &[Instr], f: impl Fn(&Instr) -> bool) -> usize {
        trace.iter().filter(|i| f(i)).count()
    }

    #[test]
    fn kernel_read_write_ratios() {
        for k in StreamKernel::ALL {
            let traces = stream_trace(k, 1, 100);
            let loads = count(&traces[0], |i| matches!(i, Instr::Load { .. }));
            let stores = count(&traces[0], |i| matches!(i, Instr::Store { .. }));
            assert_eq!(stores, 100, "{k}");
            let expected_loads = match k {
                StreamKernel::Copy | StreamKernel::Scale => 100,
                StreamKernel::Add | StreamKernel::Triad => 200,
            };
            assert_eq!(loads, expected_loads, "{k}");
        }
    }

    #[test]
    fn bytes_per_element_follows_stream_convention() {
        assert_eq!(StreamKernel::Copy.bytes_per_element(), 16);
        assert_eq!(StreamKernel::Triad.bytes_per_element(), 24);
    }

    #[test]
    fn chunks_split_work_evenly() {
        let traces = stream_trace(StreamKernel::Add, 4, 1000);
        let sizes: Vec<usize> = traces.iter().map(Vec::len).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 8, "{sizes:?}");
    }

    #[test]
    fn benchmark_has_barriers_between_kernels() {
        let traces = stream_benchmark(2, 50, 2);
        let barriers = count(&traces[0], |i| matches!(i, Instr::Barrier { .. }));
        assert_eq!(barriers, 2 * 4, "one barrier per kernel pass");
    }

    #[test]
    fn pointer_chase_is_fully_dependent() {
        let traces = pointer_chase_trace(1 << 20, 8192, 500);
        assert_eq!(traces.len(), 1);
        let chains = count(&traces[0], |i| {
            matches!(i, Instr::ChainLoad { chain: 0, .. })
        });
        assert_eq!(chains, 500);
        // Strided addresses wrap within the footprint.
        for i in &traces[0] {
            if let Instr::ChainLoad { addr, .. } = i {
                assert!(*addr >= 0x4000_0000 && *addr < 0x4000_0000 + (1 << 20));
            }
        }
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn tiny_stride_is_rejected() {
        let _ = pointer_chase_trace(4096, 4, 10);
    }
}
