//! Per-core instruction trace construction with barriers.
//!
//! The GAP kernels execute their algorithm once, emitting per-core
//! instruction traces through this builder. Parallel regions follow the
//! OpenMP static-schedule model: vertices are split into contiguous
//! chunks, one per core, with a global barrier at region end.

use dramstack_cpu::{Instr, VecStream};

/// Builds one instruction trace per core.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    cores: Vec<Vec<Instr>>,
    next_barrier: u32,
}

impl TraceBuilder {
    /// A builder for `n_cores` traces.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0);
        TraceBuilder {
            cores: vec![Vec::new(); n_cores],
            next_barrier: 0,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Emits a load on `core`.
    pub fn load(&mut self, core: usize, addr: u64) {
        self.cores[core].push(Instr::Load { addr });
    }

    /// Emits a dependent (chained) load on `core`.
    pub fn chain_load(&mut self, core: usize, addr: u64, chain: u8) {
        self.cores[core].push(Instr::ChainLoad { addr, chain });
    }

    /// Emits a store on `core`.
    pub fn store(&mut self, core: usize, addr: u64) {
        self.cores[core].push(Instr::Store { addr });
    }

    /// Emits `n` ALU operations on `core`.
    pub fn compute(&mut self, core: usize, n: u32) {
        if n > 0 {
            self.cores[core].push(Instr::Compute { count: n });
        }
    }

    /// Emits a branch on `core`; mispredicted with the given flag.
    pub fn branch(&mut self, core: usize, mispredict: bool) {
        self.cores[core].push(Instr::Branch { mispredict });
    }

    /// Emits a global barrier across all cores.
    pub fn barrier(&mut self) {
        let id = self.next_barrier;
        self.next_barrier += 1;
        for c in &mut self.cores {
            c.push(Instr::Barrier { id });
        }
    }

    /// Splits `0..total` into the contiguous chunk handled by `core` —
    /// OpenMP static scheduling.
    pub fn chunk(&self, total: u64, core: usize) -> std::ops::Range<u64> {
        chunk_of(total, self.cores(), core)
    }

    /// Total instructions emitted on `core`.
    pub fn len(&self, core: usize) -> usize {
        self.cores[core].len()
    }

    /// Whether no instruction was emitted anywhere.
    pub fn is_empty(&self) -> bool {
        self.cores.iter().all(Vec::is_empty)
    }

    /// Finishes the build, returning one stream per core.
    pub fn into_streams(self) -> Vec<VecStream> {
        self.cores.into_iter().map(VecStream::new).collect()
    }

    /// Finishes the build, returning the raw instruction vectors.
    pub fn into_traces(self) -> Vec<Vec<Instr>> {
        self.cores
    }
}

/// The contiguous chunk of `0..total` that `core` of `n_cores` handles.
pub fn chunk_of(total: u64, n_cores: usize, core: usize) -> std::ops::Range<u64> {
    let n = n_cores as u64;
    let c = core as u64;
    let per = total / n;
    let rem = total % n;
    let start = c * per + c.min(rem);
    let len = per + u64::from(c < rem);
    start..start + len
}

/// Deterministic pseudo-random bit from a value — used for branch
/// mispredict decisions so traces stay reproducible.
pub fn hash_bit(v: u64, p_num: u64, p_den: u64) -> bool {
    // SplitMix64 finalizer.
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % p_den) < p_num
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_cpu::InstrStream;

    #[test]
    fn chunks_partition_exactly() {
        for total in [0u64, 1, 7, 100, 101, 103] {
            for n in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut expected_start = 0;
                for c in 0..n {
                    let r = chunk_of(total, n, c);
                    assert_eq!(r.start, expected_start, "total={total} n={n} core={c}");
                    expected_start = r.end;
                    covered += r.end - r.start;
                }
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn barrier_ids_are_global_and_increasing() {
        let mut t = TraceBuilder::new(2);
        t.load(0, 64);
        t.barrier();
        t.store(1, 128);
        t.barrier();
        let traces = t.into_traces();
        assert_eq!(traces[0][1], Instr::Barrier { id: 0 });
        assert_eq!(traces[1][0], Instr::Barrier { id: 0 });
        assert_eq!(*traces[0].last().unwrap(), Instr::Barrier { id: 1 });
    }

    #[test]
    fn streams_replay_in_order() {
        let mut t = TraceBuilder::new(1);
        t.load(0, 64);
        t.compute(0, 3);
        t.compute(0, 0); // elided
        t.branch(0, false);
        let mut s = t.into_streams().remove(0);
        assert_eq!(s.next_instr(), Some(Instr::Load { addr: 64 }));
        assert_eq!(s.next_instr(), Some(Instr::Compute { count: 3 }));
        assert_eq!(s.next_instr(), Some(Instr::Branch { mispredict: false }));
        assert_eq!(s.next_instr(), None);
    }

    #[test]
    fn hash_bit_is_deterministic_and_roughly_proportional() {
        let hits = (0..10_000).filter(|&v| hash_bit(v, 1, 10)).count();
        assert!((800..1200).contains(&hits), "got {hits} / 10000 at p=0.1");
        assert_eq!(hash_bit(42, 1, 10), hash_bit(42, 1, 10));
    }
}
