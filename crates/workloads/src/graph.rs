//! Synthetic graphs in CSR form for the GAP-style kernels.
//!
//! The GAP benchmark suite evaluates on Kronecker (RMAT) and uniform
//! random graphs; we generate scaled-down versions of both. Graphs are
//! symmetrized (each edge stored in both directions) and adjacency lists
//! are sorted, as GAP's builder does.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An undirected graph in compressed-sparse-row form.
///
/// # Example
///
/// ```
/// use dramstack_workloads::Graph;
///
/// let g = Graph::kronecker(8, 4, 42); // 256 vertices, RMAT-skewed
/// assert_eq!(g.n, 256);
/// let hub = g.max_degree_vertex();
/// assert!(g.degree(hub) as usize >= g.edge_count() / g.n as usize);
/// for &u in g.neighbors(hub) {
///     assert!(u < g.n);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// Number of vertices.
    pub n: u32,
    /// CSR offsets, `n + 1` entries.
    pub offsets: Vec<u32>,
    /// Sorted neighbor lists, concatenated.
    pub targets: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list, symmetrizing and sorting.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0u32; n as usize + 1];
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        let mut offsets = deg;
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; offsets[n as usize] as usize];
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n as usize {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Graph {
            n,
            offsets,
            targets,
        }
    }

    /// A Kronecker (RMAT) graph with `2^scale` vertices and
    /// `degree × 2^scale` directed edges before symmetrization, using
    /// GAP's (A,B,C) = (0.57, 0.19, 0.19).
    pub fn kronecker(scale: u32, degree: u32, seed: u64) -> Self {
        let n = 1u32 << scale;
        let m = u64::from(n) * u64::from(degree);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(m as usize);
        for _ in 0..m {
            let (mut u, mut v) = (0u32, 0u32);
            for _ in 0..scale {
                u <<= 1;
                v <<= 1;
                let r: f64 = rng.gen();
                if r < 0.57 {
                    // quadrant A: (0,0)
                } else if r < 0.76 {
                    v |= 1; // B
                } else if r < 0.95 {
                    u |= 1; // C
                } else {
                    u |= 1;
                    v |= 1; // D
                }
            }
            edges.push((u, v));
        }
        Self::from_edges(n, &edges)
    }

    /// A uniform random graph with `n` vertices and `n × degree` edges.
    pub fn uniform(n: u32, degree: u32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = u64::from(n) * u64::from(degree);
        let edges: Vec<_> = (0..m)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        Self::from_edges(n, &edges)
    }

    /// Number of directed edges stored (twice the undirected edge count).
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: u32) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbors of `v`, sorted ascending.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The vertex with the highest degree — GAP's BFS source heuristic
    /// favors well-connected sources.
    pub fn max_degree_vertex(&self) -> u32 {
        (0..self.n).max_by_key(|&v| self.degree(v)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_edges_symmetrizes_and_sorts() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (3, 3)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.neighbors(3), &[] as &[u32], "self loop dropped");
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn kronecker_is_skewed() {
        let g = Graph::kronecker(10, 8, 42);
        assert_eq!(g.n, 1024);
        let max_deg = g.degree(g.max_degree_vertex());
        let avg = g.edge_count() as f64 / f64::from(g.n);
        assert!(
            f64::from(max_deg) > 4.0 * avg,
            "RMAT should be skewed: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn uniform_is_not_too_skewed() {
        let g = Graph::uniform(1024, 8, 7);
        let max_deg = g.degree(g.max_degree_vertex());
        let avg = g.edge_count() as f64 / f64::from(g.n);
        assert!(
            f64::from(max_deg) < 4.0 * avg,
            "uniform: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(Graph::kronecker(8, 4, 1), Graph::kronecker(8, 4, 1));
        assert_ne!(Graph::kronecker(8, 4, 1), Graph::kronecker(8, 4, 2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn csr_is_well_formed(scale in 4u32..9, degree in 1u32..8, seed in 0u64..100) {
            let g = Graph::kronecker(scale, degree, seed);
            prop_assert_eq!(g.offsets.len(), g.n as usize + 1);
            prop_assert_eq!(g.offsets[0], 0);
            prop_assert!(g.offsets.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(*g.offsets.last().unwrap() as usize, g.targets.len());
            for v in 0..g.n {
                for &t in g.neighbors(v) {
                    prop_assert!(t < g.n);
                }
            }
        }

        #[test]
        fn symmetry_holds(seed in 0u64..50) {
            let g = Graph::kronecker(6, 3, seed);
            for v in 0..g.n {
                for &t in g.neighbors(v) {
                    prop_assert!(
                        g.neighbors(t).binary_search(&v).is_ok(),
                        "edge {}->{} missing reverse", v, t
                    );
                }
            }
        }
    }
}
