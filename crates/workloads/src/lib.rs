//! Workloads for the DRAM-stack simulator: the paper's synthetic
//! sequential/random streams (Section VI–VII) and GAP-style graph kernels
//! (Section VIII), all as deterministic per-core instruction generators.
//!
//! # Example
//!
//! ```
//! use dramstack_workloads::{SyntheticPattern, Graph, GapKernel, GapConfig};
//! use dramstack_cpu::InstrStream;
//!
//! // A sequential read-only stream for core 0.
//! let mut stream = SyntheticPattern::sequential(0.0).stream_for_core(0, 1);
//! assert!(stream.next_instr().is_some());
//!
//! // A BFS trace over a Kronecker graph for 4 cores.
//! let g = Graph::kronecker(8, 4, 42);
//! let traces = GapKernel::Bfs.trace(&g, 4, &GapConfig::default());
//! assert_eq!(traces.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
pub mod gap;
mod graph;
pub mod stream;
mod synthetic;
mod trace;

pub use alloc::{AddressSpace, ArrayRef};
pub use gap::{GapConfig, GapKernel};
pub use graph::Graph;
pub use stream::{pointer_chase_trace, stream_benchmark, stream_trace, StreamKernel};
pub use synthetic::{PatternKind, SyntheticPattern, SyntheticStream};
pub use trace::{chunk_of, hash_bit, TraceBuilder};
