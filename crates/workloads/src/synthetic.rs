//! The paper's synthetic validation workloads: sequential and random
//! memory streams with a configurable store fraction (Section VI).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dramstack_cpu::{Instr, InstrStream};

/// Access-pattern shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternKind {
    /// Consecutive 8-byte words walking a private region — perfect spatial
    /// locality, prefetcher-friendly, ~99 % page hits.
    Sequential,
    /// Uniformly random cache lines in a private region — no locality,
    /// ~0 % page hits, MLP bounded by dependence chains.
    Random,
}

/// A synthetic per-core memory stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticPattern {
    /// Sequential or random.
    pub kind: PatternKind,
    /// Fraction of memory operations that are stores, in `[0, 1]`.
    pub store_fraction: f64,
    /// Bytes of private footprint per core.
    pub footprint_bytes: u64,
    /// ALU operations between consecutive memory operations.
    pub compute_per_op: u32,
    /// Independent dependence chains for the random pattern (its
    /// memory-level parallelism).
    pub chains: u8,
    /// RNG seed (streams are deterministic given the seed and core id).
    pub seed: u64,
}

impl SyntheticPattern {
    /// The paper's sequential pattern with the given store fraction.
    /// Ten ALU ops per memory op make a single core request-limited (the
    /// paper's 1-core stream reaches a third of peak), while 2+ cores
    /// approach the channel limit.
    pub fn sequential(store_fraction: f64) -> Self {
        SyntheticPattern {
            kind: PatternKind::Sequential,
            store_fraction,
            footprint_bytes: 256 << 20,
            compute_per_op: 10,
            chains: 2,
            seed: 0xD5A7,
        }
    }

    /// The paper's random pattern with the given store fraction. Its
    /// request rate is bounded by the dependence chains, not the compute
    /// mix.
    pub fn random(store_fraction: f64) -> Self {
        SyntheticPattern {
            kind: PatternKind::Random,
            compute_per_op: 1,
            ..Self::sequential(store_fraction)
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a store fraction outside `[0, 1]` or a zero footprint.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.store_fraction),
            "store fraction out of range"
        );
        assert!(self.footprint_bytes >= 4096, "footprint too small");
        assert!(self.chains > 0, "need at least one chain");
    }

    /// Base physical address of `core`'s private region.
    pub fn region_base(&self, core: usize) -> u64 {
        0x1000_0000 + core as u64 * self.footprint_bytes.next_power_of_two()
    }

    /// Starting offset of `core`'s sequential walk within its region.
    /// Cores start 17 DRAM rows apart so concurrent streams land on
    /// different banks *and* rows — lockstep streams on the same bank
    /// would serialize unrealistically.
    pub fn start_offset(&self, core: usize) -> u64 {
        (core as u64 * 17 * 8192) % self.footprint_bytes
    }

    /// Lines (with dirtiness) to functionally pre-fill into the LLC so a
    /// steady-state measurement starts with a realistically warm cache:
    /// the lines the stream would have touched just *before* its starting
    /// position, oldest first (so LRU evicts them in stream order).
    ///
    /// A line is dirty when any of its words was stored: probability
    /// `1 − (1 − f)^8` for the sequential pattern (8 words per line) and
    /// `f` for the random one (one touch per line).
    pub fn warm_lines(&self, core: usize, count: u64) -> Vec<(u64, bool)> {
        self.validate();
        let base = self.region_base(core);
        let lines = self.footprint_bytes / 64;
        let count = count.min(lines);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xBEEF ^ (core as u64) << 17);
        match self.kind {
            PatternKind::Sequential => {
                let touches_per_line = 8u32;
                let p_dirty = 1.0 - (1.0 - self.store_fraction).powi(touches_per_line as i32);
                let start_line = self.start_offset(core) / 64;
                (0..count)
                    .map(|i| {
                        // k = count − i steps behind the start, wrapping.
                        let k = count - i;
                        let line = base + ((start_line + lines - k) % lines) * 64;
                        (line, rng.gen::<f64>() < p_dirty)
                    })
                    .collect()
            }
            PatternKind::Random => (0..count)
                .map(|_| {
                    let line = base + rng.gen_range(0..lines) * 64;
                    (line, rng.gen::<f64>() < self.store_fraction)
                })
                .collect(),
        }
    }

    /// Builds the endless instruction stream for `core` (of `n_cores`).
    /// Each core walks a disjoint region, as in the paper's setup where
    /// "each core accesses different parts of the sequential pattern".
    pub fn stream_for_core(&self, core: usize, _n_cores: usize) -> SyntheticStream {
        self.validate();
        SyntheticStream {
            cfg: *self,
            base: self.region_base(core),
            rng: SmallRng::seed_from_u64(self.seed ^ (core as u64).wrapping_mul(0x9E37)),
            pos: self.start_offset(core),
            op_idx: 0,
            lines: self.footprint_bytes / 64,
            emit_compute: false,
        }
    }
}

/// The endless per-core instruction stream of a [`SyntheticPattern`].
///
/// Fully checkpointable: [`InstrStream::checkpoint`] captures the RNG state
/// and walk position, and restoring those words into a freshly built stream
/// of the same pattern/core continues the exact instruction sequence.
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    cfg: SyntheticPattern,
    base: u64,
    rng: SmallRng,
    pos: u64,
    op_idx: u64,
    lines: u64,
    emit_compute: bool,
}

impl InstrStream for SyntheticStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.emit_compute && self.cfg.compute_per_op > 0 {
            self.emit_compute = false;
            return Some(Instr::Compute {
                count: self.cfg.compute_per_op,
            });
        }
        self.emit_compute = true;
        let is_store = self.rng.gen::<f64>() < self.cfg.store_fraction;
        self.op_idx += 1;
        let instr = match self.cfg.kind {
            PatternKind::Sequential => {
                let addr = self.base + self.pos;
                self.pos = (self.pos + 8) % self.cfg.footprint_bytes;
                if is_store {
                    Instr::Store { addr }
                } else {
                    Instr::Load { addr }
                }
            }
            PatternKind::Random => {
                let line = self.rng.gen_range(0..self.lines);
                let addr = self.base + line * 64 + self.rng.gen_range(0..8) * 8;
                if is_store {
                    Instr::Store { addr }
                } else {
                    Instr::ChainLoad {
                        addr,
                        chain: (self.op_idx % self.cfg.chains as u64) as u8,
                    }
                }
            }
        };
        Some(instr)
    }

    fn checkpoint(&self) -> Option<Vec<u64>> {
        let s = self.rng.state();
        Some(vec![
            s[0],
            s[1],
            s[2],
            s[3],
            self.pos,
            self.op_idx,
            u64::from(self.emit_compute),
        ])
    }

    fn restore_checkpoint(&mut self, state: &[u64]) -> bool {
        match state {
            [s0, s1, s2, s3, pos, op_idx, emit]
                if *emit <= 1 && *pos < self.cfg.footprint_bytes =>
            {
                self.rng = SmallRng::from_state([*s0, *s1, *s2, *s3]);
                self.pos = *pos;
                self.op_idx = *op_idx;
                self.emit_compute = *emit == 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(p: &SyntheticPattern, core: usize, n: usize) -> Vec<Instr> {
        let mut s = p.stream_for_core(core, 8);
        (0..n).map(|_| s.next_instr().expect("endless")).collect()
    }

    fn mem_addrs(instrs: &[Instr]) -> Vec<u64> {
        instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Load { addr } | Instr::Store { addr } | Instr::ChainLoad { addr, .. } => {
                    Some(*addr)
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn sequential_walks_consecutive_words() {
        let p = SyntheticPattern::sequential(0.0);
        let addrs = mem_addrs(&collect(&p, 0, 64));
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn random_addresses_are_scattered_lines() {
        let p = SyntheticPattern::random(0.0);
        let addrs = mem_addrs(&collect(&p, 0, 200));
        let mut lines: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
        lines.sort();
        lines.dedup();
        assert!(
            lines.len() > 90,
            "random lines should rarely repeat: {}",
            lines.len()
        );
    }

    #[test]
    fn store_fraction_is_respected() {
        let p = SyntheticPattern::sequential(0.5);
        let instrs = collect(&p, 0, 4000);
        let (mut loads, mut stores) = (0u32, 0u32);
        for i in &instrs {
            match i {
                Instr::Load { .. } | Instr::ChainLoad { .. } => loads += 1,
                Instr::Store { .. } => stores += 1,
                _ => {}
            }
        }
        let frac = f64::from(stores) / f64::from(loads + stores);
        assert!((frac - 0.5).abs() < 0.05, "store fraction {frac}");
    }

    #[test]
    fn cores_use_disjoint_regions() {
        let p = SyntheticPattern::sequential(0.0);
        let a0 = mem_addrs(&collect(&p, 0, 50));
        let a1 = mem_addrs(&collect(&p, 1, 50));
        let max0 = a0.iter().max().unwrap();
        let min1 = a1.iter().min().unwrap();
        assert!(max0 < min1, "core regions must not overlap");
    }

    #[test]
    fn random_loads_are_chained_for_bounded_mlp() {
        let p = SyntheticPattern::random(0.0);
        let instrs = collect(&p, 0, 100);
        let chains: std::collections::HashSet<u8> = instrs
            .iter()
            .filter_map(|i| match i {
                Instr::ChainLoad { chain, .. } => Some(*chain),
                _ => None,
            })
            .collect();
        assert_eq!(chains.len(), usize::from(p.chains));
    }

    #[test]
    fn streams_are_deterministic() {
        let p = SyntheticPattern::random(0.3);
        assert_eq!(collect(&p, 2, 100), collect(&p, 2, 100));
    }

    #[test]
    fn warm_lines_sit_just_behind_the_start() {
        let p = SyntheticPattern::sequential(0.0);
        let warm = p.warm_lines(0, 100);
        assert_eq!(warm.len(), 100);
        let base = p.region_base(0);
        let end = base + p.footprint_bytes;
        // Oldest first, newest (closest to the region end) last.
        assert_eq!(warm.last().unwrap().0, end - 64);
        assert_eq!(warm[0].0, end - 100 * 64);
        assert!(
            warm.iter().all(|(_, d)| !d),
            "read-only stream has no dirty lines"
        );
    }

    #[test]
    fn warm_lines_dirtiness_follows_store_fraction() {
        let p = SyntheticPattern::sequential(0.5);
        let warm = p.warm_lines(0, 10_000);
        let dirty = warm.iter().filter(|(_, d)| *d).count();
        // 1 − 0.5^8 ≈ 0.996.
        assert!(
            dirty > 9_800,
            "sequential w50: nearly every line dirty, got {dirty}"
        );
        let p = SyntheticPattern::random(0.3);
        let warm = p.warm_lines(0, 10_000);
        let dirty = warm.iter().filter(|(_, d)| *d).count() as f64 / 10_000.0;
        assert!((dirty - 0.3).abs() < 0.03, "random w30 dirtiness {dirty}");
    }

    #[test]
    fn checkpoint_resumes_exact_sequence() {
        for p in [
            SyntheticPattern::sequential(0.3),
            SyntheticPattern::random(0.2),
        ] {
            let mut s = p.stream_for_core(1, 4);
            // Odd prefix so the compute/memory interleave is mid-pair.
            let prefix: Vec<_> = (0..77).map(|_| s.next_instr().unwrap()).collect();
            let words = s.checkpoint().expect("synthetic streams checkpoint");
            let tail: Vec<_> = (0..200).map(|_| s.next_instr().unwrap()).collect();

            let mut r = p.stream_for_core(1, 4);
            assert!(
                r.restore_checkpoint(&words),
                "restore must accept {words:?}"
            );
            let resumed: Vec<_> = (0..200).map(|_| r.next_instr().unwrap()).collect();
            assert_eq!(resumed, tail, "resumed stream diverged after {prefix:?}");
        }
    }

    #[test]
    fn restore_rejects_malformed_state() {
        let p = SyntheticPattern::sequential(0.0);
        let mut s = p.stream_for_core(0, 1);
        assert!(!s.restore_checkpoint(&[1, 2, 3]));
        assert!(!s.restore_checkpoint(&[0, 0, 0, 0, u64::MAX, 0, 0]));
        assert!(!s.restore_checkpoint(&[0, 0, 0, 0, 0, 0, 2]));
    }

    #[test]
    #[should_panic(expected = "store fraction")]
    fn invalid_store_fraction_panics() {
        let mut p = SyntheticPattern::sequential(0.0);
        p.store_fraction = 1.5;
        let _ = p.stream_for_core(0, 1);
    }
}
