//! Property-based tests of the DRAM device: whatever (legal) command
//! sequence a controller produces, the device's invariants hold.

use proptest::prelude::*;

use dramstack_dram::{BankAddr, Command, Cycle, DeviceConfig, DramDevice, TimingParams};

/// A random stream of *requests* (not commands): the test acts as a
/// minimal controller that always obeys `earliest_*`, so every issued
/// command must be accepted.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read { bank: u8, row: u16, col: u8 },
    Write { bank: u8, row: u16, col: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (any::<bool>(), 0u8..16, 0u16..64, 0u8..128).prop_map(|(w, bank, row, col)| {
        if w {
            Op::Write { bank, row, col }
        } else {
            Op::Read { bank, row, col }
        }
    })
}

fn bank_addr(i: u8) -> BankAddr {
    BankAddr::new(0, u32::from(i) / 4, u32::from(i) % 4)
}

/// Issues `op` as a legal PRE/ACT/CAS sequence, returning the cycle after
/// which the device is consistent again.
fn issue_op(dev: &mut DramDevice, now: &mut Cycle, op: Op) {
    let (bank, row, col, write) = match op {
        Op::Read { bank, row, col } => (bank_addr(bank), u32::from(row), u32::from(col), false),
        Op::Write { bank, row, col } => (bank_addr(bank), u32::from(row), u32::from(col), true),
    };
    dev.advance(*now);
    // Refresh obligations first (a real controller must too).
    if dev.refresh_due(0, *now) {
        // Close everything, then REF.
        for b in dev.geometry().iter_banks().collect::<Vec<_>>() {
            if dev.bank(b).open_row().is_some() {
                let at = dev.earliest_precharge(b, *now).at.max(*now);
                dev.issue(Command::precharge(b), at).expect("legal PRE");
                *now = at + 1;
                dev.advance(*now);
            }
        }
        while !dev.rank_quiet(0, *now) {
            *now += 1;
            dev.advance(*now);
        }
        let end = dev.issue(Command::refresh(0), *now).expect("legal REF");
        *now = end;
        dev.advance(*now);
    }
    match dev.bank(bank).open_row() {
        Some(r) if r == row => {}
        Some(_) => {
            let at = dev.earliest_precharge(bank, *now).at.max(*now);
            dev.issue(Command::precharge(bank), at).expect("legal PRE");
            *now = at + 1;
            dev.advance(*now);
            let at = dev.earliest_activate(bank, *now).at.max(*now);
            dev.issue(Command::activate(bank, row), at)
                .expect("legal ACT");
            *now = at + 1;
        }
        None => {
            let at = dev.earliest_activate(bank, *now).at.max(*now);
            dev.issue(Command::activate(bank, row), at)
                .expect("legal ACT");
            *now = at + 1;
        }
    }
    dev.advance(*now);
    let (at, cmd) = if write {
        let e = dev.earliest_write(bank, *now);
        (e.at.max(*now), Command::write(bank, col))
    } else {
        let e = dev.earliest_read(bank, *now);
        (e.at.max(*now), Command::read(bank, col))
    };
    dev.issue(cmd, at).expect("legal CAS");
    *now = at + 1;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A controller that respects `earliest_*` never has a command
    /// rejected, and the device's counters match what was issued.
    #[test]
    fn obedient_controller_is_never_rejected(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut dev = DramDevice::new(DeviceConfig::ddr4_2400());
        let mut now: Cycle = 0;
        let mut reads = 0u64;
        let mut writes = 0u64;
        for op in ops {
            issue_op(&mut dev, &mut now, op);
            match op {
                Op::Read { .. } => reads += 1,
                Op::Write { .. } => writes += 1,
            }
        }
        let s = dev.stats();
        prop_assert_eq!(s.reads, reads);
        prop_assert_eq!(s.writes, writes);
        prop_assert_eq!(dev.bus_totals(), (reads, writes));
        // Activates never exceed CAS count (every ACT serves ≥ 1 CAS here).
        prop_assert!(s.activates <= reads + writes);
    }

    /// The data bus never carries two bursts at once: scanning every cycle
    /// up to the horizon sees at most one direction at a time, and total
    /// busy cycles equal bursts × burst length.
    #[test]
    fn bus_occupancy_equals_bursts(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let timing = TimingParams::ddr4_2400();
        let mut dev = DramDevice::new(DeviceConfig::ddr4_2400());
        let mut now: Cycle = 0;
        for op in ops {
            issue_op(&mut dev, &mut now, op);
        }
        // Do not advance: count busy cycles in the still-pending schedule.
        let horizon = now + timing.cl + timing.cwl + 2 * timing.burst_cycles + 4;
        let mut busy = 0u64;
        for t in now.saturating_sub(2_000)..horizon {
            if dev.bus_activity(t).is_some() {
                busy += 1;
            }
        }
        let (r, w) = dev.bus_totals();
        // Bursts that already retired out of the window are not counted;
        // busy cycles can never exceed the theoretical total.
        prop_assert!(busy <= (r + w) * timing.burst_cycles);
    }

    /// Earliest-issue answers are self-consistent: issuing exactly at
    /// `earliest` always succeeds (spot-checked on ACT after PRE).
    #[test]
    fn earliest_is_sufficient(bank in 0u8..16, row1 in 0u16..32, row2 in 0u16..32) {
        let mut dev = DramDevice::new(DeviceConfig::ddr4_2400());
        let b = bank_addr(bank);
        dev.issue(Command::activate(b, u32::from(row1)), 0).unwrap();
        let rd_at = dev.earliest_read(b, 0).at;
        dev.issue(Command::read(b, 0), rd_at).unwrap();
        let pre_at = dev.earliest_precharge(b, rd_at).at;
        dev.issue(Command::precharge(b), pre_at).unwrap();
        let act_at = dev.earliest_activate(b, pre_at).at;
        dev.advance(act_at);
        prop_assert!(dev.issue(Command::activate(b, u32::from(row2)), act_at).is_ok());
    }
}
