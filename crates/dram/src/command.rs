//! DRAM commands as issued by the memory controller over the command bus.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geometry::BankAddr;

/// The kind of a DRAM command, without its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Open (load) a row into the bank's row buffer.
    Activate,
    /// Write the row buffer back and precharge the bit lines.
    Precharge,
    /// Read one column (cache line) from the open row.
    Read,
    /// Read one column, then auto-precharge the bank.
    ReadAp,
    /// Write one column into the open row.
    Write,
    /// Write one column, then auto-precharge the bank.
    WriteAp,
    /// Refresh the whole rank (all banks must be precharged).
    Refresh,
}

impl CommandKind {
    /// Whether this is a column (CAS) command that moves data on the bus.
    pub fn is_cas(self) -> bool {
        matches!(
            self,
            CommandKind::Read | CommandKind::ReadAp | CommandKind::Write | CommandKind::WriteAp
        )
    }

    /// Whether this CAS reads data (false for writes and non-CAS commands).
    pub fn is_read(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::ReadAp)
    }

    /// Whether this CAS writes data.
    pub fn is_write(self) -> bool {
        matches!(self, CommandKind::Write | CommandKind::WriteAp)
    }

    /// Whether the command auto-precharges its bank after completion.
    pub fn auto_precharges(self) -> bool {
        matches!(self, CommandKind::ReadAp | CommandKind::WriteAp)
    }
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommandKind::Activate => "ACT",
            CommandKind::Precharge => "PRE",
            CommandKind::Read => "RD",
            CommandKind::ReadAp => "RDA",
            CommandKind::Write => "WR",
            CommandKind::WriteAp => "WRA",
            CommandKind::Refresh => "REF",
        };
        f.write_str(s)
    }
}

/// A fully specified DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Command {
    /// What to do.
    pub kind: CommandKind,
    /// Target bank. For [`CommandKind::Refresh`] only the rank matters.
    pub bank: BankAddr,
    /// Row operand (meaningful for [`CommandKind::Activate`]).
    pub row: u32,
    /// Column operand (meaningful for CAS commands).
    pub column: u32,
}

impl Command {
    /// An `ACT bank, row` command.
    pub fn activate(bank: BankAddr, row: u32) -> Self {
        Command {
            kind: CommandKind::Activate,
            bank,
            row,
            column: 0,
        }
    }

    /// A `PRE bank` command.
    pub fn precharge(bank: BankAddr) -> Self {
        Command {
            kind: CommandKind::Precharge,
            bank,
            row: 0,
            column: 0,
        }
    }

    /// A `RD bank, column` command.
    pub fn read(bank: BankAddr, column: u32) -> Self {
        Command {
            kind: CommandKind::Read,
            bank,
            row: 0,
            column,
        }
    }

    /// A `RDA bank, column` command (read with auto-precharge).
    pub fn read_ap(bank: BankAddr, column: u32) -> Self {
        Command {
            kind: CommandKind::ReadAp,
            bank,
            row: 0,
            column,
        }
    }

    /// A `WR bank, column` command.
    pub fn write(bank: BankAddr, column: u32) -> Self {
        Command {
            kind: CommandKind::Write,
            bank,
            row: 0,
            column,
        }
    }

    /// A `WRA bank, column` command (write with auto-precharge).
    pub fn write_ap(bank: BankAddr, column: u32) -> Self {
        Command {
            kind: CommandKind::WriteAp,
            bank,
            row: 0,
            column,
        }
    }

    /// A `REF rank` command.
    pub fn refresh(rank: u32) -> Self {
        Command {
            kind: CommandKind::Refresh,
            bank: BankAddr::new(rank, 0, 0),
            row: 0,
            column: 0,
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            CommandKind::Activate => write!(f, "ACT {} row {}", self.bank, self.row),
            CommandKind::Refresh => write!(f, "REF rank {}", self.bank.rank),
            k if k.is_cas() => write!(f, "{} {} col {}", k, self.bank, self.column),
            k => write!(f, "{} {}", k, self.bank),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_classification() {
        assert!(CommandKind::Read.is_cas());
        assert!(CommandKind::WriteAp.is_cas());
        assert!(!CommandKind::Activate.is_cas());
        assert!(CommandKind::ReadAp.is_read());
        assert!(!CommandKind::ReadAp.is_write());
        assert!(CommandKind::WriteAp.is_write());
        assert!(CommandKind::WriteAp.auto_precharges());
        assert!(!CommandKind::Write.auto_precharges());
        assert!(!CommandKind::Refresh.is_cas());
    }

    #[test]
    fn display_round() {
        let b = BankAddr::new(0, 1, 2);
        assert_eq!(Command::activate(b, 9).to_string(), "ACT r0g1b2 row 9");
        assert_eq!(Command::read(b, 3).to_string(), "RD r0g1b2 col 3");
        assert_eq!(Command::refresh(0).to_string(), "REF rank 0");
        assert_eq!(Command::precharge(b).to_string(), "PRE r0g1b2");
    }
}
