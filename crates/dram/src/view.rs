//! Observation types consumed by the stack accounting.
//!
//! The bandwidth-stack accountant of `dramstack-core` classifies every DRAM
//! cycle from a [`CycleView`]: what the data bus is doing, whether the rank
//! is refreshing, what each bank is doing, and — when nothing is happening —
//! why the oldest pending request could not issue.

use serde::{Deserialize, Serialize};

use crate::bus::BurstKind;

/// Why a command could not issue at a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockReason {
    /// Nothing blocks the command.
    None,
    /// Target bank is precharging (tRP window).
    PrechargePending,
    /// Target bank is activating (tRCD window).
    ActivatePending,
    /// No row open in the target bank; an ACT is needed first.
    RowClosed,
    /// A different row is open; a PRE is needed first.
    RowConflict,
    /// CAS-to-CAS spacing within the bank group (tCCD_L).
    CcdLong,
    /// CAS-to-CAS spacing across bank groups (tCCD_S).
    CcdShort,
    /// Write-to-read turnaround within the bank group (tWTR_L).
    WtrLong,
    /// Write-to-read turnaround across bank groups (tWTR_S).
    WtrShort,
    /// Read-to-write bus turnaround bubble.
    ReadToWrite,
    /// The data bus has no free slot for the burst.
    BusBusy,
    /// Four-activate window (tFAW).
    Faw,
    /// ACT-to-ACT spacing within the bank group (tRRD_L).
    RrdLong,
    /// ACT-to-ACT spacing across bank groups (tRRD_S).
    RrdShort,
    /// Row-cycle time on the bank (tRC).
    RowCycle,
    /// Minimum row-open time before PRE (tRAS) or read/write-to-PRE windows.
    PrechargeWindow,
    /// The rank is refreshing.
    Refresh,
}

/// Scope of a blocking constraint — decides whether the constraints
/// component is charged to one bank group's banks or to the whole rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockLevel {
    /// Nothing is blocked.
    None,
    /// Constraint scoped to one bank (tRC, tRAS, tRP, tRCD, row state).
    Bank,
    /// Constraint scoped to one bank group (tCCD_L, tWTR_L, tRRD_L).
    BankGroup,
    /// Constraint scoped to the rank or channel (tCCD_S, tWTR_S, tFAW,
    /// tRRD_S, bus turnaround, bus occupancy, refresh).
    Rank,
}

impl BlockReason {
    /// The scope of this constraint.
    pub fn level(self) -> BlockLevel {
        use BlockReason::*;
        match self {
            None => BlockLevel::None,
            PrechargePending | ActivatePending | RowClosed | RowConflict | RowCycle
            | PrechargeWindow => BlockLevel::Bank,
            CcdLong | WtrLong | RrdLong => BlockLevel::BankGroup,
            CcdShort | WtrShort | ReadToWrite | BusBusy | Faw | RrdShort | Refresh => {
                BlockLevel::Rank
            }
        }
    }
}

impl std::fmt::Display for BlockReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BlockReason::None => "none",
            BlockReason::PrechargePending => "tRP",
            BlockReason::ActivatePending => "tRCD",
            BlockReason::RowClosed => "row closed",
            BlockReason::RowConflict => "row conflict",
            BlockReason::CcdLong => "tCCD_L",
            BlockReason::CcdShort => "tCCD_S",
            BlockReason::WtrLong => "tWTR_L",
            BlockReason::WtrShort => "tWTR_S",
            BlockReason::ReadToWrite => "read-to-write turnaround",
            BlockReason::BusBusy => "data bus busy",
            BlockReason::Faw => "tFAW",
            BlockReason::RrdLong => "tRRD_L",
            BlockReason::RrdShort => "tRRD_S",
            BlockReason::RowCycle => "tRC",
            BlockReason::PrechargeWindow => "tRAS/tRTP/tWR",
            BlockReason::Refresh => "refresh",
        };
        f.write_str(s)
    }
}

/// What one bank contributes to the per-bank split of a lost cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankActivity {
    /// Executing a precharge (within tRP).
    Precharging,
    /// Executing an activate (within tRCD).
    Activating,
    /// Occupied by a constraint: CAS in flight (CL/CWL wait), or this bank
    /// sits in the bank group / rank resource that blocks an
    /// otherwise-ready pending request.
    Constrained,
    /// Idle while other banks are active — lost bank parallelism.
    Idle,
}

/// Everything the stack accounting needs to classify one DRAM cycle.
///
/// Built by the memory controller each cycle (or once per homogeneous span)
/// and handed to `dramstack_core::BandwidthAccountant`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleView {
    /// Data-bus activity this cycle (classified as useful read/write).
    pub bus: Option<BurstKind>,
    /// Whether the rank is inside a refresh (tRFC window).
    pub refreshing: bool,
    /// Per-bank activity, indexed by flat bank index.
    pub banks: Vec<BankActivity>,
    /// When *all* banks are idle: the constraint blocking the oldest
    /// pending request, if there is a pending request at all.
    pub rank_block: BlockReason,
    /// Whether any request (read or write) is pending in the controller or
    /// in flight in the device.
    pub has_pending: bool,
    /// Read-queue depth at the start of this cycle.
    pub read_q_depth: usize,
    /// Write-queue depth at the start of this cycle.
    pub write_q_depth: usize,
    /// Whether the controller is in write-drain mode this cycle.
    pub drain: bool,
    /// When a CAS issued this cycle: whether it hit the open row.
    pub cas_hit: Option<bool>,
}

impl CycleView {
    /// A view for an entirely idle channel with `banks` banks.
    pub fn idle(banks: usize) -> Self {
        CycleView {
            bus: None,
            refreshing: false,
            banks: vec![BankActivity::Idle; banks],
            rank_block: BlockReason::None,
            has_pending: false,
            read_q_depth: 0,
            write_q_depth: 0,
            drain: false,
            cas_hit: None,
        }
    }

    /// Resets the view in place for reuse (avoids reallocation in the
    /// per-cycle hot loop).
    pub fn reset(&mut self) {
        self.bus = None;
        self.refreshing = false;
        for b in &mut self.banks {
            *b = BankActivity::Idle;
        }
        self.rank_block = BlockReason::None;
        self.has_pending = false;
        self.read_q_depth = 0;
        self.write_q_depth = 0;
        self.drain = false;
        self.cas_hit = None;
    }

    /// Whether at least one bank is doing something.
    pub fn any_bank_active(&self) -> bool {
        self.banks.iter().any(|b| !matches!(b, BankActivity::Idle))
    }

    /// Whether every field holds its [`CycleView::idle`] value — the
    /// fast-path test that lets accounting treat the cycle as pure idle
    /// without running the full classification.
    pub fn is_all_idle(&self) -> bool {
        self.bus.is_none()
            && !self.refreshing
            && !self.has_pending
            && !self.drain
            && self.cas_hit.is_none()
            && self.read_q_depth == 0
            && self.write_q_depth == 0
            && self.rank_block == BlockReason::None
            && !self.any_bank_active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_spec() {
        assert_eq!(BlockReason::CcdLong.level(), BlockLevel::BankGroup);
        assert_eq!(BlockReason::WtrLong.level(), BlockLevel::BankGroup);
        assert_eq!(BlockReason::RrdLong.level(), BlockLevel::BankGroup);
        assert_eq!(BlockReason::CcdShort.level(), BlockLevel::Rank);
        assert_eq!(BlockReason::Faw.level(), BlockLevel::Rank);
        assert_eq!(BlockReason::BusBusy.level(), BlockLevel::Rank);
        assert_eq!(BlockReason::Refresh.level(), BlockLevel::Rank);
        assert_eq!(BlockReason::RowConflict.level(), BlockLevel::Bank);
        assert_eq!(BlockReason::None.level(), BlockLevel::None);
    }

    #[test]
    fn idle_view_reports_no_activity() {
        let v = CycleView::idle(16);
        assert!(!v.any_bank_active());
        assert_eq!(v.banks.len(), 16);
        assert_eq!(v.rank_block, BlockReason::None);
    }

    #[test]
    fn reset_clears_everything() {
        let mut v = CycleView::idle(4);
        v.bus = Some(BurstKind::Read);
        v.refreshing = true;
        v.banks[2] = BankActivity::Activating;
        v.rank_block = BlockReason::Faw;
        v.has_pending = true;
        v.read_q_depth = 3;
        v.write_q_depth = 9;
        v.drain = true;
        v.cas_hit = Some(true);
        v.reset();
        assert_eq!(v, CycleView::idle(4));
    }

    #[test]
    fn display_reasons_nonempty() {
        for r in [
            BlockReason::None,
            BlockReason::CcdLong,
            BlockReason::Refresh,
            BlockReason::PrechargeWindow,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
