//! Seeded controller-bookkeeping faults for the protocol audit harness.
//!
//! A [`SeededFault`] models a classic scheduler bookkeeping bug — an
//! off-by-one ready cycle, a dropped turnaround penalty — by corrupting the
//! *effective* timing set the device enforces while leaving the configured
//! (true) timing untouched. The device stays internally consistent: its
//! `earliest_*` queries, its issue-time re-checks and its bank/rank
//! bookkeeping all agree on the corrupted values, so commands issue early
//! without tripping any internal assertion — exactly like a real scheduler
//! bug would. The shadow protocol auditor (`dramstack-audit`), which checks
//! the command stream against the *true* JEDEC parameters, is then the only
//! line of defense, which is the point: each fault class exists to prove
//! the auditor catches it.

use serde::{Deserialize, Serialize};

use crate::timing::TimingParams;

/// A deliberately seeded timing-bookkeeping fault.
///
/// Only the audit/chaos harness injects these (via
/// `DramDevice::inject_fault`); normal simulations always run with
/// [`SeededFault::None`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeededFault {
    /// No fault: the enforced timing equals the configured timing.
    #[default]
    None,
    /// tRCD accounted one cycle short: a CAS may issue one cycle before
    /// the activate has finished.
    TrcdOneEarly,
    /// tRP (and tRC, which embeds it) accounted one cycle short: an ACT
    /// may follow a PRE one cycle too early.
    TrpOneEarly,
    /// tRAS accounted two cycles short: a PRE may close a row before the
    /// minimum row-open time has elapsed.
    TrasShort,
    /// Same-bank-group CAS spacing checked against tCCD_S instead of
    /// tCCD_L.
    CcdLongAsShort,
    /// ACT-to-ACT spacing (tRRD_S/tRRD_L) collapsed to a single cycle.
    RrdDropped,
    /// The four-activate window (tFAW) collapsed to tRRD_S: a fifth ACT
    /// may issue inside the true window.
    FawDropped,
    /// Write-to-read turnaround (tWTR_S/tWTR_L) dropped entirely.
    WtrDropped,
    /// Read-to-write data-bus turnaround bubble (`rtw_gap`) dropped.
    RtwGapDropped,
    /// tRFC accounted at half length: the rank is used while the true
    /// refresh is still in progress.
    TrfcHalved,
}

impl SeededFault {
    /// All injectable fault classes (everything but `None`).
    pub const ALL: [SeededFault; 9] = [
        SeededFault::TrcdOneEarly,
        SeededFault::TrpOneEarly,
        SeededFault::TrasShort,
        SeededFault::CcdLongAsShort,
        SeededFault::RrdDropped,
        SeededFault::FawDropped,
        SeededFault::WtrDropped,
        SeededFault::RtwGapDropped,
        SeededFault::TrfcHalved,
    ];

    /// The timing set a controller with this bookkeeping bug would
    /// enforce, derived from the true set `t`.
    pub fn corrupt(self, t: TimingParams) -> TimingParams {
        let mut c = t;
        match self {
            SeededFault::None => {}
            SeededFault::TrcdOneEarly => c.t_rcd = t.t_rcd.saturating_sub(1),
            SeededFault::TrpOneEarly => {
                c.t_rp = t.t_rp.saturating_sub(1);
                c.t_rc = t.t_rc.saturating_sub(1);
            }
            SeededFault::TrasShort => c.t_ras = t.t_ras.saturating_sub(2),
            SeededFault::CcdLongAsShort => c.t_ccd_l = t.t_ccd_s,
            SeededFault::RrdDropped => {
                c.t_rrd_s = 1;
                c.t_rrd_l = 1;
            }
            SeededFault::FawDropped => c.t_faw = t.t_rrd_s,
            SeededFault::WtrDropped => {
                c.t_wtr_s = 0;
                c.t_wtr_l = 0;
            }
            SeededFault::RtwGapDropped => c.rtw_gap = 0,
            SeededFault::TrfcHalved => c.t_rfc = (t.t_rfc / 2).max(1),
        }
        c
    }
}

impl std::fmt::Display for SeededFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SeededFault::None => "none",
            SeededFault::TrcdOneEarly => "tRCD off by one",
            SeededFault::TrpOneEarly => "tRP off by one",
            SeededFault::TrasShort => "tRAS short by two",
            SeededFault::CcdLongAsShort => "tCCD_L treated as tCCD_S",
            SeededFault::RrdDropped => "tRRD dropped",
            SeededFault::FawDropped => "tFAW dropped",
            SeededFault::WtrDropped => "tWTR dropped",
            SeededFault::RtwGapDropped => "read-to-write gap dropped",
            SeededFault::TrfcHalved => "tRFC halved",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let t = TimingParams::ddr4_2400();
        assert_eq!(SeededFault::None.corrupt(t), t);
    }

    #[test]
    fn every_fault_changes_the_timing() {
        let t = TimingParams::ddr4_2400();
        for f in SeededFault::ALL {
            assert_ne!(f.corrupt(t), t, "{f} must corrupt something");
        }
    }

    #[test]
    fn corrupted_sets_stay_usable() {
        // Corrupted timing intentionally fails `validate` in some classes
        // (that is the bug being modeled), but every field must stay
        // nonzero where the device divides or subtracts.
        let t = TimingParams::ddr4_2400();
        for f in SeededFault::ALL {
            let c = f.corrupt(t);
            assert!(c.t_rfc > 0);
            assert!(c.burst_cycles > 0);
            assert!(c.t_refi > 0);
        }
    }
}
