//! The DRAM device: banks + rank timing + data bus behind one channel.

use std::cell::Cell;

use serde::{Deserialize, Serialize};

use crate::bank::{Bank, BankState};
use crate::bus::{BurstKind, DataBus};
use crate::command::{Command, CommandKind};
use crate::error::{CommandError, ConfigError};
use crate::fault::SeededFault;
use crate::geometry::{BankAddr, DramGeometry};
use crate::rank::{RankState, RankTimingState};
use crate::timing::TimingParams;
use crate::view::BlockReason;
use crate::Cycle;

/// Configuration of one DRAM channel: geometry, timing set and bus width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Channel organization.
    pub geometry: DramGeometry,
    /// Timing-constraint set.
    pub timing: TimingParams,
    /// Data-bus width in bytes (8 for DDR4).
    pub bus_bytes: u32,
}

impl DeviceConfig {
    /// The paper's configuration: DDR4-2400, one rank, 16 banks, 8 B bus,
    /// 19.2 GB/s peak.
    pub fn ddr4_2400() -> Self {
        DeviceConfig {
            geometry: DramGeometry::ddr4_single_rank(),
            timing: TimingParams::ddr4_2400(),
            bus_bytes: 8,
        }
    }

    /// Dual-rank DDR4-2400: same channel bandwidth, twice the banks.
    pub fn ddr4_2400_dual_rank() -> Self {
        DeviceConfig {
            geometry: DramGeometry::ddr4_dual_rank(),
            timing: TimingParams::ddr4_2400(),
            bus_bytes: 8,
        }
    }

    /// DDR4-3200 variant for the speed-grade ablation.
    pub fn ddr4_3200() -> Self {
        DeviceConfig {
            geometry: DramGeometry::ddr4_single_rank(),
            timing: TimingParams::ddr4_3200(),
            bus_bytes: 8,
        }
    }

    /// Validates geometry and timing.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.geometry.validate()?;
        self.timing.validate()?;
        if self.bus_bytes == 0 || !self.bus_bytes.is_power_of_two() {
            return Err(ConfigError::InvalidGeometry("bus_bytes"));
        }
        if u64::from(self.bus_bytes) * 2 * self.timing.burst_cycles
            != u64::from(self.geometry.line_bytes)
        {
            return Err(ConfigError::InvalidGeometry(
                "burst_cycles x 2 x bus_bytes must equal line_bytes",
            ));
        }
        Ok(())
    }

    /// Peak bandwidth of this channel in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.timing.peak_bandwidth_gbps(self.bus_bytes)
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

/// An earliest-issue answer: the cycle and the binding constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Earliest {
    /// Earliest cycle the command may issue.
    pub at: Cycle,
    /// The constraint that produced `at` ([`BlockReason::None`] when the
    /// command could have issued earlier than asked).
    pub reason: BlockReason,
}

impl Earliest {
    fn now() -> Self {
        Earliest {
            at: 0,
            reason: BlockReason::None,
        }
    }

    fn tighten(&mut self, cand: Cycle, reason: BlockReason) {
        if cand > self.at {
            self.at = cand;
            self.reason = reason;
        }
    }

    /// Whether the command is ready at `now`.
    pub fn ready(&self, now: Cycle) -> bool {
        self.at <= now
    }
}

/// One slot of a per-bank *next-legal-cycle* table: the full constraint
/// chain of one command kind folded into a now-independent constant
/// `(at, reason)`, plus the epoch triple it was computed under.
///
/// Every candidate in the earliest-issue chains (tRC windows, tRRD/tFAW
/// at the rank, tCCD/tWTR, the bus backlog end, the read→write gap) is an
/// absolute cycle that only moves when a command issues. Folding them from
/// zero with the same strict-greater tighten order as the unmemoized chain
/// yields a constant `C` with its winning reason; the live query is then
/// exactly `max(now, C)` with the reason kept iff `C > now`. A slot stays
/// valid until one of its epochs is bumped by an issued command, so the
/// table costs O(1) per consult and one refold per bank per command.
#[derive(Debug, Clone, Copy)]
struct NextLegal {
    bank_epoch: u32,
    rank_epoch: u32,
    bus_epoch: u32,
    at: Cycle,
    reason: BlockReason,
    /// `earliest_activate` only: the bank's `pre_done_at`, for the
    /// query-time RowCycle → PrechargePending rewrite (the rewrite depends
    /// on `now`, so it cannot be folded into the constant).
    aux: Cycle,
}

impl NextLegal {
    /// A slot that can never match (real epochs start at 1).
    const STALE: NextLegal = NextLegal {
        bank_epoch: 0,
        rank_epoch: 0,
        bus_epoch: 0,
        at: 0,
        reason: BlockReason::None,
        aux: 0,
    };
}

/// Serializable image of one channel's full DRAM state, as captured by
/// [`DramDevice::snapshot_state`]. The next-legal-cycle memo tables are
/// deliberately absent: they are a pure cache, reset to stale on restore
/// and refolded on demand with identical answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSnapshot {
    /// Per-flat-bank state (open rows, timing windows, per-bank stats).
    pub banks: Vec<Bank>,
    /// Per-rank timing state (tFAW windows, refresh bookkeeping).
    pub ranks: Vec<RankTimingState>,
    /// Data-bus schedule and burst totals.
    pub bus: DataBus,
    /// Device-level command counts.
    pub stats: DeviceStats,
    /// Injected chaos fault, if any (the enforced timing set is derived
    /// from this on restore).
    pub fault: SeededFault,
    /// Per-flat-bank memo-invalidation epochs.
    pub bank_epochs: Vec<u32>,
    /// Per-rank memo-invalidation epochs.
    pub rank_epochs: Vec<u32>,
    /// Bus memo-invalidation epoch.
    pub bus_epoch: u32,
    /// Flat bank indices with a pending auto-precharge.
    pub auto_pre_pending: Vec<usize>,
    /// Dirty-bank list for the transitioning-bank sweep.
    pub transitioning: Vec<usize>,
    /// Membership flags mirroring `transitioning`.
    pub in_transition: Vec<bool>,
}

/// Cumulative command counts for the whole device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// ACT commands issued.
    pub activates: u64,
    /// Explicit PRE commands issued (auto-precharges are counted in the
    /// per-bank stats).
    pub precharges: u64,
    /// Read CAS commands.
    pub reads: u64,
    /// Write CAS commands.
    pub writes: u64,
    /// REF commands.
    pub refreshes: u64,
}

/// One DRAM channel: all banks, rank timing state and the data bus.
#[derive(Debug, Clone)]
pub struct DramDevice {
    config: DeviceConfig,
    banks: Vec<Bank>,
    ranks: Vec<RankTimingState>,
    bus: DataBus,
    stats: DeviceStats,
    /// The timing set the device actually enforces. Equal to
    /// `config.timing` unless a [`SeededFault`] was injected, in which
    /// case it is the deliberately corrupted copy — every internal
    /// query, issue check and bookkeeping update uses this set, so the
    /// device stays self-consistent while violating the true spec.
    enforced: TimingParams,
    fault: SeededFault,
    /// Whether the next-legal-cycle tables answer `earliest_*` queries.
    /// Off = recompute the full constraint chain per query (the reference
    /// path the busy-engine A/B comparisons run against).
    memo_enabled: bool,
    /// Per-flat-bank epoch, bumped by any command that mutates the bank.
    bank_epochs: Vec<u32>,
    /// Per-rank epoch, bumped by ACT/CAS/REF on the rank.
    rank_epochs: Vec<u32>,
    /// Bumped on every bus reservation (burst retirement is value-stable
    /// for the folded constants, so it does not bump).
    bus_epoch: u32,
    /// Next-legal-cycle tables, one slot per flat bank per command kind.
    /// `Cell` because `earliest_*` takes `&self`; `Cell<T: Copy>` keeps the
    /// device `Send` for the parallel sweep runner.
    act_legal: Vec<Cell<NextLegal>>,
    pre_legal: Vec<Cell<NextLegal>>,
    read_legal: Vec<Cell<NextLegal>>,
    write_legal: Vec<Cell<NextLegal>>,
    /// Flat indices of banks with a pending auto-precharge, so `advance`
    /// visits only them instead of sweeping every bank.
    auto_pre_pending: Vec<usize>,
    /// Dirty-bank list: flat indices whose state may read `Precharging` or
    /// `Activating` — the only states the per-cycle `CycleView` sweep needs
    /// to visit. Banks are pushed on the command that starts the transition
    /// and lazily pruned once settled.
    transitioning: Vec<usize>,
    in_transition: Vec<bool>,
}

impl DramDevice {
    /// Creates a device from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails; use [`DramDevice::try_new`] for
    /// a fallible constructor.
    pub fn new(config: DeviceConfig) -> Self {
        Self::try_new(config).expect("invalid device configuration")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from validation.
    pub fn try_new(config: DeviceConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let n_banks = config.geometry.total_banks() as usize;
        let ranks = (0..config.geometry.ranks)
            .map(|_| RankTimingState::new(config.geometry.bank_groups, &config.timing))
            .collect();
        Ok(DramDevice {
            enforced: config.timing,
            fault: SeededFault::None,
            memo_enabled: true,
            bank_epochs: vec![1; n_banks],
            rank_epochs: vec![1; config.geometry.ranks as usize],
            bus_epoch: 1,
            act_legal: vec![Cell::new(NextLegal::STALE); n_banks],
            pre_legal: vec![Cell::new(NextLegal::STALE); n_banks],
            read_legal: vec![Cell::new(NextLegal::STALE); n_banks],
            write_legal: vec![Cell::new(NextLegal::STALE); n_banks],
            auto_pre_pending: Vec::new(),
            transitioning: Vec::new(),
            in_transition: vec![false; n_banks],
            config,
            banks: vec![Bank::new(); n_banks],
            ranks,
            bus: DataBus::new(),
            stats: DeviceStats::default(),
        })
    }

    /// Switches the next-legal-cycle tables on or off. Answers are
    /// identical either way (the bit-identity tests and the proptest
    /// matrix hold the two paths to the same reports); off is the
    /// reference path for busy-engine A/B measurements.
    pub fn set_memoize(&mut self, on: bool) {
        self.memo_enabled = on;
    }

    fn touch_bank(&mut self, flat: usize) {
        self.bank_epochs[flat] = self.bank_epochs[flat].wrapping_add(1);
        if !self.in_transition[flat] {
            self.in_transition[flat] = true;
            self.transitioning.push(flat);
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Cheap fingerprint of the busy-engine epoch counters (FNV-1a over
    /// every bank/rank epoch plus the bus epoch). Every timing-relevant
    /// device mutation bumps at least one epoch, so a changed signature
    /// proves the device moved since the last probe; checkpoint delta
    /// capture uses it as a fast "definitely dirty" gate before the
    /// authoritative deep comparison.
    pub fn epoch_signature(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u32| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for &e in &self.bank_epochs {
            eat(e);
        }
        for &e in &self.rank_epochs {
            eat(e);
        }
        eat(self.bus_epoch);
        h
    }

    /// The configured (true) timing parameter set. Reporting and audit
    /// code must use this; it is unaffected by seeded faults.
    pub fn timing(&self) -> &TimingParams {
        &self.config.timing
    }

    /// Injects a seeded bookkeeping fault: from now on the device
    /// enforces `fault.corrupt(config.timing)` instead of the configured
    /// timing. Chaos/audit harness only — see [`SeededFault`].
    pub fn inject_fault(&mut self, fault: SeededFault) {
        self.fault = fault;
        self.enforced = fault.corrupt(self.config.timing);
        // The folded constants embed the enforced timing set; invalidate
        // every next-legal-cycle slot.
        for e in &mut self.bank_epochs {
            *e = e.wrapping_add(1);
        }
        for e in &mut self.rank_epochs {
            *e = e.wrapping_add(1);
        }
        self.bus_epoch = self.bus_epoch.wrapping_add(1);
    }

    /// The currently injected fault ([`SeededFault::None`] normally).
    pub fn fault(&self) -> SeededFault {
        self.fault
    }

    /// The channel geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.config.geometry
    }

    /// Cumulative device-level command counts.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Cumulative `(read_bursts, write_bursts)` moved over the bus.
    pub fn bus_totals(&self) -> (u64, u64) {
        self.bus.totals()
    }

    /// Immutable access to a bank by address.
    pub fn bank(&self, addr: BankAddr) -> &Bank {
        &self.banks[self.config.geometry.flat_bank(addr)]
    }

    /// Housekeeping at the start of cycle `now`: applies due auto-precharges
    /// and retires finished bursts. Call once per cycle before queries.
    ///
    /// Only banks with a pending auto-precharge are visited (the pending
    /// list is maintained at CAS issue), so the sweep is O(pending), not
    /// O(banks).
    pub fn advance(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.auto_pre_pending.len() {
            let flat = self.auto_pre_pending[i];
            if self.banks[flat].apply_auto_precharge(now, &self.enforced) {
                self.auto_pre_pending.swap_remove(i);
                self.touch_bank(flat);
            } else if !self.banks[flat].has_auto_pre() {
                // Cleared behind our back by a refresh's force-precharge.
                self.auto_pre_pending.swap_remove(i);
            } else {
                i += 1;
            }
        }
        self.bus.retire_before(now);
    }

    // ---- earliest-issue queries -------------------------------------------------

    /// Earliest cycle an ACT for `addr` may issue, with the binding reason.
    pub fn earliest_activate(&self, addr: BankAddr, now: Cycle) -> Earliest {
        if !self.memo_enabled {
            return self.earliest_activate_unmemoized(addr, now);
        }
        let flat = self.config.geometry.flat_bank(addr);
        let (be, re) = (self.bank_epochs[flat], self.rank_epochs[addr.rank as usize]);
        let mut m = self.act_legal[flat].get();
        if m.bank_epoch != be || m.rank_epoch != re {
            m = self.fold_activate(addr, flat, be, re);
            self.act_legal[flat].set(m);
        }
        if m.at <= now {
            return Earliest {
                at: now,
                reason: BlockReason::None,
            };
        }
        // Distinguish "precharging" from the generic bank constraint:
        // `aux` holds the bank's pre_done_at, so `now < aux` is exactly
        // `bank.state(now) == Precharging`.
        let reason = if m.reason == BlockReason::RowCycle && now < m.aux {
            BlockReason::PrechargePending
        } else {
            m.reason
        };
        Earliest { at: m.at, reason }
    }

    fn fold_activate(&self, addr: BankAddr, flat: usize, be: u32, re: u32) -> NextLegal {
        let bank = &self.banks[flat];
        let mut e = Earliest::now();
        // Rank-level constraints first so that on ties (e.g. a refresh that
        // also reset the bank precharge window) the rank-level reason wins,
        // matching the accounting hierarchy. This fold also caches the
        // rank's tFAW sliding-window bound, recomputed only when the ACT
        // window itself moves.
        let (rank_at, rank_reason) =
            self.ranks[addr.rank as usize].earliest_activate(addr.bank_group, &self.enforced);
        e.tighten(rank_at, rank_reason);
        e.tighten(
            bank.earliest_activate(&self.enforced),
            BlockReason::RowCycle,
        );
        NextLegal {
            bank_epoch: be,
            rank_epoch: re,
            bus_epoch: 0,
            at: e.at,
            reason: e.reason,
            aux: bank.pre_done_at(),
        }
    }

    fn earliest_activate_unmemoized(&self, addr: BankAddr, now: Cycle) -> Earliest {
        let bank = self.bank(addr);
        let mut e = Earliest::now();
        e.tighten(now, BlockReason::None);
        let (rank_at, rank_reason) =
            self.ranks[addr.rank as usize].earliest_activate(addr.bank_group, &self.enforced);
        e.tighten(rank_at, rank_reason);
        e.tighten(
            bank.earliest_activate(&self.enforced),
            BlockReason::RowCycle,
        );
        if e.reason == BlockReason::RowCycle && bank.state(now) == BankState::Precharging {
            e.reason = BlockReason::PrechargePending;
        }
        e
    }

    /// Earliest cycle a PRE for `addr` may issue.
    pub fn earliest_precharge(&self, addr: BankAddr, now: Cycle) -> Earliest {
        if !self.memo_enabled {
            let bank = self.bank(addr);
            let mut e = Earliest::now();
            e.tighten(now, BlockReason::None);
            e.tighten(bank.earliest_precharge(), BlockReason::PrechargeWindow);
            e.tighten(
                self.ranks[addr.rank as usize].refresh_end(),
                BlockReason::Refresh,
            );
            return e;
        }
        let flat = self.config.geometry.flat_bank(addr);
        let (be, re) = (self.bank_epochs[flat], self.rank_epochs[addr.rank as usize]);
        let mut m = self.pre_legal[flat].get();
        if m.bank_epoch != be || m.rank_epoch != re {
            let bank = &self.banks[flat];
            let mut e = Earliest::now();
            e.tighten(bank.earliest_precharge(), BlockReason::PrechargeWindow);
            e.tighten(
                self.ranks[addr.rank as usize].refresh_end(),
                BlockReason::Refresh,
            );
            m = NextLegal {
                bank_epoch: be,
                rank_epoch: re,
                bus_epoch: 0,
                at: e.at,
                reason: e.reason,
                aux: 0,
            };
            self.pre_legal[flat].set(m);
        }
        if m.at <= now {
            Earliest {
                at: now,
                reason: BlockReason::None,
            }
        } else {
            Earliest {
                at: m.at,
                reason: m.reason,
            }
        }
    }

    /// Earliest cycle a read CAS for `addr` may issue (row must be open or
    /// opening; otherwise the reason is [`BlockReason::RowClosed`]).
    pub fn earliest_read(&self, addr: BankAddr, now: Cycle) -> Earliest {
        self.earliest_cas(addr, now, false)
    }

    /// Earliest cycle a write CAS for `addr` may issue.
    pub fn earliest_write(&self, addr: BankAddr, now: Cycle) -> Earliest {
        self.earliest_cas(addr, now, true)
    }

    fn earliest_cas(&self, addr: BankAddr, now: Cycle, is_write: bool) -> Earliest {
        if !self.memo_enabled {
            return self.earliest_cas_unmemoized(addr, now, is_write);
        }
        let flat = self.config.geometry.flat_bank(addr);
        let (be, re) = (self.bank_epochs[flat], self.rank_epochs[addr.rank as usize]);
        let slot = if is_write {
            &self.write_legal[flat]
        } else {
            &self.read_legal[flat]
        };
        let mut m = slot.get();
        if m.bank_epoch != be || m.rank_epoch != re || m.bus_epoch != self.bus_epoch {
            m = self.fold_cas(addr, flat, is_write, be, re);
            slot.set(m);
        }
        if m.at <= now {
            Earliest {
                at: now,
                reason: BlockReason::None,
            }
        } else {
            Earliest {
                at: m.at,
                reason: m.reason,
            }
        }
    }

    fn fold_cas(&self, addr: BankAddr, flat: usize, is_write: bool, be: u32, re: u32) -> NextLegal {
        let timing = &self.enforced;
        let bank = &self.banks[flat];
        let mut e = Earliest::now();
        match bank.earliest_cas() {
            Some(act_done) => e.tighten(act_done, BlockReason::ActivatePending),
            None => {
                // No row open: a CAS cannot issue at all regardless of
                // `now`; the folded answer is the same sentinel the
                // unmemoized chain returns.
                return NextLegal {
                    bank_epoch: be,
                    rank_epoch: re,
                    bus_epoch: self.bus_epoch,
                    at: Cycle::MAX,
                    reason: BlockReason::RowClosed,
                    aux: 0,
                };
            }
        }
        let (rank_at, rank_reason) =
            self.ranks[addr.rank as usize].earliest_cas(addr.bank_group, !is_write, timing);
        e.tighten(rank_at, rank_reason);

        // Data-bus slot, folded to its constant form: with a fixed
        // schedule, `earliest_slot(x, _) = backlog_end().max(x)`, so the
        // chain's bus candidate is exactly `backlog_end() - cas_to_data`
        // (applied with the same strict-greater tie-breaking).
        let cas_to_data = if is_write { timing.cwl } else { timing.cl };
        let backlog = self.bus.backlog_end();
        if backlog > e.at + cas_to_data {
            e.tighten(backlog - cas_to_data, BlockReason::BusBusy);
        }
        // Read→write turnaround bubble on the bus.
        if is_write {
            let after_read = self.bus.last_read_end() + timing.rtw_gap;
            if after_read > e.at + cas_to_data {
                e.tighten(after_read - cas_to_data, BlockReason::ReadToWrite);
            }
        }
        NextLegal {
            bank_epoch: be,
            rank_epoch: re,
            bus_epoch: self.bus_epoch,
            at: e.at,
            reason: e.reason,
            aux: 0,
        }
    }

    fn earliest_cas_unmemoized(&self, addr: BankAddr, now: Cycle, is_write: bool) -> Earliest {
        let timing = &self.enforced;
        let bank = self.bank(addr);
        let mut e = Earliest::now();
        e.tighten(now, BlockReason::None);
        match bank.earliest_cas() {
            Some(act_done) => e.tighten(act_done, BlockReason::ActivatePending),
            None => {
                // No row open: a CAS cannot issue at all; report the reason
                // and a conservative lower bound.
                return Earliest {
                    at: Cycle::MAX,
                    reason: BlockReason::RowClosed,
                };
            }
        }
        let (rank_at, rank_reason) =
            self.ranks[addr.rank as usize].earliest_cas(addr.bank_group, !is_write, timing);
        e.tighten(rank_at, rank_reason);

        // Data-bus slot: the burst starts CL/CWL after the CAS.
        let cas_to_data = if is_write { timing.cwl } else { timing.cl };
        let slot = self
            .bus
            .earliest_slot(e.at + cas_to_data, timing.burst_cycles);
        if slot > e.at + cas_to_data {
            e.tighten(slot - cas_to_data, BlockReason::BusBusy);
        }
        // Read→write turnaround bubble on the bus.
        if is_write {
            let after_read = self.bus.last_read_end() + timing.rtw_gap;
            if after_read > e.at + cas_to_data {
                e.tighten(after_read - cas_to_data, BlockReason::ReadToWrite);
            }
        }
        e
    }

    // ---- issue -------------------------------------------------------------------

    /// Issues `cmd` at cycle `now`.
    ///
    /// Returns the completion cycle: for ACT/PRE the end of tRCD/tRP, for
    /// CAS the end of the data burst, for REF the end of tRFC.
    ///
    /// # Errors
    ///
    /// [`CommandError::TimingViolation`] when a constraint blocks the
    /// command, [`CommandError::RowMismatch`] / `BankNotPrecharged` /
    /// `RefreshWhileBusy` for state violations, `AddressOutOfRange` for bad
    /// operands.
    pub fn issue(&mut self, cmd: Command, now: Cycle) -> Result<Cycle, CommandError> {
        self.check_address(&cmd)?;
        match cmd.kind {
            CommandKind::Activate => self.issue_activate(cmd.bank, cmd.row, now),
            CommandKind::Precharge => self.issue_precharge(cmd.bank, now),
            CommandKind::Read | CommandKind::ReadAp => {
                self.issue_cas(cmd.bank, now, false, cmd.kind.auto_precharges())
            }
            CommandKind::Write | CommandKind::WriteAp => {
                self.issue_cas(cmd.bank, now, true, cmd.kind.auto_precharges())
            }
            CommandKind::Refresh => self.issue_refresh(cmd.bank.rank, now),
        }
    }

    fn check_address(&self, cmd: &Command) -> Result<(), CommandError> {
        let g = &self.config.geometry;
        if cmd.bank.rank >= g.ranks {
            return Err(CommandError::AddressOutOfRange("rank"));
        }
        if cmd.bank.bank_group >= g.bank_groups {
            return Err(CommandError::AddressOutOfRange("bank_group"));
        }
        if cmd.bank.bank >= g.banks_per_group {
            return Err(CommandError::AddressOutOfRange("bank"));
        }
        if cmd.kind == CommandKind::Activate && cmd.row >= g.rows {
            return Err(CommandError::AddressOutOfRange("row"));
        }
        if cmd.kind.is_cas() && cmd.column >= g.columns {
            return Err(CommandError::AddressOutOfRange("column"));
        }
        Ok(())
    }

    fn issue_activate(
        &mut self,
        addr: BankAddr,
        row: u32,
        now: Cycle,
    ) -> Result<Cycle, CommandError> {
        let flat = self.config.geometry.flat_bank(addr);
        if self.banks[flat].open_row().is_some() {
            return Err(CommandError::BankNotPrecharged(addr));
        }
        let e = self.earliest_activate(addr, now);
        if !e.ready(now) {
            return Err(CommandError::TimingViolation {
                bank: addr,
                ready_at: e.at,
                reason: e.reason,
            });
        }
        self.banks[flat].issue_activate(now, row, &self.enforced);
        self.ranks[addr.rank as usize].record_activate(now, addr.bank_group);
        self.touch_bank(flat);
        self.rank_epochs[addr.rank as usize] = self.rank_epochs[addr.rank as usize].wrapping_add(1);
        self.stats.activates += 1;
        Ok(now + self.enforced.t_rcd)
    }

    fn issue_precharge(&mut self, addr: BankAddr, now: Cycle) -> Result<Cycle, CommandError> {
        let flat = self.config.geometry.flat_bank(addr);
        if self.banks[flat].open_row().is_none() {
            // Precharging a precharged bank is a harmless NOP per JEDEC, but
            // the controller should never do it; flag as a state error.
            return Err(CommandError::RefreshWhileBusy(addr));
        }
        let e = self.earliest_precharge(addr, now);
        if !e.ready(now) {
            return Err(CommandError::TimingViolation {
                bank: addr,
                ready_at: e.at,
                reason: e.reason,
            });
        }
        self.banks[flat].issue_precharge(now, &self.enforced);
        self.touch_bank(flat);
        self.stats.precharges += 1;
        Ok(now + self.enforced.t_rp)
    }

    fn issue_cas(
        &mut self,
        addr: BankAddr,
        now: Cycle,
        is_write: bool,
        auto_pre: bool,
    ) -> Result<Cycle, CommandError> {
        let timing = self.enforced;
        let flat = self.config.geometry.flat_bank(addr);
        if self.banks[flat].open_row().is_none() {
            return Err(CommandError::RowMismatch {
                bank: addr,
                open_row: None,
                wanted_row: 0,
            });
        }
        let e = self.earliest_cas(addr, now, is_write);
        if !e.ready(now) {
            return Err(CommandError::TimingViolation {
                bank: addr,
                ready_at: e.at,
                reason: e.reason,
            });
        }
        let cas_to_data = if is_write { timing.cwl } else { timing.cl };
        let burst_start = now + cas_to_data;
        let kind = if is_write {
            BurstKind::Write
        } else {
            BurstKind::Read
        };
        self.bus.reserve(burst_start, timing.burst_cycles, kind);
        if is_write {
            self.banks[flat].issue_write(now, burst_start, auto_pre, &timing);
            self.stats.writes += 1;
        } else {
            self.banks[flat].issue_read(now, burst_start, auto_pre, &timing);
            self.stats.reads += 1;
        }
        self.ranks[addr.rank as usize].record_cas(now, addr.bank_group, is_write);
        self.touch_bank(flat);
        self.rank_epochs[addr.rank as usize] = self.rank_epochs[addr.rank as usize].wrapping_add(1);
        self.bus_epoch = self.bus_epoch.wrapping_add(1);
        if auto_pre {
            self.auto_pre_pending.push(flat);
        }
        Ok(burst_start + timing.burst_cycles)
    }

    fn issue_refresh(&mut self, rank: u32, now: Cycle) -> Result<Cycle, CommandError> {
        let g = self.config.geometry;
        for addr in g.iter_banks().filter(|b| b.rank == rank) {
            let bank = self.bank(addr);
            if !bank.is_quiet(now) {
                return Err(CommandError::RefreshWhileBusy(addr));
            }
        }
        if self.bus.busy_at_or_after(now) {
            return Err(CommandError::RefreshWhileBusy(BankAddr::new(rank, 0, 0)));
        }
        self.ranks[rank as usize].start_refresh(now, &self.enforced);
        let end = self.ranks[rank as usize].refresh_end();
        for addr in g.iter_banks().filter(|b| b.rank == rank) {
            let flat = g.flat_bank(addr);
            self.banks[flat].force_precharged(end);
            self.touch_bank(flat);
        }
        self.rank_epochs[rank as usize] = self.rank_epochs[rank as usize].wrapping_add(1);
        self.stats.refreshes += 1;
        Ok(end)
    }

    // ---- accounting queries --------------------------------------------------------

    /// Data-bus activity at cycle `t` (only valid for `t` at or after the
    /// last `advance`).
    pub fn bus_activity(&self, t: Cycle) -> Option<BurstKind> {
        self.bus.activity_at(t)
    }

    /// Whether `rank` is inside a refresh at `t`.
    pub fn is_refreshing(&self, rank: u32, t: Cycle) -> bool {
        matches!(
            self.ranks[rank as usize].state(t),
            RankState::Refreshing { .. }
        )
    }

    /// Whether a refresh is overdue on `rank`.
    pub fn refresh_due(&self, rank: u32, now: Cycle) -> bool {
        self.ranks[rank as usize].refresh_due(now)
    }

    /// Cycle the next refresh falls due on `rank`.
    pub fn next_refresh_at(&self, rank: u32) -> Cycle {
        self.ranks[rank as usize].next_refresh_at()
    }

    /// Whether every bank of `rank` is quiet (refresh could issue, bus
    /// permitting).
    pub fn rank_quiet(&self, rank: u32, now: Cycle) -> bool {
        self.config
            .geometry
            .iter_banks()
            .filter(|b| b.rank == rank)
            .all(|b| self.bank(b).is_quiet(now))
            && !self.bus.busy_at_or_after(now)
    }

    /// State of the bank with flat index `flat` at cycle `t`.
    pub fn bank_state(&self, flat: usize, t: Cycle) -> BankState {
        self.banks[flat].state(t)
    }

    /// Visits every bank whose state at `now` is `Precharging` or
    /// `Activating` — the only two states the per-cycle view sweep cares
    /// about — using the dirty-bank list instead of scanning all banks.
    /// Settled entries are pruned as they are encountered; a bank can only
    /// re-enter a transition through a command, which re-registers it.
    pub fn visit_transitioning_banks(&mut self, now: Cycle, mut f: impl FnMut(usize, BankState)) {
        let mut i = 0;
        while i < self.transitioning.len() {
            let flat = self.transitioning[i];
            let st = self.banks[flat].state(now);
            match st {
                BankState::Precharging | BankState::Activating => {
                    f(flat, st);
                    i += 1;
                }
                _ => {
                    // `Precharging` needs pre_done_at > now and `Activating`
                    // act_done_at > now; both windows are behind `now` and
                    // only move forward via commands (incl. the auto-pre
                    // sweep), each of which calls `touch_bank`. Note a bank
                    // with a *pending* auto-precharge stays listed via its
                    // burst/CAS entry being re-pushed when the precharge
                    // fires, so pruning here is safe.
                    self.in_transition[flat] = false;
                    self.transitioning.swap_remove(i);
                }
            }
        }
    }

    /// Earliest cycle strictly after `now` at which any bank's observable
    /// state changes without a new command (precharge/activate completes,
    /// burst ends, auto-precharge fires). `Cycle::MAX` when all banks are
    /// settled past `now`. One of the caps of the controller's busy-park
    /// horizon.
    pub fn next_bank_transition(&self, now: Cycle) -> Cycle {
        self.banks
            .iter()
            .map(|b| b.next_transition_after(now))
            .min()
            .unwrap_or(Cycle::MAX)
    }

    /// Earliest data-bus burst edge strictly after `now` (next cycle
    /// [`bus_activity`](Self::bus_activity) can change, absent new CAS).
    pub fn next_bus_boundary(&self, now: Cycle) -> Cycle {
        self.bus.next_boundary_after(now)
    }

    /// End cycle of the refresh in progress (or most recently finished) on
    /// `rank`.
    pub fn refresh_end(&self, rank: u32) -> Cycle {
        self.ranks[rank as usize].refresh_end()
    }

    /// Conservative horizon for the idle-cycle fast-forward: `Some(h)` means
    /// that, absent new commands, nothing observable happens on this device
    /// in `[now, h)` — no burst occupies the bus, no bank changes state, no
    /// refresh is due or in progress. `h` is the earliest upcoming refresh
    /// deadline. Returns `None` whenever anything is (or may soon be) in
    /// flight; callers must then step cycle-by-cycle.
    ///
    /// The invariant `next_event` must never overshoot: for every cycle `t`
    /// in `[now, h)`, the device's observable state (bus activity, bank
    /// states, refresh status) at `t` equals its state at `now`.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.bus.busy_at_or_after(now) {
            return None;
        }
        if self.banks.iter().any(|b| !b.is_settled(now)) {
            return None;
        }
        let mut horizon = Cycle::MAX;
        for (r, rank) in self.ranks.iter().enumerate() {
            if rank.refresh_due(now) || self.is_refreshing(r as u32, now) {
                return None;
            }
            horizon = horizon.min(rank.next_refresh_at());
        }
        (horizon > now).then_some(horizon)
    }

    /// Number of refreshes performed on `rank`.
    pub fn refreshes_done(&self, rank: u32) -> u64 {
        self.ranks[rank as usize].refreshes_done()
    }

    // ---- checkpoint/restore --------------------------------------------------------

    /// Captures the full simulation state of this channel. The memo tables
    /// are a cache and are not captured; `memo_enabled` is a tuning knob
    /// and survives restore on the target device.
    pub fn snapshot_state(&self) -> DeviceSnapshot {
        DeviceSnapshot {
            banks: self.banks.clone(),
            ranks: self.ranks.clone(),
            bus: self.bus.clone(),
            stats: self.stats,
            fault: self.fault,
            bank_epochs: self.bank_epochs.clone(),
            rank_epochs: self.rank_epochs.clone(),
            bus_epoch: self.bus_epoch,
            auto_pre_pending: self.auto_pre_pending.clone(),
            transitioning: self.transitioning.clone(),
            in_transition: self.in_transition.clone(),
        }
    }

    /// Restores state captured by [`snapshot_state`](Self::snapshot_state)
    /// into a device built from the same configuration. Every next-legal
    /// memo slot is reset to stale so queries refold from the restored
    /// state — answers are identical to an uninterrupted run.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's geometry (bank/rank counts) does not match
    /// this device's configuration.
    pub fn restore_state(&mut self, snap: &DeviceSnapshot) {
        assert_eq!(snap.banks.len(), self.banks.len(), "bank count mismatch");
        assert_eq!(snap.ranks.len(), self.ranks.len(), "rank count mismatch");
        self.banks = snap.banks.clone();
        self.ranks = snap.ranks.clone();
        self.bus = snap.bus.clone();
        self.stats = snap.stats;
        self.fault = snap.fault;
        self.enforced = snap.fault.corrupt(self.config.timing);
        self.bank_epochs = snap.bank_epochs.clone();
        self.rank_epochs = snap.rank_epochs.clone();
        self.bus_epoch = snap.bus_epoch;
        self.auto_pre_pending = snap.auto_pre_pending.clone();
        self.transitioning = snap.transitioning.clone();
        self.in_transition = snap.in_transition.clone();
        for slot in self
            .act_legal
            .iter()
            .chain(&self.pre_legal)
            .chain(&self.read_legal)
            .chain(&self.write_legal)
        {
            slot.set(NextLegal::STALE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DramDevice {
        DramDevice::new(DeviceConfig::ddr4_2400())
    }

    #[test]
    fn config_validates() {
        DeviceConfig::ddr4_2400().validate().unwrap();
        DeviceConfig::ddr4_3200().validate().unwrap();
        let mut c = DeviceConfig::ddr4_2400();
        c.bus_bytes = 3;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::ddr4_2400();
        c.bus_bytes = 16; // 16 B × 2 × 4 cycles ≠ 64 B line
        assert!(c.validate().is_err());
    }

    #[test]
    fn act_then_read_full_sequence() {
        let mut d = dev();
        let t = *d.timing();
        let b = BankAddr::new(0, 0, 0);
        d.issue(Command::activate(b, 3), 0).unwrap();
        // Read before tRCD is rejected.
        let err = d.issue(Command::read(b, 0), 5).unwrap_err();
        assert!(matches!(
            err,
            CommandError::TimingViolation {
                reason: BlockReason::ActivatePending,
                ..
            }
        ));
        let done = d.issue(Command::read(b, 0), t.t_rcd).unwrap();
        assert_eq!(done, t.t_rcd + t.cl + t.burst_cycles);
        // The burst occupies the bus.
        assert_eq!(d.bus_activity(t.t_rcd + t.cl), Some(BurstKind::Read));
        assert_eq!(d.bus_activity(t.t_rcd + t.cl - 1), None);
    }

    #[test]
    fn cas_without_open_row_is_rejected() {
        let mut d = dev();
        let b = BankAddr::new(0, 0, 0);
        let err = d.issue(Command::read(b, 0), 0).unwrap_err();
        assert!(matches!(err, CommandError::RowMismatch { .. }));
        let e = d.earliest_read(b, 0);
        assert_eq!(e.reason, BlockReason::RowClosed);
    }

    #[test]
    fn same_bank_group_reads_spaced_by_ccd_l() {
        let mut d = dev();
        let t = *d.timing();
        let b0 = BankAddr::new(0, 1, 0);
        let b1 = BankAddr::new(0, 1, 1);
        d.issue(Command::activate(b0, 0), 0).unwrap();
        d.issue(Command::activate(b1, 0), t.t_rrd_l).unwrap();
        // Read b0 well after both ACTs completed so tCCD_L is the only
        // constraint left on b1's read.
        let first = 30;
        d.issue(Command::read(b0, 0), first).unwrap();
        let e = d.earliest_read(b1, first + 1);
        assert_eq!(e.at, first + t.t_ccd_l);
        assert_eq!(e.reason, BlockReason::CcdLong);
    }

    #[test]
    fn cross_bank_group_reads_spaced_by_ccd_s() {
        let mut d = dev();
        let t = *d.timing();
        let b0 = BankAddr::new(0, 0, 0);
        let b1 = BankAddr::new(0, 2, 0);
        d.issue(Command::activate(b0, 0), 0).unwrap();
        d.issue(Command::activate(b1, 0), t.t_rrd_s).unwrap();
        let first = t.t_rcd.max(t.t_rrd_s);
        d.issue(Command::read(b0, 0), first).unwrap();
        let e = d.earliest_read(b1, first);
        assert_eq!(e.at, first + t.t_ccd_s);
    }

    #[test]
    fn write_then_read_pays_wtr() {
        let mut d = dev();
        let t = *d.timing();
        let b = BankAddr::new(0, 0, 0);
        d.issue(Command::activate(b, 0), 0).unwrap();
        d.issue(Command::write(b, 0), t.t_rcd).unwrap();
        let e = d.earliest_read(b, t.t_rcd + 1);
        assert_eq!(e.at, t.t_rcd + t.write_to_read_same_bg());
        assert_eq!(e.reason, BlockReason::WtrLong);
    }

    #[test]
    fn read_then_write_pays_bus_turnaround() {
        let mut d = dev();
        let t = *d.timing();
        let b0 = BankAddr::new(0, 0, 0);
        let b1 = BankAddr::new(0, 2, 0);
        d.issue(Command::activate(b0, 0), 0).unwrap();
        d.issue(Command::activate(b1, 0), t.t_rrd_s).unwrap();
        let rd_at = t.t_rcd.max(t.t_rrd_s);
        d.issue(Command::read(b0, 0), rd_at).unwrap();
        let e = d.earliest_write(b1, rd_at + t.t_ccd_s);
        // Write burst must start after the read burst end + the bubble:
        // wr_cas + CWL >= rd_cas + CL + burst + gap.
        let min_cas = rd_at + t.cl + t.burst_cycles + t.rtw_gap - t.cwl;
        assert_eq!(e.at, min_cas);
        assert_eq!(e.reason, BlockReason::ReadToWrite);
    }

    #[test]
    fn refresh_requires_quiet_rank_and_blocks_activates() {
        let mut d = dev();
        let t = *d.timing();
        let b = BankAddr::new(0, 0, 0);
        d.issue(Command::activate(b, 0), 0).unwrap();
        let err = d.issue(Command::refresh(0), 1).unwrap_err();
        assert!(matches!(err, CommandError::RefreshWhileBusy(_)));
        // Close the bank, then refresh succeeds.
        let pre_at = d.earliest_precharge(b, 1).at;
        d.issue(Command::precharge(b), pre_at).unwrap();
        let quiet_at = pre_at + t.t_rp;
        d.advance(quiet_at);
        assert!(d.rank_quiet(0, quiet_at));
        let end = d.issue(Command::refresh(0), quiet_at).unwrap();
        assert_eq!(end, quiet_at + t.t_rfc);
        assert!(d.is_refreshing(0, quiet_at + 1));
        assert!(!d.is_refreshing(0, end));
        let e = d.earliest_activate(b, quiet_at + 1);
        assert_eq!(e.at, end);
        assert_eq!(e.reason, BlockReason::Refresh);
        assert_eq!(d.refreshes_done(0), 1);
    }

    #[test]
    fn auto_precharge_closes_bank_for_next_activate() {
        let mut d = dev();
        let t = *d.timing();
        let b = BankAddr::new(0, 0, 0);
        d.issue(Command::activate(b, 7), 0).unwrap();
        d.issue(Command::read_ap(b, 0), t.t_rcd).unwrap();
        // After tRAS and tRP the bank can re-activate a different row.
        let reopen = t.t_ras.max(t.t_rcd + t.t_rtp) + t.t_rp;
        d.advance(reopen);
        let e = d.earliest_activate(b, reopen);
        assert!(
            e.at <= reopen.max(t.t_rc),
            "auto-precharge should have closed the row"
        );
        d.issue(Command::activate(b, 8), e.at.max(reopen)).unwrap();
        assert_eq!(d.bank(b).open_row(), Some(8));
    }

    #[test]
    fn address_range_checks() {
        let mut d = dev();
        assert!(matches!(
            d.issue(Command::activate(BankAddr::new(1, 0, 0), 0), 0),
            Err(CommandError::AddressOutOfRange("rank"))
        ));
        assert!(matches!(
            d.issue(Command::activate(BankAddr::new(0, 4, 0), 0), 0),
            Err(CommandError::AddressOutOfRange("bank_group"))
        ));
        assert!(matches!(
            d.issue(Command::activate(BankAddr::new(0, 0, 0), 1 << 20), 0),
            Err(CommandError::AddressOutOfRange("row"))
        ));
    }

    #[test]
    fn rank_constraints_are_independent() {
        // Fill rank 0's tFAW window; rank 1 activates freely.
        let mut d = DramDevice::new(DeviceConfig::ddr4_2400_dual_rank());
        let t = *d.timing();
        let mut at = 0;
        for bg in 0..4u32 {
            let b = BankAddr::new(0, bg, 0);
            at = d.earliest_activate(b, at).at;
            d.issue(Command::activate(b, 0), at).unwrap();
            at += t.t_rrd_s;
        }
        let blocked = d.earliest_activate(BankAddr::new(0, 0, 1), at);
        assert!(blocked.at > at, "rank 0 is tFAW-limited");
        let free = d.earliest_activate(BankAddr::new(1, 0, 0), at);
        assert_eq!(free.at, at, "rank 1 is unconstrained");
        d.issue(Command::activate(BankAddr::new(1, 0, 0), 0), at)
            .unwrap();
    }

    #[test]
    fn ranks_refresh_independently() {
        let mut d = DramDevice::new(DeviceConfig::ddr4_2400_dual_rank());
        let t = *d.timing();
        let due = t.t_refi;
        d.advance(due);
        assert!(d.refresh_due(0, due));
        assert!(d.refresh_due(1, due));
        d.issue(Command::refresh(0), due).unwrap();
        assert!(d.is_refreshing(0, due + 1));
        assert!(!d.is_refreshing(1, due + 1));
        // Rank 1 can still activate while rank 0 refreshes.
        d.issue(Command::activate(BankAddr::new(1, 0, 0), 0), due + 1)
            .unwrap();
        d.issue(Command::refresh(1), due + 2).unwrap_err(); // rank 1 busy now
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dev();
        let t = *d.timing();
        let b = BankAddr::new(0, 0, 0);
        d.issue(Command::activate(b, 0), 0).unwrap();
        d.issue(Command::read(b, 0), t.t_rcd).unwrap();
        d.issue(Command::read(b, 1), t.t_rcd + t.t_ccd_l).unwrap();
        let s = d.stats();
        assert_eq!((s.activates, s.reads, s.writes), (1, 2, 0));
        assert_eq!(d.bus_totals(), (2, 0));
    }

    #[test]
    fn back_to_back_reads_different_groups_saturate_bus() {
        // Reads to alternating bank groups can keep the bus fully busy:
        // burst every tCCD_S = burst_cycles.
        let mut d = dev();
        let t = *d.timing();
        let banks = [BankAddr::new(0, 0, 0), BankAddr::new(0, 1, 0)];
        d.issue(Command::activate(banks[0], 0), 0).unwrap();
        d.issue(Command::activate(banks[1], 0), t.t_rrd_s).unwrap();
        let mut at = t.t_rcd.max(t.t_rrd_s + t.t_rcd);
        for i in 0..8 {
            let bank = banks[i % 2];
            let e = d.earliest_read(bank, at);
            at = e.at;
            d.issue(Command::read(bank, i as u32), at).unwrap();
        }
        // After pipeline fill, every cycle in a window is a read burst.
        let window_start = at + t.cl;
        for cyc in window_start - 2 * t.burst_cycles..window_start + t.burst_cycles {
            assert_eq!(d.bus_activity(cyc), Some(BurstKind::Read), "cycle {cyc}");
        }
    }
}
