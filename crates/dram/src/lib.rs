//! Cycle-level DDR4 DRAM device timing model.
//!
//! This crate models a DDR4-style memory device at the granularity of the
//! DRAM command clock: channels, ranks, bank groups, banks, row buffers and
//! the full set of JEDEC-style timing constraints that govern when
//! `ACT`/`PRE`/`RD`/`WR`/`REF` commands may be issued.
//!
//! It is the substrate under the bandwidth/latency *stack* accounting of the
//! `dramstack-core` crate: besides answering "can this command issue now?"
//! it can explain *why not* ([`BlockReason`]) and report per-bank activity
//! ([`BankActivity`]) for any cycle, which is exactly the information the
//! hierarchical stack accounting needs.
//!
//! # Example
//!
//! ```
//! use dramstack_dram::{DramDevice, DeviceConfig, Command, BankAddr};
//!
//! let mut dev = DramDevice::new(DeviceConfig::ddr4_2400());
//! let bank = BankAddr::new(0, 0, 0);
//! // Activate row 7, then read column 3 as soon as the timing allows.
//! let t_act = dev.earliest_activate(bank, 0).at;
//! dev.issue(Command::activate(bank, 7), t_act).unwrap();
//! let t_rd = dev.earliest_read(bank, t_act + 1).at;
//! let done = dev.issue(Command::read(bank, 3), t_rd).unwrap();
//! assert!(done > t_rd, "data returns after the CAS latency");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bank;
mod bus;
mod command;
mod device;
mod error;
mod fault;
mod geometry;
mod rank;
mod timing;
pub mod trace;
mod view;

pub use bank::{Bank, BankState};
pub use bus::{Burst, BurstKind, DataBus};
pub use command::{Command, CommandKind};
pub use device::{DeviceConfig, DeviceSnapshot, DramDevice, Earliest};
pub use error::{CommandError, ConfigError};
pub use fault::SeededFault;
pub use geometry::{BankAddr, DramAddress, DramGeometry};
pub use rank::{RankState, RankTimingState};
pub use timing::TimingParams;
pub use trace::TimedCommand;
pub use view::{BankActivity, BlockLevel, BlockReason, CycleView};

/// A point in time, measured in DRAM command-clock cycles.
///
/// At DDR4-2400 the command clock runs at 1200 MHz, so one cycle is
/// 0.8333 ns and the 8-byte data bus moves 16 bytes per cycle (double data
/// rate).
pub type Cycle = u64;
