//! DRAM geometry: the channel → rank → bank group → bank → row → column
//! hierarchy, and the address types used throughout the simulator.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// Physical organization of one DRAM channel.
///
/// The default matches the ISPASS 2022 paper's setup: one rank, 4 bank
/// groups × 4 banks, 8 KB rows of 128 64-byte lines, 32 Ki rows per bank —
/// 4 GB per channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Number of ranks sharing the channel.
    pub ranks: u32,
    /// Bank groups per rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Columns per row, where one column holds one cache line.
    pub columns: u32,
    /// Bytes per column (cache-line size).
    pub line_bytes: u32,
}

impl DramGeometry {
    /// The paper's DDR4 geometry: 1 rank, 4×4 banks, 8 KB pages, 4 GB.
    pub fn ddr4_single_rank() -> Self {
        DramGeometry {
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 32 * 1024,
            columns: 128,
            line_bytes: 64,
        }
    }

    /// A dual-rank variant of the paper's geometry: 8 GB, 32 banks.
    /// Ranks share the channel but have independent timing state, so rank
    /// interleaving hides bank-group constraints at the cost of on-bus
    /// turnarounds.
    pub fn ddr4_dual_rank() -> Self {
        DramGeometry {
            ranks: 2,
            ..Self::ddr4_single_rank()
        }
    }

    /// Validates that every field is a nonzero power of two.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidGeometry`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn pow2(v: u32, what: &'static str) -> Result<(), ConfigError> {
            if v == 0 || !v.is_power_of_two() {
                Err(ConfigError::InvalidGeometry(what))
            } else {
                Ok(())
            }
        }
        pow2(self.ranks, "ranks")?;
        pow2(self.bank_groups, "bank_groups")?;
        pow2(self.banks_per_group, "banks_per_group")?;
        pow2(self.rows, "rows")?;
        pow2(self.columns, "columns")?;
        pow2(self.line_bytes, "line_bytes")?;
        Ok(())
    }

    /// Total banks per rank.
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Total banks in the channel (all ranks).
    pub fn total_banks(&self) -> u32 {
        self.ranks * self.banks_per_rank()
    }

    /// Row size in bytes (the page-buffer size).
    pub fn row_bytes(&self) -> u64 {
        u64::from(self.columns) * u64::from(self.line_bytes)
    }

    /// Total channel capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.total_banks()) * u64::from(self.rows) * self.row_bytes()
    }

    /// Flat bank index in `0..total_banks()` for `addr`.
    pub fn flat_bank(&self, addr: BankAddr) -> usize {
        ((addr.rank * self.bank_groups + addr.bank_group) * self.banks_per_group + addr.bank)
            as usize
    }

    /// Inverse of [`flat_bank`](Self::flat_bank).
    pub fn bank_addr(&self, flat: usize) -> BankAddr {
        let flat = flat as u32;
        let bank = flat % self.banks_per_group;
        let rest = flat / self.banks_per_group;
        let bank_group = rest % self.bank_groups;
        let rank = rest / self.bank_groups;
        BankAddr {
            rank,
            bank_group,
            bank,
        }
    }

    /// Iterator over every bank address in the channel, in flat order.
    pub fn iter_banks(&self) -> impl Iterator<Item = BankAddr> + '_ {
        (0..self.total_banks() as usize).map(|i| self.bank_addr(i))
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::ddr4_single_rank()
    }
}

/// Address of one bank inside a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BankAddr {
    /// Rank index.
    pub rank: u32,
    /// Bank group index within the rank.
    pub bank_group: u32,
    /// Bank index within the bank group.
    pub bank: u32,
}

impl BankAddr {
    /// Creates a bank address from its three coordinates.
    pub fn new(rank: u32, bank_group: u32, bank: u32) -> Self {
        BankAddr {
            rank,
            bank_group,
            bank,
        }
    }
}

impl fmt::Display for BankAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}g{}b{}", self.rank, self.bank_group, self.bank)
    }
}

/// A fully decoded DRAM address: which bank, row and column a physical
/// address maps to. Produced by the address-mapping schemes in
/// `dramstack-memctrl`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramAddress {
    /// Target bank.
    pub bank: BankAddr,
    /// Row within the bank.
    pub row: u32,
    /// Column (cache line) within the row.
    pub column: u32,
}

impl DramAddress {
    /// Creates a decoded address.
    pub fn new(bank: BankAddr, row: u32, column: u32) -> Self {
        DramAddress { bank, row, column }
    }
}

impl fmt::Display for DramAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:row{}:col{}", self.bank, self.row, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_capacity_is_4_gib() {
        let g = DramGeometry::ddr4_single_rank();
        g.validate().unwrap();
        assert_eq!(g.total_banks(), 16);
        assert_eq!(g.row_bytes(), 8 * 1024);
        assert_eq!(g.capacity_bytes(), 4 << 30);
    }

    #[test]
    fn flat_bank_roundtrip() {
        let g = DramGeometry {
            ranks: 2,
            ..DramGeometry::ddr4_single_rank()
        };
        for flat in 0..g.total_banks() as usize {
            assert_eq!(g.flat_bank(g.bank_addr(flat)), flat);
        }
    }

    #[test]
    fn iter_banks_covers_all_banks_once() {
        let g = DramGeometry::ddr4_single_rank();
        let banks: Vec<_> = g.iter_banks().collect();
        assert_eq!(banks.len(), 16);
        let mut dedup = banks.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    #[test]
    fn validate_rejects_non_power_of_two() {
        let mut g = DramGeometry::ddr4_single_rank();
        g.columns = 100;
        assert_eq!(g.validate(), Err(ConfigError::InvalidGeometry("columns")));
        g.columns = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn display_formats() {
        let a = BankAddr::new(0, 2, 3);
        assert_eq!(a.to_string(), "r0g2b3");
        let d = DramAddress::new(a, 11, 5);
        assert_eq!(d.to_string(), "r0g2b3:row11:col5");
    }
}
