//! Error types for device configuration and command issue.

use std::error::Error;
use std::fmt;

use crate::view::BlockReason;
use crate::{geometry::BankAddr, Cycle};

/// Error returned when a [`DeviceConfig`](crate::DeviceConfig) is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A geometry field was zero or not a power of two where required.
    InvalidGeometry(&'static str),
    /// A timing parameter combination is inconsistent (e.g. `tRAS > tRC`).
    InvalidTiming(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidGeometry(what) => write!(f, "invalid geometry: {what}"),
            ConfigError::InvalidTiming(what) => write!(f, "invalid timing: {what}"),
        }
    }
}

impl Error for ConfigError {}

/// Error returned when a command cannot legally issue at the requested cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandError {
    /// The command violates a timing constraint; issue is blocked until the
    /// contained cycle for the contained reason.
    TimingViolation {
        /// Bank the command targeted.
        bank: BankAddr,
        /// Earliest cycle at which the command could issue.
        ready_at: Cycle,
        /// The binding constraint.
        reason: BlockReason,
    },
    /// A CAS command targeted a bank whose row buffer holds a different row
    /// (or no row at all).
    RowMismatch {
        /// Bank the command targeted.
        bank: BankAddr,
        /// Row currently held in the row buffer, if any.
        open_row: Option<u32>,
        /// Row the command needed.
        wanted_row: u32,
    },
    /// An `ACT` was issued to a bank that already has an open row.
    BankNotPrecharged(BankAddr),
    /// A refresh was requested while some bank still has an open row or an
    /// operation in flight.
    RefreshWhileBusy(BankAddr),
    /// The address is outside the configured geometry.
    AddressOutOfRange(&'static str),
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::TimingViolation {
                bank,
                ready_at,
                reason,
            } => write!(
                f,
                "timing violation at bank {bank}: blocked by {reason} until cycle {ready_at}"
            ),
            CommandError::RowMismatch {
                bank,
                open_row,
                wanted_row,
            } => write!(
                f,
                "row mismatch at bank {bank}: open row {open_row:?}, wanted {wanted_row}"
            ),
            CommandError::BankNotPrecharged(bank) => {
                write!(f, "activate to bank {bank} which already has an open row")
            }
            CommandError::RefreshWhileBusy(bank) => {
                write!(f, "refresh while bank {bank} is busy or open")
            }
            CommandError::AddressOutOfRange(what) => write!(f, "address out of range: {what}"),
        }
    }
}

impl Error for CommandError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = ConfigError::InvalidTiming("tRAS exceeds tRC");
        assert!(!e.to_string().is_empty());
        let e = CommandError::AddressOutOfRange("row");
        assert!(e.to_string().contains("row"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<CommandError>();
    }
}
