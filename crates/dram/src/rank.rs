//! Rank-level timing state: tFAW, tRRD, tCCD, write-to-read turnaround and
//! refresh.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::timing::TimingParams;
use crate::view::BlockReason;
use crate::Cycle;

/// Whether a rank is available or being refreshed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankState {
    /// Normal operation.
    Available,
    /// In a refresh cycle until the contained cycle.
    Refreshing {
        /// First cycle after the refresh completes.
        until: Cycle,
    },
}

/// Timing state shared by all banks of one rank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankTimingState {
    /// Issue times of the most recent ACTs, for the tFAW window (≤ 4 kept).
    act_window: VecDeque<Cycle>,
    /// Most recent ACT per bank group (tRRD_L) — indexed by bank group.
    last_act_per_bg: Vec<Option<Cycle>>,
    /// Most recent ACT anywhere in the rank (tRRD_S).
    last_act_any: Option<Cycle>,
    /// Most recent CAS per bank group (tCCD_L).
    last_cas_per_bg: Vec<Option<Cycle>>,
    /// Most recent CAS anywhere in the rank (tCCD_S).
    last_cas_any: Option<Cycle>,
    /// Per bank group: issue time of the most recent *write* CAS
    /// (write-to-read turnaround, tWTR_L).
    last_write_cas_per_bg: Vec<Option<Cycle>>,
    /// Issue time of the most recent write CAS anywhere (tWTR_S).
    last_write_cas_any: Option<Cycle>,
    /// Refresh bookkeeping.
    refreshing_until: Cycle,
    next_refresh_due: Cycle,
    refreshes_done: u64,
}

/// A candidate issue time together with the constraint that produced it.
fn tighten(at: &mut Cycle, reason: &mut BlockReason, cand: Cycle, cand_reason: BlockReason) {
    if cand > *at {
        *at = cand;
        *reason = cand_reason;
    }
}

impl RankTimingState {
    /// Fresh rank state; first refresh falls due one tREFI in.
    pub fn new(bank_groups: u32, timing: &TimingParams) -> Self {
        RankTimingState {
            act_window: VecDeque::with_capacity(4),
            last_act_per_bg: vec![None; bank_groups as usize],
            last_act_any: None,
            last_cas_per_bg: vec![None; bank_groups as usize],
            last_cas_any: None,
            last_write_cas_per_bg: vec![None; bank_groups as usize],
            last_write_cas_any: None,
            refreshing_until: 0,
            next_refresh_due: timing.t_refi,
            refreshes_done: 0,
        }
    }

    /// Rank availability at cycle `now`.
    pub fn state(&self, now: Cycle) -> RankState {
        if now < self.refreshing_until {
            RankState::Refreshing {
                until: self.refreshing_until,
            }
        } else {
            RankState::Available
        }
    }

    /// Whether a refresh is overdue at `now` (the controller should drain
    /// and issue a REF).
    pub fn refresh_due(&self, now: Cycle) -> bool {
        now >= self.next_refresh_due
    }

    /// Cycle at which the next refresh falls due.
    pub fn next_refresh_at(&self) -> Cycle {
        self.next_refresh_due
    }

    /// Number of refreshes performed so far.
    pub fn refreshes_done(&self) -> u64 {
        self.refreshes_done
    }

    /// Starts a refresh at `at`; the rank is unavailable for tRFC.
    pub fn start_refresh(&mut self, at: Cycle, timing: &TimingParams) {
        debug_assert!(at >= self.refreshing_until);
        self.refreshing_until = at + timing.t_rfc;
        // Keep the nominal refresh cadence: schedule relative to the due
        // time, not the (possibly late) actual start, as real controllers
        // pull-in/postpone around a fixed tREFI grid.
        self.next_refresh_due += timing.t_refi;
        self.refreshes_done += 1;
    }

    /// First cycle after the in-progress (or last) refresh completes.
    pub fn refresh_end(&self) -> Cycle {
        self.refreshing_until
    }

    /// Earliest ACT issue cycle under rank-level constraints
    /// (tRRD_S/L, tFAW, refresh), with the binding constraint.
    pub fn earliest_activate(
        &self,
        bank_group: u32,
        timing: &TimingParams,
    ) -> (Cycle, BlockReason) {
        let mut at = 0;
        let mut reason = BlockReason::None;
        tighten(
            &mut at,
            &mut reason,
            self.refreshing_until,
            BlockReason::Refresh,
        );
        if let Some(last) = self.last_act_any {
            tighten(
                &mut at,
                &mut reason,
                last + timing.t_rrd_s,
                BlockReason::RrdShort,
            );
        }
        if let Some(last) = self.last_act_per_bg[bank_group as usize] {
            tighten(
                &mut at,
                &mut reason,
                last + timing.t_rrd_l,
                BlockReason::RrdLong,
            );
        }
        if self.act_window.len() == 4 {
            tighten(
                &mut at,
                &mut reason,
                self.act_window[0] + timing.t_faw,
                BlockReason::Faw,
            );
        }
        (at, reason)
    }

    /// Records an ACT issued at `at` to `bank_group`.
    pub fn record_activate(&mut self, at: Cycle, bank_group: u32) {
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(at);
        self.last_act_any = Some(at);
        self.last_act_per_bg[bank_group as usize] = Some(at);
    }

    /// Earliest CAS issue cycle under rank-level constraints: tCCD_S/L and,
    /// for reads, the write-to-read turnaround (tWTR_S/L). Refresh blocks
    /// everything. Returns the binding constraint; its
    /// [`level()`](BlockReason::level) tells the stack accounting whether to
    /// charge the bank group or the whole rank.
    pub fn earliest_cas(
        &self,
        bank_group: u32,
        is_read: bool,
        timing: &TimingParams,
    ) -> (Cycle, BlockReason) {
        let mut at = 0;
        let mut reason = BlockReason::None;
        tighten(
            &mut at,
            &mut reason,
            self.refreshing_until,
            BlockReason::Refresh,
        );

        if let Some(last) = self.last_cas_any {
            tighten(
                &mut at,
                &mut reason,
                last + timing.t_ccd_s,
                BlockReason::CcdShort,
            );
        }
        if let Some(last) = self.last_cas_per_bg[bank_group as usize] {
            tighten(
                &mut at,
                &mut reason,
                last + timing.t_ccd_l,
                BlockReason::CcdLong,
            );
        }
        if is_read {
            if let Some(last_wr) = self.last_write_cas_any {
                tighten(
                    &mut at,
                    &mut reason,
                    last_wr + timing.write_to_read_diff_bg(),
                    BlockReason::WtrShort,
                );
            }
            if let Some(last_wr) = self.last_write_cas_per_bg[bank_group as usize] {
                tighten(
                    &mut at,
                    &mut reason,
                    last_wr + timing.write_to_read_same_bg(),
                    BlockReason::WtrLong,
                );
            }
        }
        (at, reason)
    }

    /// Records a CAS issued at `at` to `bank_group`.
    pub fn record_cas(&mut self, at: Cycle, bank_group: u32, is_write: bool) {
        self.last_cas_any = Some(at);
        self.last_cas_per_bg[bank_group as usize] = Some(at);
        if is_write {
            self.last_write_cas_any = Some(at);
            self.last_write_cas_per_bg[bank_group as usize] = Some(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr4_2400()
    }

    #[test]
    fn faw_limits_fifth_activate() {
        let timing = t();
        let mut r = RankTimingState::new(4, &timing);
        let mut at = 0;
        for bg in 0..4u32 {
            at = r.earliest_activate(bg, &timing).0.max(at);
            r.record_activate(at, bg);
            at += timing.t_rrd_s;
        }
        let (fifth, reason) = r.earliest_activate(1, &timing);
        assert!(
            fifth >= timing.t_faw,
            "fifth ACT at {fifth}, tFAW {}",
            timing.t_faw
        );
        assert_eq!(reason, BlockReason::Faw);
    }

    #[test]
    fn rrd_long_within_bank_group() {
        let timing = t();
        let mut r = RankTimingState::new(4, &timing);
        r.record_activate(100, 2);
        let (same, same_r) = r.earliest_activate(2, &timing);
        assert_eq!((same, same_r), (100 + timing.t_rrd_l, BlockReason::RrdLong));
        let (diff, diff_r) = r.earliest_activate(0, &timing);
        assert_eq!(
            (diff, diff_r),
            (100 + timing.t_rrd_s, BlockReason::RrdShort)
        );
    }

    #[test]
    fn ccd_long_flags_bank_group_local() {
        let timing = t();
        let mut r = RankTimingState::new(4, &timing);
        r.record_cas(50, 1, false);
        let (at_same, r_same) = r.earliest_cas(1, true, &timing);
        assert_eq!(
            (at_same, r_same),
            (50 + timing.t_ccd_l, BlockReason::CcdLong)
        );
        let (at_diff, r_diff) = r.earliest_cas(0, true, &timing);
        assert_eq!(
            (at_diff, r_diff),
            (50 + timing.t_ccd_s, BlockReason::CcdShort)
        );
    }

    #[test]
    fn write_to_read_turnaround() {
        let timing = t();
        let mut r = RankTimingState::new(4, &timing);
        r.record_cas(10, 3, true);
        let (rd_same, reason_same) = r.earliest_cas(3, true, &timing);
        assert_eq!(rd_same, 10 + timing.write_to_read_same_bg());
        assert_eq!(reason_same, BlockReason::WtrLong);
        let (rd_diff, reason_diff) = r.earliest_cas(0, true, &timing);
        assert_eq!(rd_diff, 10 + timing.write_to_read_diff_bg());
        assert_eq!(reason_diff, BlockReason::WtrShort);
        // A following *write* is only constrained by tCCD.
        let (wr, wr_reason) = r.earliest_cas(0, false, &timing);
        assert_eq!(
            (wr, wr_reason),
            (10 + timing.t_ccd_s, BlockReason::CcdShort)
        );
    }

    #[test]
    fn refresh_blocks_and_reschedules() {
        let timing = t();
        let mut r = RankTimingState::new(4, &timing);
        assert!(!r.refresh_due(timing.t_refi - 1));
        assert!(r.refresh_due(timing.t_refi));
        r.start_refresh(timing.t_refi, &timing);
        assert_eq!(
            r.state(timing.t_refi + 1),
            RankState::Refreshing {
                until: timing.t_refi + timing.t_rfc
            }
        );
        assert_eq!(r.state(timing.t_refi + timing.t_rfc), RankState::Available);
        assert_eq!(r.next_refresh_at(), 2 * timing.t_refi);
        assert_eq!(r.refreshes_done(), 1);
        let (at, reason) = r.earliest_activate(0, &timing);
        assert!(at >= timing.t_refi + timing.t_rfc);
        assert_eq!(reason, BlockReason::Refresh);
    }

    #[test]
    fn refresh_cadence_is_stable_even_when_late() {
        let timing = t();
        let mut r = RankTimingState::new(4, &timing);
        // Start the first refresh 500 cycles late; the second is still due
        // at 2 × tREFI.
        r.start_refresh(timing.t_refi + 500, &timing);
        assert_eq!(r.next_refresh_at(), 2 * timing.t_refi);
    }
}
