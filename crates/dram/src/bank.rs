//! Per-bank row-buffer state machine and bank-local timing windows.

use serde::{Deserialize, Serialize};

use crate::timing::TimingParams;
use crate::Cycle;

/// What a bank is doing at a given cycle, as far as bank-local state goes.
///
/// This is the raw state; the stack accounting combines it with pending
/// request information to produce a [`BankActivity`](crate::BankActivity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankState {
    /// No row open, no operation in flight.
    Precharged,
    /// A PRE is in progress (within tRP).
    Precharging,
    /// An ACT is in progress (within tRCD).
    Activating,
    /// Row open, CAS issued, data burst not yet finished.
    CasInFlight,
    /// Row open and the bank is otherwise quiescent.
    Open,
}

/// State of a single DRAM bank.
///
/// The bank tracks its open row plus the absolute cycles at which each of
/// its bank-local timing windows expires. All command legality questions are
/// answered in terms of those windows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bank {
    open_row: Option<u32>,
    /// Cycle the in-progress PRE finishes (ACT allowed from here).
    pre_done_at: Cycle,
    /// Cycle the in-progress ACT finishes (CAS allowed from here).
    act_done_at: Cycle,
    /// Issue time of the most recent ACT (for tRAS / tRC).
    last_act_at: Cycle,
    /// Earliest cycle a PRE may issue (max of tRAS, tRTP, tWR windows).
    pre_allowed_at: Cycle,
    /// End of the most recent data burst from/to this bank.
    burst_end_at: Cycle,
    /// Issue time of the most recent CAS to this bank.
    last_cas_at: Cycle,
    /// Pending auto-precharge start time, if a RDA/WRA is in flight.
    auto_pre_at: Option<Cycle>,
    /// Statistics: activates, precharges, reads, writes issued to this bank.
    stats: BankStats,
}

/// Per-bank command counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued (including auto-precharges).
    pub precharges: u64,
    /// Read CAS commands issued.
    pub reads: u64,
    /// Write CAS commands issued.
    pub writes: u64,
}

impl Bank {
    /// A freshly precharged, idle bank.
    pub fn new() -> Self {
        Bank {
            open_row: None,
            pre_done_at: 0,
            act_done_at: 0,
            last_act_at: 0,
            pre_allowed_at: 0,
            burst_end_at: 0,
            last_cas_at: 0,
            auto_pre_at: None,
            stats: BankStats::default(),
        }
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Cumulative command counters for this bank.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Applies a pending auto-precharge if its start time has been reached.
    /// Must be called (cheaply) before querying state at cycle `now`.
    /// Returns whether the auto-precharge fired (the bank changed state).
    pub fn apply_auto_precharge(&mut self, now: Cycle, timing: &TimingParams) -> bool {
        if let Some(start) = self.auto_pre_at {
            if now >= start {
                self.auto_pre_at = None;
                self.open_row = None;
                self.pre_done_at = start + timing.t_rp;
                self.stats.precharges += 1;
                return true;
            }
        }
        false
    }

    /// Whether a RDA/WRA auto-precharge is still pending on this bank.
    pub fn has_auto_pre(&self) -> bool {
        self.auto_pre_at.is_some()
    }

    /// Cycle the in-progress (or most recent) precharge finishes. Exposed
    /// for the device's next-legal-cycle tables: while `now` is before this
    /// cycle the bank reports [`BankState::Precharging`].
    pub fn pre_done_at(&self) -> Cycle {
        self.pre_done_at
    }

    /// Earliest cycle strictly after `now` at which this bank's observable
    /// state can change without a new command: a precharge or activate
    /// completes, a data burst ends, or a pending auto-precharge fires.
    /// Returns `Cycle::MAX` when the bank is settled past `now`.
    pub fn next_transition_after(&self, now: Cycle) -> Cycle {
        let mut h = Cycle::MAX;
        for t in [self.pre_done_at, self.act_done_at, self.burst_end_at] {
            if t > now {
                h = h.min(t);
            }
        }
        if let Some(a) = self.auto_pre_at {
            // Callers run `advance(now)` first, so a pending auto-precharge
            // always starts in the future here.
            debug_assert!(a > now, "unapplied auto-precharge at {a} <= {now}");
            h = h.min(a.max(now + 1));
        }
        h
    }

    /// The bank's state at cycle `now`. Callers must have applied pending
    /// auto-precharges first.
    pub fn state(&self, now: Cycle) -> BankState {
        if now < self.pre_done_at {
            BankState::Precharging
        } else if self.open_row.is_some() && now < self.act_done_at {
            BankState::Activating
        } else if self.open_row.is_some() && now < self.burst_end_at {
            BankState::CasInFlight
        } else if self.open_row.is_some() {
            BankState::Open
        } else {
            BankState::Precharged
        }
    }

    /// Whether the bank is fully idle (precharged, nothing in flight) — the
    /// condition a refresh needs.
    pub fn is_quiet(&self, now: Cycle) -> bool {
        self.open_row.is_none() && now >= self.pre_done_at && self.auto_pre_at.is_none()
    }

    /// Whether the bank has reached a steady state at `now`: no precharge,
    /// activate, burst or auto-precharge in flight. A settled bank's
    /// [`state`](Self::state) is `Precharged` or `Open` and stays that way
    /// until a new command arrives — the bank-local condition for the
    /// idle-cycle fast-forward in the simulator's drive loop.
    pub fn is_settled(&self, now: Cycle) -> bool {
        self.auto_pre_at.is_none()
            && now >= self.pre_done_at
            && (self.open_row.is_none() || (now >= self.act_done_at && now >= self.burst_end_at))
    }

    /// Earliest cycle an ACT may issue to this bank (bank-local constraints
    /// only: tRP after PRE, tRC after the previous ACT).
    pub fn earliest_activate(&self, timing: &TimingParams) -> Cycle {
        let after_pre = self.pre_done_at;
        let after_rc = if self.stats.activates > 0 {
            self.last_act_at + timing.t_rc
        } else {
            0
        };
        after_pre.max(after_rc)
    }

    /// Earliest cycle a PRE may issue (tRAS, tRTP and tWR windows).
    pub fn earliest_precharge(&self) -> Cycle {
        self.pre_allowed_at
    }

    /// Earliest cycle a CAS may issue, considering only this bank's ACT
    /// completion (callers add bank-group / rank / bus constraints).
    ///
    /// Returns `None` if no row is open (a CAS is not possible at all).
    pub fn earliest_cas(&self) -> Option<Cycle> {
        self.open_row.map(|_| self.act_done_at)
    }

    /// Issues an ACT at cycle `at` for `row`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the bank is precharged and timing windows allow it;
    /// the device validates before calling.
    pub fn issue_activate(&mut self, at: Cycle, row: u32, timing: &TimingParams) {
        debug_assert!(self.open_row.is_none());
        debug_assert!(at >= self.earliest_activate(timing));
        self.open_row = Some(row);
        self.last_act_at = at;
        self.act_done_at = at + timing.t_rcd;
        self.pre_allowed_at = self.pre_allowed_at.max(at + timing.t_ras);
        self.stats.activates += 1;
    }

    /// Issues a PRE at cycle `at`.
    pub fn issue_precharge(&mut self, at: Cycle, timing: &TimingParams) {
        debug_assert!(self.open_row.is_some());
        debug_assert!(at >= self.pre_allowed_at);
        self.open_row = None;
        self.pre_done_at = at + timing.t_rp;
        self.stats.precharges += 1;
    }

    /// Issues a read CAS at cycle `at` whose data burst occupies
    /// `[burst_start, burst_start + burst)`. If `auto_pre`, schedules the
    /// auto-precharge at the latest of the tRAS/tRTP windows.
    pub fn issue_read(
        &mut self,
        at: Cycle,
        burst_start: Cycle,
        auto_pre: bool,
        timing: &TimingParams,
    ) {
        debug_assert!(self.open_row.is_some());
        debug_assert!(at >= self.act_done_at);
        self.last_cas_at = at;
        self.burst_end_at = burst_start + timing.burst_cycles;
        self.pre_allowed_at = self.pre_allowed_at.max(at + timing.t_rtp);
        self.stats.reads += 1;
        if auto_pre {
            self.auto_pre_at = Some(self.pre_allowed_at.max(at + timing.t_rtp));
        }
    }

    /// Issues a write CAS at cycle `at` whose data burst occupies
    /// `[burst_start, burst_start + burst)`. Write recovery (tWR) runs from
    /// the end of the burst.
    pub fn issue_write(
        &mut self,
        at: Cycle,
        burst_start: Cycle,
        auto_pre: bool,
        timing: &TimingParams,
    ) {
        debug_assert!(self.open_row.is_some());
        debug_assert!(at >= self.act_done_at);
        self.last_cas_at = at;
        let burst_end = burst_start + timing.burst_cycles;
        self.burst_end_at = burst_end;
        self.pre_allowed_at = self.pre_allowed_at.max(burst_end + timing.t_wr);
        self.stats.writes += 1;
        if auto_pre {
            self.auto_pre_at = Some(burst_end + timing.t_wr);
        }
    }

    /// Forces the bank into the precharged state at `at` (used by refresh
    /// completion: refresh leaves every bank precharged).
    pub fn force_precharged(&mut self, at: Cycle) {
        self.open_row = None;
        self.auto_pre_at = None;
        self.pre_done_at = self.pre_done_at.max(at);
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr4_2400()
    }

    #[test]
    fn fresh_bank_is_precharged() {
        let b = Bank::new();
        assert_eq!(b.state(0), BankState::Precharged);
        assert_eq!(b.open_row(), None);
        assert!(b.is_quiet(0));
        assert_eq!(b.earliest_activate(&t()), 0);
        assert_eq!(b.earliest_cas(), None);
    }

    #[test]
    fn activate_opens_row_after_trcd() {
        let timing = t();
        let mut b = Bank::new();
        b.issue_activate(10, 42, &timing);
        assert_eq!(b.open_row(), Some(42));
        assert_eq!(b.state(10), BankState::Activating);
        assert_eq!(b.state(10 + timing.t_rcd - 1), BankState::Activating);
        assert_eq!(b.state(10 + timing.t_rcd), BankState::Open);
        assert_eq!(b.earliest_cas(), Some(10 + timing.t_rcd));
    }

    #[test]
    fn precharge_respects_tras_and_closes_row() {
        let timing = t();
        let mut b = Bank::new();
        b.issue_activate(0, 1, &timing);
        assert_eq!(b.earliest_precharge(), timing.t_ras);
        b.issue_precharge(timing.t_ras, &timing);
        assert_eq!(b.open_row(), None);
        assert_eq!(b.state(timing.t_ras), BankState::Precharging);
        assert_eq!(b.state(timing.t_ras + timing.t_rp), BankState::Precharged);
        // tRC: next ACT no earlier than last ACT + tRC.
        assert_eq!(
            b.earliest_activate(&timing),
            timing.t_rc.max(timing.t_ras + timing.t_rp)
        );
    }

    #[test]
    fn read_extends_pre_window_by_trtp() {
        let timing = t();
        let mut b = Bank::new();
        b.issue_activate(0, 1, &timing);
        let cas_at = timing.t_rcd;
        b.issue_read(cas_at, cas_at + timing.cl, false, &timing);
        assert_eq!(b.state(cas_at + 1), BankState::CasInFlight);
        assert_eq!(
            b.earliest_precharge(),
            timing.t_ras.max(cas_at + timing.t_rtp)
        );
        let burst_end = cas_at + timing.cl + timing.burst_cycles;
        assert_eq!(b.state(burst_end), BankState::Open);
    }

    #[test]
    fn write_recovery_blocks_precharge() {
        let timing = t();
        let mut b = Bank::new();
        b.issue_activate(0, 1, &timing);
        let cas_at = timing.t_rcd;
        let burst_start = cas_at + timing.cwl;
        b.issue_write(cas_at, burst_start, false, &timing);
        let burst_end = burst_start + timing.burst_cycles;
        assert_eq!(b.earliest_precharge(), burst_end + timing.t_wr);
    }

    #[test]
    fn auto_precharge_fires() {
        let timing = t();
        let mut b = Bank::new();
        b.issue_activate(0, 1, &timing);
        let cas_at = timing.t_rcd;
        b.issue_read(cas_at, cas_at + timing.cl, true, &timing);
        let pre_at = timing.t_ras.max(cas_at + timing.t_rtp);
        b.apply_auto_precharge(pre_at - 1, &timing);
        assert_eq!(b.open_row(), Some(1));
        b.apply_auto_precharge(pre_at, &timing);
        assert_eq!(b.open_row(), None);
        assert_eq!(b.state(pre_at), BankState::Precharging);
        assert_eq!(b.stats().precharges, 1);
    }

    #[test]
    fn stats_count_commands() {
        let timing = t();
        let mut b = Bank::new();
        b.issue_activate(0, 1, &timing);
        let cas = timing.t_rcd;
        b.issue_read(cas, cas + timing.cl, false, &timing);
        b.issue_read(cas + 6, cas + 6 + timing.cl, false, &timing);
        b.issue_write(cas + 30, cas + 30 + timing.cwl, false, &timing);
        let pre_at = b.earliest_precharge();
        b.issue_precharge(pre_at, &timing);
        let s = b.stats();
        assert_eq!((s.activates, s.precharges, s.reads, s.writes), (1, 1, 2, 1));
    }

    #[test]
    fn force_precharged_clears_everything() {
        let timing = t();
        let mut b = Bank::new();
        b.issue_activate(0, 5, &timing);
        b.force_precharged(100);
        assert_eq!(b.open_row(), None);
        assert!(b.is_quiet(100));
    }
}
