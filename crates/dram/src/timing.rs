//! DDR4 timing parameters.
//!
//! All values are expressed in DRAM command-clock cycles (e.g. 1200 MHz for
//! DDR4-2400). The parameter names follow the JEDEC DDR4 specification
//! (JESD79-4); `_s`/`_l` suffixes denote the short (different bank group)
//! and long (same bank group) variants.

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::Cycle;

/// The timing-constraint set of a DDR4 device, in command-clock cycles.
///
/// # Example
///
/// ```
/// use dramstack_dram::TimingParams;
///
/// let t = TimingParams::ddr4_2400();
/// // 2400 MT/s × 8 B = the paper's 19.2 GB/s peak.
/// assert!((t.peak_bandwidth_gbps(8) - 19.2).abs() < 1e-9);
/// // A bank group moves one line per 6 cycles, the channel per 4 —
/// // the constraint behind the paper's seq-1c "constraints" component.
/// assert!(t.t_ccd_l > t.burst_cycles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Command-clock frequency in MHz (data rate is twice this).
    pub freq_mhz: u32,
    /// CAS (read) latency: READ command to first data beat.
    pub cl: Cycle,
    /// CAS write latency: WRITE command to first data beat.
    pub cwl: Cycle,
    /// ACT to internal read/write delay (row to column delay).
    pub t_rcd: Cycle,
    /// PRE to ACT delay (row precharge time).
    pub t_rp: Cycle,
    /// ACT to PRE minimum (row active time).
    pub t_ras: Cycle,
    /// ACT to ACT same bank (row cycle time); typically `t_ras + t_rp`.
    pub t_rc: Cycle,
    /// Burst length in bus cycles (`BL8 / 2` for DDR — 4 cycles for 64 B).
    pub burst_cycles: Cycle,
    /// CAS to CAS, different bank group.
    pub t_ccd_s: Cycle,
    /// CAS to CAS, same bank group (the "bank-group bandwidth" constraint).
    pub t_ccd_l: Cycle,
    /// ACT to ACT, different bank group.
    pub t_rrd_s: Cycle,
    /// ACT to ACT, same bank group.
    pub t_rrd_l: Cycle,
    /// Four-activate window: at most 4 ACTs per rank in this window.
    pub t_faw: Cycle,
    /// READ to PRE delay.
    pub t_rtp: Cycle,
    /// Write recovery: end of write burst to PRE.
    pub t_wr: Cycle,
    /// End of write burst to READ, different bank group.
    pub t_wtr_s: Cycle,
    /// End of write burst to READ, same bank group.
    pub t_wtr_l: Cycle,
    /// Extra bus gap inserted between a read burst and a following write
    /// burst (rank turnaround bubble).
    pub rtw_gap: Cycle,
    /// Average refresh interval: one REF per rank every `t_refi` cycles.
    pub t_refi: Cycle,
    /// Refresh cycle time: rank is unavailable for this long per REF.
    pub t_rfc: Cycle,
}

impl TimingParams {
    /// DDR4-2400 (CL17 speed grade), 1200 MHz command clock — the paper's
    /// configuration. `t_rfc` corresponds to an 8 Gb device (350 ns).
    pub fn ddr4_2400() -> Self {
        TimingParams {
            freq_mhz: 1200,
            cl: 17,
            cwl: 12,
            t_rcd: 17,
            t_rp: 17,
            t_ras: 39,
            t_rc: 56,
            burst_cycles: 4,
            t_ccd_s: 4,
            t_ccd_l: 6,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 26,
            t_rtp: 9,
            t_wr: 18,
            t_wtr_s: 3,
            t_wtr_l: 9,
            rtw_gap: 2,
            t_refi: 9360,
            t_rfc: 420,
        }
    }

    /// DDR4-2133 (CL15), 1066 MHz command clock.
    pub fn ddr4_2133() -> Self {
        TimingParams {
            freq_mhz: 1066,
            cl: 15,
            cwl: 11,
            t_rcd: 15,
            t_rp: 15,
            t_ras: 35,
            t_rc: 50,
            burst_cycles: 4,
            t_ccd_s: 4,
            t_ccd_l: 6,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 23,
            t_rtp: 8,
            t_wr: 16,
            t_wtr_s: 3,
            t_wtr_l: 8,
            rtw_gap: 2,
            t_refi: 8312,
            t_rfc: 374,
        }
    }

    /// DDR4-2666 (CL19), 1333 MHz command clock.
    pub fn ddr4_2666() -> Self {
        TimingParams {
            freq_mhz: 1333,
            cl: 19,
            cwl: 14,
            t_rcd: 19,
            t_rp: 19,
            t_ras: 43,
            t_rc: 62,
            burst_cycles: 4,
            t_ccd_s: 4,
            t_ccd_l: 7,
            t_rrd_s: 4,
            t_rrd_l: 7,
            t_faw: 28,
            t_rtp: 10,
            t_wr: 20,
            t_wtr_s: 4,
            t_wtr_l: 10,
            rtw_gap: 2,
            t_refi: 10400,
            t_rfc: 467,
        }
    }

    /// DDR4-2933 (CL21), 1466 MHz command clock.
    pub fn ddr4_2933() -> Self {
        TimingParams {
            freq_mhz: 1466,
            cl: 21,
            cwl: 16,
            t_rcd: 21,
            t_rp: 21,
            t_ras: 47,
            t_rc: 68,
            burst_cycles: 4,
            t_ccd_s: 4,
            t_ccd_l: 8,
            t_rrd_s: 4,
            t_rrd_l: 8,
            t_faw: 31,
            t_rtp: 11,
            t_wr: 22,
            t_wtr_s: 4,
            t_wtr_l: 11,
            rtw_gap: 2,
            t_refi: 11437,
            t_rfc: 513,
        }
    }

    /// DDR4-3200 (CL22), 1600 MHz command clock. Used by the
    /// `ablation_ddr4_3200` bench.
    pub fn ddr4_3200() -> Self {
        TimingParams {
            freq_mhz: 1600,
            cl: 22,
            cwl: 16,
            t_rcd: 22,
            t_rp: 22,
            t_ras: 52,
            t_rc: 74,
            burst_cycles: 4,
            t_ccd_s: 4,
            t_ccd_l: 8,
            t_rrd_s: 4,
            t_rrd_l: 8,
            t_faw: 34,
            t_rtp: 12,
            t_wr: 24,
            t_wtr_s: 4,
            t_wtr_l: 12,
            rtw_gap: 2,
            t_refi: 12480,
            t_rfc: 560,
        }
    }

    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidTiming`] describing the inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.freq_mhz == 0 {
            return Err(ConfigError::InvalidTiming("freq_mhz must be nonzero"));
        }
        if self.burst_cycles == 0 {
            return Err(ConfigError::InvalidTiming("burst_cycles must be nonzero"));
        }
        if self.t_ras + self.t_rp > self.t_rc {
            return Err(ConfigError::InvalidTiming("t_rc must cover t_ras + t_rp"));
        }
        if self.t_ccd_l < self.t_ccd_s {
            return Err(ConfigError::InvalidTiming("t_ccd_l must be >= t_ccd_s"));
        }
        if self.t_rrd_l < self.t_rrd_s {
            return Err(ConfigError::InvalidTiming("t_rrd_l must be >= t_rrd_s"));
        }
        if self.t_wtr_l < self.t_wtr_s {
            return Err(ConfigError::InvalidTiming("t_wtr_l must be >= t_wtr_s"));
        }
        if self.t_faw < self.t_rrd_s {
            return Err(ConfigError::InvalidTiming("t_faw must be >= t_rrd_s"));
        }
        if self.t_rfc >= self.t_refi {
            return Err(ConfigError::InvalidTiming("t_rfc must be < t_refi"));
        }
        if self.cl == 0 || self.cwl == 0 || self.t_rcd == 0 || self.t_rp == 0 {
            return Err(ConfigError::InvalidTiming("core latencies must be nonzero"));
        }
        Ok(())
    }

    /// Duration of one command-clock cycle in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1000.0 / f64::from(self.freq_mhz)
    }

    /// Converts a cycle count to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles as f64 * self.cycle_ns()
    }

    /// Peak channel bandwidth in GB/s for a bus of `bus_bytes` width:
    /// `bus_bytes × 2 transfers/cycle × freq`.
    pub fn peak_bandwidth_gbps(&self, bus_bytes: u32) -> f64 {
        f64::from(bus_bytes) * 2.0 * f64::from(self.freq_mhz) / 1000.0
    }

    /// Bytes moved across the bus per command-clock cycle at peak
    /// (double data rate: two transfers per cycle).
    pub fn bytes_per_cycle(&self, bus_bytes: u32) -> u32 {
        bus_bytes * 2
    }

    /// Fraction of all cycles consumed by refresh: `t_rfc / t_refi`.
    pub fn refresh_fraction(&self) -> f64 {
        self.t_rfc as f64 / self.t_refi as f64
    }

    /// Minimum read latency in cycles: CL plus the burst itself (the
    /// no-contention, open-page "base" of the latency stack, excluding
    /// controller overhead).
    pub fn base_read_cycles(&self) -> Cycle {
        self.cl + self.burst_cycles
    }

    /// Minimum write-to-read turnaround on the same bank group:
    /// `CWL + burst + tWTR_L`.
    pub fn write_to_read_same_bg(&self) -> Cycle {
        self.cwl + self.burst_cycles + self.t_wtr_l
    }

    /// Minimum write-to-read turnaround across bank groups:
    /// `CWL + burst + tWTR_S`.
    pub fn write_to_read_diff_bg(&self) -> Cycle {
        self.cwl + self.burst_cycles + self.t_wtr_s
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for t in [
            TimingParams::ddr4_2133(),
            TimingParams::ddr4_2400(),
            TimingParams::ddr4_2666(),
            TimingParams::ddr4_2933(),
            TimingParams::ddr4_3200(),
        ] {
            t.validate().unwrap();
        }
    }

    #[test]
    fn presets_scale_monotonically() {
        // Faster grades: more bandwidth, roughly constant latency in ns.
        let grades = [
            TimingParams::ddr4_2133(),
            TimingParams::ddr4_2400(),
            TimingParams::ddr4_2666(),
            TimingParams::ddr4_2933(),
            TimingParams::ddr4_3200(),
        ];
        for w in grades.windows(2) {
            assert!(w[1].peak_bandwidth_gbps(8) > w[0].peak_bandwidth_gbps(8));
            let ns0 = w[0].cycles_to_ns(w[0].cl);
            let ns1 = w[1].cycles_to_ns(w[1].cl);
            assert!(
                (ns0 - ns1).abs() < 2.0,
                "CAS latency stays ~14 ns: {ns0} vs {ns1}"
            );
        }
    }

    #[test]
    fn ddr4_2400_peak_bandwidth_matches_paper() {
        let t = TimingParams::ddr4_2400();
        // 2400 MT/s × 8 B = 19.2 GB/s, as in the paper's introduction.
        assert!((t.peak_bandwidth_gbps(8) - 19.2).abs() < 1e-9);
        assert_eq!(t.bytes_per_cycle(8), 16);
    }

    #[test]
    fn refresh_fraction_is_a_few_percent() {
        let f = TimingParams::ddr4_2400().refresh_fraction();
        assert!(f > 0.02 && f < 0.08, "refresh fraction {f}");
    }

    #[test]
    fn cycle_ns_ddr4_2400() {
        let t = TimingParams::ddr4_2400();
        assert!((t.cycle_ns() - 0.8333).abs() < 1e-3);
        assert!((t.cycles_to_ns(1200) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut t = TimingParams::ddr4_2400();
        t.t_rc = 10;
        assert!(t.validate().is_err());

        let mut t = TimingParams::ddr4_2400();
        t.t_ccd_l = 2;
        assert!(t.validate().is_err());

        let mut t = TimingParams::ddr4_2400();
        t.t_rfc = t.t_refi;
        assert!(t.validate().is_err());
    }

    #[test]
    fn bank_group_slower_than_channel() {
        // The paper: "a bank group can transfer one cache line in 6 memory
        // cycles, while the channel only needs 4".
        let t = TimingParams::ddr4_2400();
        assert_eq!(t.t_ccd_l, 6);
        assert_eq!(t.burst_cycles, 4);
    }
}
