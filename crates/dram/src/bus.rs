//! The channel data bus: a schedule of data bursts.
//!
//! CAS commands reserve a burst slot `CL`/`CWL` cycles after issue. Because
//! the device only admits a CAS when its burst does not collide with already
//! scheduled ones, the schedule is an ordered list of disjoint intervals.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::Cycle;

/// Direction of a data burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BurstKind {
    /// Data flowing from DRAM to the controller.
    Read,
    /// Data flowing from the controller to DRAM.
    Write,
}

/// One scheduled occupancy of the data bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Burst {
    /// First cycle of the burst.
    pub start: Cycle,
    /// One past the last cycle of the burst.
    pub end: Cycle,
    /// Read or write.
    pub kind: BurstKind,
}

/// The data-bus schedule of one channel.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataBus {
    bursts: VecDeque<Burst>,
    /// End of the most recent read burst (for read→write turnaround).
    last_read_end: Cycle,
    /// End of the most recent write burst.
    last_write_end: Cycle,
    /// Totals for bandwidth bookkeeping.
    read_bursts: u64,
    write_bursts: u64,
}

impl DataBus {
    /// An empty bus schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// First cycle at or after `earliest` at which a burst of `len` cycles
    /// fits. Bursts are appended in issue order, so this is simply the end
    /// of the last scheduled burst.
    pub fn earliest_slot(&self, earliest: Cycle, _len: Cycle) -> Cycle {
        match self.bursts.back() {
            Some(b) => b.end.max(earliest),
            None => earliest.max(self.last_read_end).max(self.last_write_end),
        }
    }

    /// End of the last scheduled burst, or the later of the remembered
    /// read/write ends when the schedule is empty. This is the constant the
    /// earliest-slot query reduces to for a fixed schedule:
    /// `earliest_slot(e, _) == backlog_end().max(e)`, and the value is
    /// stable across [`retire_before`](Self::retire_before) — which lets the
    /// device fold the bus constraint into its memoized next-legal-cycle
    /// tables keyed only on reservations.
    pub fn backlog_end(&self) -> Cycle {
        match self.bursts.back() {
            Some(b) => b.end,
            None => self.last_read_end.max(self.last_write_end),
        }
    }

    /// Earliest burst edge (start or end) strictly after `now` — the next
    /// cycle at which [`activity_at`](Self::activity_at) can change, absent
    /// new reservations. `Cycle::MAX` when no scheduled burst has an edge
    /// past `now`.
    pub fn next_boundary_after(&self, now: Cycle) -> Cycle {
        // Bursts are ordered and disjoint, so the first edge found is the
        // minimum.
        for b in &self.bursts {
            if b.start > now {
                return b.start;
            }
            if b.end > now {
                return b.end;
            }
        }
        Cycle::MAX
    }

    /// End cycle of the most recent read burst scheduled so far.
    pub fn last_read_end(&self) -> Cycle {
        self.bursts
            .iter()
            .rev()
            .find(|b| b.kind == BurstKind::Read)
            .map(|b| b.end)
            .unwrap_or(self.last_read_end)
    }

    /// End cycle of the most recent write burst scheduled so far.
    pub fn last_write_end(&self) -> Cycle {
        self.bursts
            .iter()
            .rev()
            .find(|b| b.kind == BurstKind::Write)
            .map(|b| b.end)
            .unwrap_or(self.last_write_end)
    }

    /// Reserves `[start, start + len)` for a burst.
    ///
    /// # Panics
    ///
    /// Debug-asserts the slot does not overlap an existing reservation and
    /// is not in the past relative to the last reservation. In release
    /// builds this invariant is instead enforced without panicking by the
    /// shadow auditor (`dramstack-audit`, `AuditRule::BusOverlap`), which
    /// re-derives burst occupancy from the observed command stream and
    /// reports any collision as a typed violation.
    pub fn reserve(&mut self, start: Cycle, len: Cycle, kind: BurstKind) {
        if let Some(last) = self.bursts.back() {
            debug_assert!(start >= last.end, "burst overlap: {start} < {}", last.end);
        }
        self.bursts.push_back(Burst {
            start,
            end: start + len,
            kind,
        });
        match kind {
            BurstKind::Read => self.read_bursts += 1,
            BurstKind::Write => self.write_bursts += 1,
        }
    }

    /// The burst occupying cycle `t`, if any.
    pub fn activity_at(&self, t: Cycle) -> Option<BurstKind> {
        self.bursts
            .iter()
            .take_while(|b| b.start <= t)
            .find(|b| t >= b.start && t < b.end)
            .map(|b| b.kind)
    }

    /// Drops bursts that ended at or before `t`, remembering the most recent
    /// read/write ends for turnaround queries.
    pub fn retire_before(&mut self, t: Cycle) {
        while let Some(front) = self.bursts.front() {
            if front.end <= t {
                match front.kind {
                    BurstKind::Read => self.last_read_end = self.last_read_end.max(front.end),
                    BurstKind::Write => self.last_write_end = self.last_write_end.max(front.end),
                }
                self.bursts.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of bursts still scheduled (in flight or future).
    pub fn pending(&self) -> usize {
        self.bursts.len()
    }

    /// `(read_bursts, write_bursts)` reserved so far, cumulative.
    pub fn totals(&self) -> (u64, u64) {
        (self.read_bursts, self.write_bursts)
    }

    /// Whether any scheduled burst is still pending at or after `t`
    /// (in-flight data the rank must finish before refreshing).
    pub fn busy_at_or_after(&self, t: Cycle) -> bool {
        self.bursts.back().is_some_and(|b| b.end > t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_are_ordered_and_queryable() {
        let mut bus = DataBus::new();
        bus.reserve(10, 4, BurstKind::Read);
        bus.reserve(14, 4, BurstKind::Write);
        assert_eq!(bus.activity_at(9), None);
        assert_eq!(bus.activity_at(10), Some(BurstKind::Read));
        assert_eq!(bus.activity_at(13), Some(BurstKind::Read));
        assert_eq!(bus.activity_at(14), Some(BurstKind::Write));
        assert_eq!(bus.activity_at(18), None);
        assert_eq!(bus.pending(), 2);
        assert_eq!(bus.totals(), (1, 1));
    }

    #[test]
    fn earliest_slot_follows_last_burst() {
        let mut bus = DataBus::new();
        assert_eq!(bus.earliest_slot(5, 4), 5);
        bus.reserve(5, 4, BurstKind::Read);
        assert_eq!(bus.earliest_slot(0, 4), 9);
        assert_eq!(bus.earliest_slot(20, 4), 20);
    }

    #[test]
    fn retire_keeps_turnaround_state() {
        let mut bus = DataBus::new();
        bus.reserve(0, 4, BurstKind::Read);
        bus.reserve(8, 4, BurstKind::Write);
        bus.retire_before(20);
        assert_eq!(bus.pending(), 0);
        assert_eq!(bus.last_read_end(), 4);
        assert_eq!(bus.last_write_end(), 12);
        assert!(!bus.busy_at_or_after(20));
    }

    #[test]
    fn busy_at_or_after_sees_future_bursts() {
        let mut bus = DataBus::new();
        bus.reserve(100, 4, BurstKind::Read);
        assert!(bus.busy_at_or_after(50));
        assert!(bus.busy_at_or_after(103));
        assert!(!bus.busy_at_or_after(104));
    }
}
