//! Timed DRAM command traces.
//!
//! The paper notes that bandwidth stacks need not be built inside the
//! simulator: "a command trace (including timings) can be collected from
//! the hardware or a DRAM simulator, and the bandwidth stack can be
//! constructed offline from this trace". This module defines that trace
//! format — one `(cycle, command)` record per issued command — with a
//! simple line-based text encoding.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::command::{Command, CommandKind};
use crate::geometry::BankAddr;
use crate::Cycle;

/// One issued command with its issue cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedCommand {
    /// Issue cycle.
    pub at: Cycle,
    /// The command.
    pub cmd: Command,
}

impl TimedCommand {
    /// Creates a record.
    pub fn new(at: Cycle, cmd: Command) -> Self {
        TimedCommand { at, cmd }
    }
}

impl fmt::Display for TimedCommand {
    /// One-line text form: `cycle KIND rank bg bank row col`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.cmd.kind {
            CommandKind::Activate => "ACT",
            CommandKind::Precharge => "PRE",
            CommandKind::Read => "RD",
            CommandKind::ReadAp => "RDA",
            CommandKind::Write => "WR",
            CommandKind::WriteAp => "WRA",
            CommandKind::Refresh => "REF",
        };
        write!(
            f,
            "{} {} {} {} {} {} {}",
            self.at,
            k,
            self.cmd.bank.rank,
            self.cmd.bank.bank_group,
            self.cmd.bank.bank,
            self.cmd.row,
            self.cmd.column
        )
    }
}

/// Error parsing a [`TimedCommand`] line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// Description of what went wrong.
    pub what: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace line: {}", self.what)
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for TimedCommand {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split_whitespace();
        let mut next = |what: &str| {
            it.next().ok_or_else(|| ParseTraceError {
                what: format!("missing field {what}"),
            })
        };
        let at: Cycle = next("cycle")?.parse().map_err(|e| ParseTraceError {
            what: format!("cycle: {e}"),
        })?;
        let kind = match next("kind")? {
            "ACT" => CommandKind::Activate,
            "PRE" => CommandKind::Precharge,
            "RD" => CommandKind::Read,
            "RDA" => CommandKind::ReadAp,
            "WR" => CommandKind::Write,
            "WRA" => CommandKind::WriteAp,
            "REF" => CommandKind::Refresh,
            other => {
                return Err(ParseTraceError {
                    what: format!("unknown kind {other}"),
                })
            }
        };
        let mut num = |what: &str| -> Result<u32, ParseTraceError> {
            next(what)?.parse().map_err(|e| ParseTraceError {
                what: format!("{what}: {e}"),
            })
        };
        let bank = BankAddr::new(num("rank")?, num("bank_group")?, num("bank")?);
        let row = num("row")?;
        let column = num("column")?;
        Ok(TimedCommand {
            at,
            cmd: Command {
                kind,
                bank,
                row,
                column,
            },
        })
    }
}

/// Serializes a trace to the line-based text format.
pub fn write_trace(trace: &[TimedCommand]) -> String {
    let mut out = String::with_capacity(trace.len() * 24);
    for t in trace {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

/// Parses a text trace (one command per line; blank lines and `#` comments
/// allowed).
///
/// # Errors
///
/// Returns the first [`ParseTraceError`] with its line number attached.
pub fn parse_trace(text: &str) -> Result<Vec<TimedCommand>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let t: TimedCommand = line.parse().map_err(|e: ParseTraceError| ParseTraceError {
            what: format!("line {}: {}", i + 1, e.what),
        })?;
        out.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_kind() {
        let b = BankAddr::new(0, 2, 3);
        let cmds = vec![
            TimedCommand::new(5, Command::activate(b, 101)),
            TimedCommand::new(22, Command::read(b, 7)),
            TimedCommand::new(30, Command::read_ap(b, 8)),
            TimedCommand::new(44, Command::write(b, 9)),
            TimedCommand::new(50, Command::write_ap(b, 10)),
            TimedCommand::new(90, Command::precharge(b)),
            TimedCommand::new(9360, Command::refresh(0)),
        ];
        let text = write_trace(&cmds);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed, cmds);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\n10 ACT 0 0 0 5 0\n";
        let parsed = parse_trace(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].at, 10);
    }

    #[test]
    fn bad_lines_are_reported_with_line_numbers() {
        let err = parse_trace("10 ACT 0 0 0 5 0\nnonsense\n").unwrap_err();
        assert!(err.what.contains("line 2"), "{err}");
        let err = parse_trace("10 FOO 0 0 0 0 0").unwrap_err();
        assert!(err.what.contains("unknown kind"), "{err}");
        let err = parse_trace("x ACT 0 0 0 0 0").unwrap_err();
        assert!(err.what.contains("cycle"), "{err}");
    }
}
