//! `dramstack serve`: a resilient, std-only simulation service.
//!
//! A long-running daemon that accepts simulation jobs over HTTP/1.1
//! (hand-rolled on [`std::net`] — no registry dependencies), runs them
//! on a supervised worker pool, and degrades gracefully under every
//! kind of abuse this repo knows how to inject:
//!
//! * **Admission control** — a bounded queue; overload answers 429 with
//!   `Retry-After` instead of queueing unboundedly.
//! * **Fault isolation** — each job runs under
//!   [`parallel::supervise`](dramstack_sim::parallel): a panicking or
//!   hung job is caught/abandoned by the watchdog and reported as a
//!   typed failure while sibling jobs keep running.
//! * **Slow-loris defense** — per-connection read/write deadlines and a
//!   hard request-body cap, each mapping to a typed 4xx.
//! * **Graceful drain** — on SIGTERM/SIGINT (or
//!   [`ServerHandle::drain`]), stop accepting, shed the queue, let
//!   running jobs finish within a grace period, then cancel them
//!   cooperatively — cancelled jobs checkpoint for resume when a
//!   checkpoint directory is configured.
//!
//! # API
//!
//! | Endpoint | Behavior |
//! |---|---|
//! | `POST /jobs` | Submit a [`JobSpec`](dramstack_sim::JobSpec) JSON body → 202 `{id}`, 400 typed, 429 shed, 503 draining |
//! | `GET /jobs/<id>` | Status JSON (report inline once done) |
//! | `GET /jobs/<id>/stream` | Chunked JSONL: one telemetry record per sample window |
//! | `GET /healthz` | Liveness (always 200 while the loop runs) |
//! | `GET /readyz` | Readiness (503 once draining) |
//! | `GET /metrics` | Prometheus text: fleet-aggregated stacks + serve counters |
//!
//! ```no_run
//! use dramstack_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServeConfig::default()
//! })?;
//! let addr = server.local_addr();
//! let handle = server.handle();
//! std::thread::spawn(move || server.serve());
//!
//! let client = Client::new(addr.to_string());
//! let id = client.submit_job(r#"{"pattern":"seq","cores":2,"us":5}"#)?;
//! let final_status = client.wait_job(id, std::time::Duration::from_secs(60))?;
//! handle.drain();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::path::PathBuf;
use std::time::Duration;

pub mod client;
pub mod http;
pub mod hub;
mod server;

pub use client::{Client, ClientError};
pub use hub::{HubSink, StreamHub, STREAM_CAP_LINES};
pub use server::{ServeStats, Server, ServerHandle};

/// Everything tunable about the daemon. The defaults are production-ish;
/// tests shrink the timeouts and caps to provoke every failure path
/// quickly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` for an OS-assigned port).
    pub addr: String,
    /// Worker threads executing jobs (≥ 1 enforced).
    pub workers: usize,
    /// Bounded admission queue; submissions past this shed with 429.
    pub queue_cap: usize,
    /// Hard request-body cap → 413.
    pub max_body_bytes: usize,
    /// Per-connection read deadline (slow-loris defense) → 408.
    pub read_timeout: Duration,
    /// Per-connection write deadline (slow readers get dropped).
    pub write_timeout: Duration,
    /// Per-job wall-clock budget; `None` disables it. The supervisor's
    /// watchdog backstops it with a 2 s margin.
    pub job_deadline: Option<Duration>,
    /// No-progress watchdog for jobs (catches hangs that never pulse).
    pub job_stall_timeout: Duration,
    /// How long drain waits for running jobs before cancelling them.
    pub drain_grace: Duration,
    /// Where cancelled jobs checkpoint (`ckpt-job-<id>.*`); `None`
    /// disables checkpoint-on-cancel.
    pub checkpoint_dir: Option<PathBuf>,
    /// Concurrent-connection cap; excess connections get a fast 503.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: 2,
            queue_cap: 16,
            max_body_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            job_deadline: Some(Duration::from_secs(300)),
            job_stall_timeout: Duration::from_secs(10),
            drain_grace: Duration::from_secs(10),
            checkpoint_dir: None,
            max_connections: 64,
        }
    }
}
