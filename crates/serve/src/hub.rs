//! The telemetry bridge between a running job and its stream readers.
//!
//! A [`StreamHub`] is a bounded, append-only line buffer with a condvar:
//! the worker's [`TelemetrySink`] pushes one JSONL record per sample
//! window, any number of `/jobs/<id>/stream` connections block on
//! [`StreamHub::wait_from`] and replay from whatever index they have
//! reached. Closing the hub (job reached a terminal state) wakes every
//! reader for the final drain. The bound turns a runaway job into a
//! truncated stream instead of unbounded server memory.

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use dramstack_core::TimeSample;
use dramstack_obs::{BottleneckClass, WindowObservation};
use dramstack_sim::telemetry::{jsonl_record, Telemetry};
use dramstack_sim::TelemetrySink;

/// Retained lines per job stream; pushes beyond this are counted, not
/// stored.
pub const STREAM_CAP_LINES: usize = 10_000;

#[derive(Debug, Default)]
struct HubInner {
    lines: Vec<String>,
    closed: bool,
    dropped: u64,
}

/// Bounded broadcast buffer for one job's JSONL telemetry stream.
#[derive(Debug, Default)]
pub struct StreamHub {
    inner: Mutex<HubInner>,
    cond: Condvar,
}

impl StreamHub {
    /// An open, empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one line (dropped and counted past [`STREAM_CAP_LINES`])
    /// and wakes readers.
    pub fn push(&self, line: String) {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if g.lines.len() < STREAM_CAP_LINES {
            g.lines.push(line);
        } else {
            g.dropped += 1;
        }
        drop(g);
        self.cond.notify_all();
    }

    /// Marks the stream finished and wakes readers. Idempotent.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        g.closed = true;
        drop(g);
        self.cond.notify_all();
    }

    /// Lines dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dropped
    }

    /// Blocks until there are lines past `from` or the hub closes (or
    /// `timeout` elapses), then returns everything new plus the closed
    /// flag. A `(empty, true)` return means the reader has seen it all.
    pub fn wait_from(&self, from: usize, timeout: Duration) -> (Vec<String>, bool) {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        while g.lines.len() <= from && !g.closed {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, res) = self
                .cond
                .wait_timeout(g, left)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
            if res.timed_out() {
                break;
            }
        }
        let start = from.min(g.lines.len());
        (g.lines[start..].to_vec(), g.closed)
    }
}

/// The [`TelemetrySink`] installed on every job's telemetry: forwards
/// each window to the job's [`StreamHub`] as a JSONL line and folds it
/// into the fleet-wide [`Telemetry`] behind `/metrics`.
pub struct HubSink {
    hub: Arc<StreamHub>,
    fleet: Arc<Mutex<Telemetry>>,
}

impl std::fmt::Debug for HubSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HubSink").finish_non_exhaustive()
    }
}

impl HubSink {
    /// A sink feeding `hub` and the shared `fleet` aggregate.
    pub fn new(hub: Arc<StreamHub>, fleet: Arc<Mutex<Telemetry>>) -> Self {
        HubSink { hub, fleet }
    }
}

impl TelemetrySink for HubSink {
    fn window(
        &mut self,
        index: u64,
        sample: &TimeSample,
        obs: &WindowObservation,
        current: Option<BottleneckClass>,
    ) {
        self.hub.push(jsonl_record(index, sample, obs, current));
        self.fleet
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .ingest_window(sample);
    }

    fn finish(&mut self) {
        self.hub.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn wait_from_sees_pushes_and_close() {
        let hub = Arc::new(StreamHub::new());
        let h = hub.clone();
        let t = thread::spawn(move || {
            h.push("a".to_string());
            h.push("b".to_string());
            h.close();
        });
        let mut from = 0;
        let mut all = Vec::new();
        loop {
            let (lines, closed) = hub.wait_from(from, Duration::from_secs(5));
            from += lines.len();
            all.extend(lines);
            if closed && from == 2 {
                break;
            }
        }
        t.join().unwrap();
        assert_eq!(all, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn cap_drops_and_counts() {
        let hub = StreamHub::new();
        for i in 0..(STREAM_CAP_LINES + 3) {
            hub.push(format!("{i}"));
        }
        assert_eq!(hub.dropped(), 3);
        let (lines, _) = hub.wait_from(0, Duration::from_millis(1));
        assert_eq!(lines.len(), STREAM_CAP_LINES);
    }

    #[test]
    fn wait_times_out_without_traffic() {
        let hub = StreamHub::new();
        let (lines, closed) = hub.wait_from(0, Duration::from_millis(10));
        assert!(lines.is_empty());
        assert!(!closed);
    }
}
