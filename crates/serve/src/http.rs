//! A deliberately small HTTP/1.1 implementation over [`std::net`].
//!
//! Exactly what the serve API needs and nothing more: one request per
//! connection (`Connection: close`), `Content-Length` bodies with a hard
//! size cap, chunked transfer encoding for streamed responses, and typed
//! errors so the server can answer 400 / 408 / 413 / 431 instead of
//! dropping the socket. All reads honor the socket's OS-level read
//! timeout, which is the slow-loris defense: a client that trickles
//! bytes is cut off at the deadline without tying up anything but its
//! own connection thread.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Cap on the request/status line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on a response body the client is willing to buffer.
pub const MAX_RESPONSE_BYTES: usize = 64 * 1024 * 1024;

/// A parsed request. Header names are lowercased at parse time.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path + optional query).
    pub path: String,
    /// Lowercased name → trimmed value, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed response (client side).
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Lowercased name → trimmed value, in arrival order.
    pub headers: Vec<(String, String)>,
    /// De-chunked body.
    pub body: Vec<u8>,
}

impl Response {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Why a request could not be read. Each variant maps to one status
/// code, so handlers never have to guess.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or truncated body → 400.
    BadRequest(String),
    /// Head grew past [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// Declared `Content-Length` exceeds the configured cap → 413.
    PayloadTooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The socket's read deadline expired mid-request → 408.
    Timeout,
    /// The peer closed before sending anything (not an error worth
    /// answering).
    Closed,
    /// Any other transport failure.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::PayloadTooLarge { limit } => {
                write!(f, "request body exceeds {limit} bytes")
            }
            HttpError::Timeout => write!(f, "read deadline expired"),
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn map_read_err(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one request off `stream`, honoring the socket's read timeout
/// and enforcing [`MAX_HEAD_BYTES`] and `max_body`.
///
/// # Errors
///
/// A typed [`HttpError`]; see the variant docs for the status each maps
/// to.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) if buf.is_empty() => return Err(HttpError::Closed),
            Ok(0) => return Err(HttpError::BadRequest("truncated request head".to_string())),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(map_read_err(e)),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::BadRequest("empty request line".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version `{version}`"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge { limit: max_body });
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::BadRequest("truncated request body".to_string())),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(map_read_err(e)),
        }
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Canonical reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one complete response and flushes. Always `Connection: close` —
/// one request per connection keeps every code path bounded.
///
/// # Errors
///
/// The underlying write error (the caller just drops the connection).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nConnection: close\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Shorthand for a JSON response.
///
/// # Errors
///
/// The underlying write error.
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    write_response(
        stream,
        status,
        "application/json",
        body.as_bytes(),
        extra_headers,
    )
}

/// An in-progress chunked response (the `/jobs/<id>/stream` endpoint).
#[derive(Debug)]
pub struct ChunkedBody<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedBody<'a> {
    /// Writes the response head with `Transfer-Encoding: chunked`.
    ///
    /// # Errors
    ///
    /// The underlying write error.
    pub fn start(stream: &'a mut TcpStream, content_type: &str) -> io::Result<Self> {
        let head = format!(
            "HTTP/1.1 200 OK\r\nConnection: close\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedBody { stream })
    }

    /// Writes one chunk (empty input is skipped — a zero-length chunk
    /// would terminate the stream).
    ///
    /// # Errors
    ///
    /// The underlying write error (slow clients hit the socket's write
    /// timeout here and are dropped).
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the stream with the final zero-length chunk.
    ///
    /// # Errors
    ///
    /// The underlying write error.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Reads a full response (client side). Because the server always
/// closes after one response, this simply reads to EOF, then splits and
/// de-chunks. Bounded by [`MAX_RESPONSE_BYTES`].
///
/// # Errors
///
/// [`HttpError`] on malformed or oversized responses and transport
/// failures.
pub fn read_response(stream: &mut TcpStream) -> Result<Response, HttpError> {
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_RESPONSE_BYTES {
                    return Err(HttpError::PayloadTooLarge {
                        limit: MAX_RESPONSE_BYTES,
                    });
                }
            }
            Err(e) => return Err(map_read_err(e)),
        }
    }
    let head_end =
        find_head_end(&buf).ok_or_else(|| HttpError::BadRequest("no response head".to_string()))?;
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("response head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| HttpError::BadRequest(format!("bad status line `{status_line}`")))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let raw = &buf[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked { dechunk(raw)? } else { raw.to_vec() };
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn dechunk(mut raw: &[u8]) -> Result<Vec<u8>, HttpError> {
    let mut out = Vec::with_capacity(raw.len());
    loop {
        let line_end = raw
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| HttpError::BadRequest("truncated chunk size".to_string()))?;
        let size_str = std::str::from_utf8(&raw[..line_end])
            .map_err(|_| HttpError::BadRequest("chunk size is not UTF-8".to_string()))?;
        let size = usize::from_str_radix(size_str.trim(), 16)
            .map_err(|_| HttpError::BadRequest(format!("bad chunk size `{size_str}`")))?;
        raw = &raw[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if raw.len() < size + 2 {
            return Err(HttpError::BadRequest("truncated chunk".to_string()));
        }
        out.extend_from_slice(&raw[..size]);
        raw = &raw[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dechunk_roundtrip() {
        let raw = b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        assert_eq!(dechunk(raw).unwrap(), b"hello world");
    }

    #[test]
    fn dechunk_rejects_truncation() {
        assert!(dechunk(b"5\r\nhel").is_err());
        assert!(dechunk(b"zz\r\n").is_err());
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
