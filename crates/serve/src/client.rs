//! A small resilient client for the serve API.
//!
//! Transport failures on idempotent requests (all the GETs) retry with
//! jittered exponential backoff; submissions retry only on 429 (the
//! server definitively did not accept the job, so resubmitting cannot
//! duplicate work) and on connection refusal (nothing was sent). A POST
//! that dies mid-flight is *not* retried — the job may have been
//! admitted.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::Value;

use crate::http::{self, Response};

/// Why a client call failed for good.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure that survived every retry.
    Io(String),
    /// The server answered with a non-success status.
    Status {
        /// HTTP status code.
        code: u16,
        /// Response body (usually `{"error": …}`).
        body: String,
    },
    /// A response arrived but was not the JSON shape expected.
    Protocol(String),
    /// [`Client::wait_job`] ran out of time.
    WaitTimeout {
        /// The job's last observed status.
        last_status: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(msg) => write!(f, "transport failure: {msg}"),
            ClientError::Status { code, body } => write!(f, "server answered {code}: {body}"),
            ClientError::Protocol(msg) => write!(f, "unexpected response: {msg}"),
            ClientError::WaitTimeout { last_status } => {
                write!(f, "job did not finish in time (last status: {last_status})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Seed for the backoff jitter — process-global so concurrent clients
/// decorrelate, stepped as a splitmix-style LCG.
static JITTER_STATE: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);

fn jitter_frac() -> f64 {
    let mut x = JITTER_STATE.fetch_add(0xA076_1D64_78BD_642F, Ordering::Relaxed);
    x ^= x >> 33;
    x = x.wrapping_mul(0xE993_7D4D_962F_6C2D);
    x ^= x >> 29;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Sleep before retry `attempt` (0-based): `base * 2^attempt`, scaled by
/// a uniform factor in `[0.5, 1.5)` so synchronized clients desynchronize.
fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(10));
    exp.mul_f64(0.5 + jitter_frac())
}

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    /// Per-attempt connect budget.
    pub connect_timeout: Duration,
    /// Per-attempt socket read/write deadline.
    pub io_timeout: Duration,
    /// Extra attempts after the first (idempotent requests only).
    pub retries: u32,
    /// Base backoff, doubled per attempt and jittered.
    pub backoff: Duration,
}

impl Client {
    /// A client for `addr` (e.g. `"127.0.0.1:7077"`) with defaults
    /// suitable for tests and CI: 2 s connect, 30 s I/O, 3 retries.
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(30),
            retries: 3,
            backoff: Duration::from_millis(100),
        }
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let addrs: Vec<SocketAddr> = self.addr.to_socket_addrs()?.collect();
        let mut last = io::Error::new(io::ErrorKind::NotFound, "no address resolved");
        for a in addrs {
            match TcpStream::connect_timeout(&a, self.connect_timeout) {
                Ok(s) => {
                    s.set_read_timeout(Some(self.io_timeout))?;
                    s.set_write_timeout(Some(self.io_timeout))?;
                    return Ok(s);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One request/response round trip, no retry.
    fn roundtrip(&self, method: &str, path: &str, body: Option<&str>) -> Result<Response, String> {
        let mut stream = self.connect().map_err(|e| format!("connect: {e}"))?;
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\nContent-Length: {}\r\n{}\r\n",
            self.addr,
            payload.len(),
            if body.is_some() {
                "Content-Type: application/json\r\n"
            } else {
                ""
            }
        );
        use std::io::Write;
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(payload.as_bytes()))
            .map_err(|e| format!("send: {e}"))?;
        http::read_response(&mut stream).map_err(|e| format!("receive: {e}"))
    }

    /// GET with transport-level retry (idempotent by definition here).
    fn get(&self, path: &str) -> Result<Response, ClientError> {
        let mut last = String::new();
        for attempt in 0..=self.retries {
            match self.roundtrip("GET", path, None) {
                Ok(resp) => return Ok(resp),
                Err(e) => last = e,
            }
            if attempt < self.retries {
                std::thread::sleep(backoff_delay(self.backoff, attempt));
            }
        }
        Err(ClientError::Io(last))
    }

    fn expect_2xx(resp: Response) -> Result<Response, ClientError> {
        if (200..300).contains(&resp.status) {
            Ok(resp)
        } else {
            Err(ClientError::Status {
                code: resp.status,
                body: resp.text(),
            })
        }
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or non-2xx.
    pub fn healthz(&self) -> Result<String, ClientError> {
        Self::expect_2xx(self.get("/healthz")?).map(|r| r.text())
    }

    /// `GET /readyz` — `Ok(true)` when ready, `Ok(false)` while draining.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or unexpected status.
    pub fn readyz(&self) -> Result<bool, ClientError> {
        let resp = self.get("/readyz")?;
        match resp.status {
            200 => Ok(true),
            503 => Ok(false),
            code => Err(ClientError::Status {
                code,
                body: resp.text(),
            }),
        }
    }

    /// `GET /metrics` — the Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or non-2xx.
    pub fn metrics(&self) -> Result<String, ClientError> {
        Self::expect_2xx(self.get("/metrics")?).map(|r| r.text())
    }

    /// Submits a job once. 429 comes back as
    /// [`ClientError::Status`] with `code == 429` so callers can decide
    /// their own shedding policy.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure, rejection, or a malformed
    /// accept body.
    pub fn submit_job(&self, spec_json: &str) -> Result<u64, ClientError> {
        let resp = self
            .roundtrip("POST", "/jobs", Some(spec_json))
            .map_err(ClientError::Io)?;
        let resp = Self::expect_2xx(resp)?;
        let v: Value = serde_json::from_str(&resp.text())
            .map_err(|e| ClientError::Protocol(format!("accept body: {e}")))?;
        json_u64(&v, "id").ok_or_else(|| ClientError::Protocol("accept body has no id".into()))
    }

    /// Submits with retry on 429 and connection refusal (both provably
    /// non-duplicating), backing off with jitter between attempts.
    ///
    /// # Errors
    ///
    /// The last [`ClientError`] once retries are exhausted.
    pub fn submit_job_with_retry(&self, spec_json: &str) -> Result<u64, ClientError> {
        let mut last = ClientError::Io("no attempt made".to_string());
        for attempt in 0..=self.retries {
            match self.submit_job(spec_json) {
                Ok(id) => return Ok(id),
                Err(ClientError::Status { code: 429, body }) => {
                    last = ClientError::Status { code: 429, body };
                }
                Err(ClientError::Io(msg)) if msg.starts_with("connect:") => {
                    last = ClientError::Io(msg);
                }
                Err(other) => return Err(other),
            }
            if attempt < self.retries {
                std::thread::sleep(backoff_delay(self.backoff, attempt));
            }
        }
        Err(last)
    }

    /// `GET /jobs/<id>` — the raw status JSON.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or non-2xx (404 included).
    pub fn job_status(&self, id: u64) -> Result<String, ClientError> {
        Self::expect_2xx(self.get(&format!("/jobs/{id}"))?).map(|r| r.text())
    }

    /// Polls `GET /jobs/<id>` until the status leaves
    /// `queued`/`running`, returning the final status JSON.
    ///
    /// # Errors
    ///
    /// [`ClientError::WaitTimeout`] if the job is still live at the
    /// deadline, or any transport/status error from polling.
    pub fn wait_job(&self, id: u64, timeout: Duration) -> Result<String, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut last_status = "unknown".to_string();
        loop {
            let body = self.job_status(id)?;
            let v: Value = serde_json::from_str(&body)
                .map_err(|e| ClientError::Protocol(format!("status body: {e}")))?;
            if let Some(status) = json_str(&v, "status") {
                last_status = status.to_string();
                if status != "queued" && status != "running" {
                    return Ok(body);
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::WaitTimeout { last_status });
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// `GET /jobs/<id>/stream` — blocks until the stream closes, then
    /// returns the JSONL lines.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or non-2xx.
    pub fn stream_lines(&self, id: u64) -> Result<Vec<String>, ClientError> {
        let resp = Self::expect_2xx(self.get(&format!("/jobs/{id}/stream"))?)?;
        Ok(resp
            .text()
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect())
    }
}

/// Pulls a `u64` field out of a JSON object value.
pub fn json_u64(v: &Value, key: &str) -> Option<u64> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
            if let Value::Int(i) = v {
                u64::try_from(*i).ok()
            } else {
                None
            }
        }),
        _ => None,
    }
}

/// Pulls a string field out of a JSON object value.
pub fn json_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
            if let Value::Str(s) = v {
                Some(s.as_str())
            } else {
                None
            }
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_jitters_within_bounds() {
        for attempt in 0..4 {
            let base = Duration::from_millis(100);
            let d = backoff_delay(base, attempt);
            let nominal = base * (1 << attempt);
            assert!(d >= nominal.mul_f64(0.5), "attempt {attempt}: {d:?}");
            assert!(d <= nominal.mul_f64(1.5), "attempt {attempt}: {d:?}");
        }
    }

    #[test]
    fn json_helpers_read_map_fields() {
        let v: Value = serde_json::from_str(r#"{"id": 7, "status": "done"}"#).unwrap();
        assert_eq!(json_u64(&v, "id"), Some(7));
        assert_eq!(json_str(&v, "status"), Some("done"));
        assert_eq!(json_u64(&v, "missing"), None);
    }
}
