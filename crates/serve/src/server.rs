//! The daemon: accept loop, admission control, worker pool, drain.
//!
//! Robustness invariants, in order of importance:
//!
//! 1. **A bad job never takes down the server.** Jobs run under
//!    [`parallel::supervise`]: panics are caught, hangs are abandoned by
//!    the stall watchdog, and either way the worker thread survives to
//!    take the next job.
//! 2. **Overload sheds, it does not queue unboundedly.** Admission is a
//!    bounded queue; past the cap, `POST /jobs` answers 429 with
//!    `Retry-After` and the server keeps serving reads.
//! 3. **Slow clients only hurt themselves.** Every connection carries
//!    OS-level read/write deadlines and a hard body cap; each
//!    connection gets its own thread, bounded by `max_connections`.
//! 4. **Drain is graceful.** On request (or SIGTERM via the interrupt
//!    flag), stop accepting, shed the queue, give running jobs a grace
//!    period, then cancel them cooperatively — cancelled jobs
//!    checkpoint for resume when a checkpoint dir is configured.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use serde::Value;

use dramstack_sim::jobs::{run_job, JobCancel, JobCheckpoint, JobError, JobOptions, JobSpec};
use dramstack_sim::parallel::{self, JobOutcome, SupervisorConfig};
use dramstack_sim::telemetry::{Telemetry, TelemetryConfig};
use dramstack_sim::SimReport;

use crate::http::{self, ChunkedBody, HttpError, Request};
use crate::hub::{HubSink, StreamHub};
use crate::ServeConfig;

/// End-of-run tallies, also exported live on `/metrics`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Jobs that produced a report.
    pub completed: u64,
    /// Jobs that panicked (or failed late validation).
    pub failed: u64,
    /// Jobs killed by deadline or stall watchdog.
    pub timed_out: u64,
    /// Jobs cancelled cooperatively (drain).
    pub cancelled: u64,
    /// Submissions shed with 429 (queue full).
    pub shed_429: u64,
    /// Queued jobs shed because drain started before a worker got them.
    pub shed_drain: u64,
    /// Requests answered 4xx for protocol reasons.
    pub bad_requests: u64,
}

#[derive(Debug)]
enum JobState {
    Queued,
    Running,
    Done(Box<SimReport>),
    Failed(String),
    TimedOut,
    Cancelled { checkpointed: bool },
    Shed,
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::TimedOut => "timed_out",
            JobState::Cancelled { .. } => "cancelled",
            JobState::Shed => "shed",
        }
    }
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    cancel: JobCancel,
    hub: Arc<StreamHub>,
    submitted: Instant,
    finished: Option<Instant>,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
    shed_429: AtomicU64,
    shed_drain: AtomicU64,
    bad_requests: AtomicU64,
}

struct State {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    jobs_cv: Condvar,
    next_id: AtomicU64,
    draining: AtomicBool,
    stop: AtomicBool,
    active_conns: AtomicUsize,
    running: AtomicUsize,
    ctr: Counters,
    fleet: Arc<Mutex<Telemetry>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl State {
    fn new(cfg: ServeConfig) -> Self {
        State {
            fleet: Arc::new(Mutex::new(Telemetry::new(TelemetryConfig::default()))),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            jobs_cv: Condvar::new(),
            next_id: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            ctr: Counters::default(),
        }
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            accepted: self.ctr.accepted.load(Ordering::Relaxed),
            completed: self.ctr.completed.load(Ordering::Relaxed),
            failed: self.ctr.failed.load(Ordering::Relaxed),
            timed_out: self.ctr.timed_out.load(Ordering::Relaxed),
            cancelled: self.ctr.cancelled.load(Ordering::Relaxed),
            shed_429: self.ctr.shed_429.load(Ordering::Relaxed),
            shed_drain: self.ctr.shed_drain.load(Ordering::Relaxed),
            bad_requests: self.ctr.bad_requests.load(Ordering::Relaxed),
        }
    }
}

/// A handle for poking a running [`Server`] from another thread (tests,
/// signal handlers): request drain, read live stats.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<State>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle").finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// Asks the serve loop to begin graceful drain; returns immediately.
    pub fn drain(&self) {
        self.state.stop.store(true, Ordering::SeqCst);
    }

    /// True once drain has been requested (by this handle or a signal).
    pub fn draining(&self) -> bool {
        self.state.stop.load(Ordering::SeqCst) || self.state.draining.load(Ordering::SeqCst)
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.state.stats()
    }
}

/// The bound-but-not-yet-serving daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<State>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener and starts the worker pool (jobs flow once
    /// [`serve`](Self::serve) runs the accept loop).
    ///
    /// # Errors
    ///
    /// Bind/configuration errors from the OS.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers_n = cfg.workers.max(1);
        let state = Arc::new(State::new(cfg));
        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let st = Arc::clone(&state);
            workers.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&st))?,
            );
        }
        Ok(Server {
            listener,
            addr,
            state,
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clone-able control handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the accept loop until drain is requested — via
    /// [`ServerHandle::drain`] or the process-wide interrupt flag
    /// (SIGTERM/SIGINT) — then drains gracefully and returns the final
    /// tallies. Never returns early on connection errors.
    pub fn serve(self) -> ServeStats {
        loop {
            if self.state.stop.load(Ordering::SeqCst) || dramstack_sim::interrupted() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => self.dispatch(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(15));
                }
                Err(_) => thread::sleep(Duration::from_millis(15)),
            }
        }
        // Run the drain sequence on a helper thread and keep accepting
        // while it works: drain can last the whole grace period, and a
        // client arriving mid-drain deserves a typed 503 (and working
        // status/metrics/stream reads), not a connection stuck in the
        // listen backlog or refused outright once the listener closes.
        let st = Arc::clone(&self.state);
        match thread::Builder::new()
            .name("serve-drain".to_string())
            .spawn(move || drain(&st))
        {
            Ok(drainer) => {
                while !drainer.is_finished() {
                    match self.listener.accept() {
                        Ok((stream, _)) => self.dispatch(stream),
                        Err(_) => thread::sleep(Duration::from_millis(15)),
                    }
                }
                let _ = drainer.join();
            }
            Err(_) => drain(&self.state),
        }
        for w in self.workers {
            let _ = w.join();
        }
        self.state.stats()
    }

    fn dispatch(&self, mut stream: TcpStream) {
        let st = &self.state;
        if st.active_conns.load(Ordering::SeqCst) >= st.cfg.max_connections {
            // Best effort; the client may already be gone.
            let _ = http::write_json(
                &mut stream,
                503,
                "{\"error\":\"connection limit reached\"}",
                &[("Retry-After", "1".to_string())],
            );
            return;
        }
        let _ = stream.set_read_timeout(Some(st.cfg.read_timeout));
        let _ = stream.set_write_timeout(Some(st.cfg.write_timeout));
        let _ = stream.set_nonblocking(false);
        st.active_conns.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(st);
        // Detached on purpose: the connection is bounded by its own
        // read/write deadlines, so joining adds nothing but a way for a
        // slow client to delay shutdown.
        let spawned = thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || {
                handle_conn(&state, &mut stream);
                state.active_conns.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            st.active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// The graceful-drain sequence; see the module docs for the contract.
fn drain(state: &Arc<State>) {
    state.draining.store(true, Ordering::SeqCst);
    // Shed everything still queued: those jobs never started, so "shed"
    // (resubmit later) is more honest than a silent cancel.
    let queued: Vec<u64> = lock(&state.queue).drain(..).collect();
    {
        let mut jobs = lock(&state.jobs);
        for id in queued {
            if let Some(e) = jobs.get_mut(&id) {
                if matches!(e.state, JobState::Queued) {
                    e.state = JobState::Shed;
                    e.finished = Some(Instant::now());
                    e.hub.close();
                    state.ctr.shed_drain.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    state.queue_cv.notify_all();
    // Give running jobs the grace period to finish on their own.
    let deadline = Instant::now() + state.cfg.drain_grace;
    {
        let mut jobs = lock(&state.jobs);
        while state.running.load(Ordering::SeqCst) > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, _) = state
                .jobs_cv
                .wait_timeout(jobs, left.min(Duration::from_millis(50)))
                .unwrap_or_else(PoisonError::into_inner);
            jobs = guard;
        }
        // Cooperative cancellation for whatever is still running; the
        // job checkpoints (if configured) and returns promptly.
        for e in jobs.values_mut() {
            if matches!(e.state, JobState::Running) {
                e.cancel.cancel();
            }
        }
    }
    state.queue_cv.notify_all();
}

fn worker_loop(state: &Arc<State>) {
    loop {
        let id = {
            let mut q = lock(&state.queue);
            loop {
                if let Some(id) = q.pop_front() {
                    break id;
                }
                if state.draining.load(Ordering::SeqCst) {
                    return;
                }
                q = state
                    .queue_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some((spec, cancel, hub)) = ({
            let mut jobs = lock(&state.jobs);
            jobs.get_mut(&id).and_then(|e| {
                if !matches!(e.state, JobState::Queued) {
                    return None; // shed while queued
                }
                e.state = JobState::Running;
                Some((e.spec.clone(), e.cancel.clone(), e.hub.clone()))
            })
        }) else {
            continue;
        };
        state.running.fetch_add(1, Ordering::SeqCst);
        // The in-job deadline fires first (typed error, current cycle);
        // the supervisor's wall-clock deadline is a margin-padded
        // backstop for jobs too wedged to check their own.
        let scfg = SupervisorConfig {
            threads: 1,
            deadline: state.cfg.job_deadline.map(|d| d + Duration::from_secs(2)),
            stall_timeout: Some(state.cfg.job_stall_timeout),
            progress_budget: None,
            max_retries: 0,
            retry_backoff: Duration::from_millis(50),
            poll: Duration::from_millis(10),
        };
        let deadline = state.cfg.job_deadline;
        let ckpt = state.cfg.checkpoint_dir.clone().map(|dir| JobCheckpoint {
            dir,
            key: format!("job-{id}"),
        });
        let fleet = Arc::clone(&state.fleet);
        let hub_for_job = Arc::clone(&hub);
        let cancel_for_job = cancel.clone();
        let outcome = parallel::supervise(&scfg, spec, move |pulse, spec: JobSpec| {
            let mut tel = Telemetry::new(TelemetryConfig::default());
            tel.add_sink(Box::new(HubSink::new(
                Arc::clone(&hub_for_job),
                Arc::clone(&fleet),
            )));
            run_job(
                &spec,
                &pulse,
                &cancel_for_job,
                JobOptions {
                    deadline,
                    telemetry: Some(tel),
                    checkpoint: ckpt.clone(),
                },
            )
        });
        let final_state = match outcome {
            JobOutcome::Ok(Ok(report))
            | JobOutcome::Retried {
                result: Ok(report), ..
            } => {
                state.ctr.completed.fetch_add(1, Ordering::Relaxed);
                JobState::Done(Box::new(report))
            }
            JobOutcome::Ok(Err(e)) | JobOutcome::Retried { result: Err(e), .. } => match e {
                JobError::Cancelled { checkpointed, .. } => {
                    state.ctr.cancelled.fetch_add(1, Ordering::Relaxed);
                    JobState::Cancelled { checkpointed }
                }
                JobError::DeadlineExceeded { .. } => {
                    state.ctr.timed_out.fetch_add(1, Ordering::Relaxed);
                    JobState::TimedOut
                }
                other => {
                    state.ctr.failed.fetch_add(1, Ordering::Relaxed);
                    JobState::Failed(other.to_string())
                }
            },
            JobOutcome::Panicked { message, .. } => {
                state.ctr.failed.fetch_add(1, Ordering::Relaxed);
                JobState::Failed(message)
            }
            JobOutcome::TimedOut { .. } => {
                state.ctr.timed_out.fetch_add(1, Ordering::Relaxed);
                JobState::TimedOut
            }
        };
        {
            let mut jobs = lock(&state.jobs);
            if let Some(e) = jobs.get_mut(&id) {
                e.state = final_state;
                e.finished = Some(Instant::now());
            }
        }
        hub.close();
        state.running.fetch_sub(1, Ordering::SeqCst);
        state.jobs_cv.notify_all();
    }
}

fn handle_conn(state: &Arc<State>, stream: &mut TcpStream) {
    let req = match http::read_request(stream, state.cfg.max_body_bytes) {
        Ok(req) => req,
        Err(HttpError::Closed) => return,
        Err(e) => {
            state.ctr.bad_requests.fetch_add(1, Ordering::Relaxed);
            let (status, msg) = match &e {
                HttpError::HeadTooLarge => (431, e.to_string()),
                HttpError::PayloadTooLarge { .. } => (413, e.to_string()),
                HttpError::Timeout => (408, e.to_string()),
                _ => (400, e.to_string()),
            };
            let _ = http::write_json(stream, status, &error_body(&msg), &[]);
            drain_unread(stream);
            return;
        }
    };
    route(state, stream, &req);
}

/// Discards whatever the client already sent before the connection
/// closes. Closing with unread bytes in the receive buffer makes the
/// kernel RST the connection, which can destroy a typed 4xx response
/// before the client reads it. Bounded by the read deadline and a byte
/// budget so an abusive sender cannot pin the thread.
fn drain_unread(stream: &mut TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let mut scratch = [0u8; 8192];
    let mut budget: usize = 1 << 20;
    while budget > 0 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

fn error_body(msg: &str) -> String {
    serde_json::to_string(&Value::Map(vec![(
        "error".to_string(),
        Value::Str(msg.to_string()),
    )]))
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string())
}

fn route(state: &Arc<State>, stream: &mut TcpStream, req: &Request) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => post_job(state, stream, req),
        ("GET", "/healthz") => {
            let _ = http::write_response(stream, 200, "text/plain", b"ok\n", &[]);
        }
        ("GET", "/readyz") => {
            if state.draining.load(Ordering::SeqCst) || state.stop.load(Ordering::SeqCst) {
                let _ = http::write_json(stream, 503, &error_body("draining"), &[]);
            } else {
                let _ = http::write_response(stream, 200, "text/plain", b"ready\n", &[]);
            }
        }
        ("GET", "/metrics") => {
            let body = metrics_body(state);
            let _ = http::write_response(
                stream,
                200,
                "text/plain; version=0.0.4",
                body.as_bytes(),
                &[],
            );
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            if let Some(id_str) = rest.strip_suffix("/stream") {
                match id_str.parse::<u64>() {
                    Ok(id) => stream_job(state, stream, id),
                    Err(_) => {
                        let _ = http::write_json(stream, 404, &error_body("no such job"), &[]);
                    }
                }
            } else {
                match rest.parse::<u64>() {
                    Ok(id) => get_job(state, stream, id),
                    Err(_) => {
                        let _ = http::write_json(stream, 404, &error_body("no such job"), &[]);
                    }
                }
            }
        }
        ("GET" | "POST", _) => {
            let _ = http::write_json(stream, 404, &error_body("no such endpoint"), &[]);
        }
        _ => {
            let _ = http::write_json(stream, 405, &error_body("method not allowed"), &[]);
        }
    }
}

fn post_job(state: &Arc<State>, stream: &mut TcpStream, req: &Request) {
    if state.draining.load(Ordering::SeqCst) || state.stop.load(Ordering::SeqCst) {
        let _ = http::write_json(
            stream,
            503,
            &error_body("draining, not accepting new jobs"),
            &[],
        );
        return;
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => {
            state.ctr.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_json(stream, 400, &error_body("body is not UTF-8"), &[]);
            return;
        }
    };
    let spec = match JobSpec::from_json(body) {
        Ok(s) => s,
        Err(msg) => {
            state.ctr.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_json(stream, 400, &error_body(&msg), &[]);
            return;
        }
    };
    // Resolve now so a bad spec is a 400 at admission, not a failed job.
    if let Err(msg) = spec.resolve() {
        state.ctr.bad_requests.fetch_add(1, Ordering::Relaxed);
        let _ = http::write_json(stream, 400, &error_body(&msg), &[]);
        return;
    }
    let id = {
        let mut q = lock(&state.queue);
        if q.len() >= state.cfg.queue_cap {
            state.ctr.shed_429.fetch_add(1, Ordering::Relaxed);
            drop(q);
            let _ = http::write_json(
                stream,
                429,
                &error_body("queue full, retry later"),
                &[("Retry-After", "1".to_string())],
            );
            return;
        }
        let id = state.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        lock(&state.jobs).insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                cancel: JobCancel::new(),
                hub: Arc::new(StreamHub::new()),
                submitted: Instant::now(),
                finished: None,
            },
        );
        q.push_back(id);
        id
    };
    state.ctr.accepted.fetch_add(1, Ordering::Relaxed);
    state.queue_cv.notify_one();
    let body = serde_json::to_string(&Value::Map(vec![
        ("id".to_string(), Value::Int(i128::from(id))),
        ("status".to_string(), Value::Str("queued".to_string())),
    ]))
    .unwrap_or_default();
    let _ = http::write_json(stream, 202, &body, &[]);
}

fn get_job(state: &Arc<State>, stream: &mut TcpStream, id: u64) {
    let body = {
        let jobs = lock(&state.jobs);
        let Some(e) = jobs.get(&id) else {
            drop(jobs);
            let _ = http::write_json(stream, 404, &error_body("no such job"), &[]);
            return;
        };
        let elapsed = e
            .finished
            .unwrap_or_else(Instant::now)
            .duration_since(e.submitted);
        let mut fields = vec![
            ("id".to_string(), Value::Int(i128::from(id))),
            ("status".to_string(), Value::Str(e.state.name().to_string())),
            ("spec".to_string(), serde_json::to_value(&e.spec)),
            (
                "elapsed_ms".to_string(),
                Value::Float(elapsed.as_secs_f64() * 1e3),
            ),
        ];
        match &e.state {
            JobState::Done(report) => {
                fields.push(("report".to_string(), serde_json::to_value(report.as_ref())));
            }
            JobState::Failed(msg) => {
                fields.push(("error".to_string(), Value::Str(msg.clone())));
            }
            JobState::Cancelled { checkpointed } => {
                fields.push(("checkpointed".to_string(), Value::Bool(*checkpointed)));
            }
            _ => {}
        }
        serde_json::to_string(&Value::Map(fields)).unwrap_or_default()
    };
    let _ = http::write_json(stream, 200, &body, &[]);
}

fn stream_job(state: &Arc<State>, stream: &mut TcpStream, id: u64) {
    let hub = {
        let jobs = lock(&state.jobs);
        match jobs.get(&id) {
            Some(e) => Arc::clone(&e.hub),
            None => {
                drop(jobs);
                let _ = http::write_json(stream, 404, &error_body("no such job"), &[]);
                return;
            }
        }
    };
    let Ok(mut chunked) = ChunkedBody::start(stream, "application/jsonl") else {
        return;
    };
    let mut from = 0usize;
    let mut line = String::new();
    loop {
        let (lines, closed) = hub.wait_from(from, Duration::from_millis(250));
        from += lines.len();
        let drained = lines.is_empty();
        for l in lines {
            line.clear();
            line.push_str(&l);
            line.push('\n');
            if chunked.write_chunk(line.as_bytes()).is_err() {
                return; // slow or gone client: its problem alone
            }
        }
        if closed && drained {
            break;
        }
    }
    let _ = chunked.finish();
}

fn metrics_body(state: &Arc<State>) -> String {
    let mut out = lock(&state.fleet).prometheus_snapshot();
    let s = state.stats();
    out.push_str("# HELP dramstack_serve_jobs_total Jobs by terminal disposition\n");
    out.push_str("# TYPE dramstack_serve_jobs_total counter\n");
    for (label, v) in [
        ("accepted", s.accepted),
        ("completed", s.completed),
        ("failed", s.failed),
        ("timed_out", s.timed_out),
        ("cancelled", s.cancelled),
        ("shed_429", s.shed_429),
        ("shed_drain", s.shed_drain),
    ] {
        out.push_str(&format!(
            "dramstack_serve_jobs_total{{disposition=\"{label}\"}} {v}\n"
        ));
    }
    out.push_str("# HELP dramstack_serve_bad_requests_total Protocol-level 4xx answers\n");
    out.push_str("# TYPE dramstack_serve_bad_requests_total counter\n");
    out.push_str(&format!(
        "dramstack_serve_bad_requests_total {}\n",
        s.bad_requests
    ));
    out.push_str("# HELP dramstack_serve_queue_depth Jobs waiting for a worker\n");
    out.push_str("# TYPE dramstack_serve_queue_depth gauge\n");
    out.push_str(&format!(
        "dramstack_serve_queue_depth {}\n",
        lock(&state.queue).len()
    ));
    out.push_str("# HELP dramstack_serve_running Jobs currently executing\n");
    out.push_str("# TYPE dramstack_serve_running gauge\n");
    out.push_str(&format!(
        "dramstack_serve_running {}\n",
        state.running.load(Ordering::SeqCst)
    ));
    out.push_str("# HELP dramstack_serve_draining 1 while drain is in progress\n");
    out.push_str("# TYPE dramstack_serve_draining gauge\n");
    out.push_str(&format!(
        "dramstack_serve_draining {}\n",
        u8::from(state.draining.load(Ordering::SeqCst) || state.stop.load(Ordering::SeqCst))
    ));
    out
}
