//! Calibration for the GAP experiments (Figs. 7–9).

use dramstack_core::{BwComponent, LatComponent};
use dramstack_memctrl::{MappingScheme, PagePolicy};
use dramstack_sim::experiments::{fig9_kernel, run_gap, ExperimentScale};
use dramstack_workloads::GapKernel;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("quick") => ExperimentScale::quick(),
        _ => ExperimentScale::full(),
    };
    let g = scale.build_graph();
    println!("graph: {} vertices, {} directed edges", g.n, g.edge_count());

    for (kernel, cores) in [
        (GapKernel::Bfs, 8usize),
        (GapKernel::Tc, 1),
        (GapKernel::Pr, 8),
    ] {
        let t0 = std::time::Instant::now();
        let policy = if kernel == GapKernel::Tc {
            PagePolicy::Open
        } else {
            PagePolicy::Closed
        };
        let gk = scale.graph_for(kernel);
        let r = run_gap(
            kernel,
            &gk,
            cores,
            policy,
            MappingScheme::RowBankColumn,
            32,
            &scale.gap,
            scale.max_cycles,
        )
        .expect("paper configuration is valid");
        let bw = &r.bandwidth_stack;
        println!(
            "{} {}c: {:.2} ms sim, {} samples, bw={:.2} (r={:.2} w={:.2}) pre+act={:.2} con={:.2} bidle={:.2} idle={:.2} | lat={:.1}ns (q={:.1} wb={:.1} pa={:.1}) hit={:.2} ipc={:.2} [{:?} wall]",
            kernel,
            cores,
            r.elapsed_us / 1000.0,
            r.samples.len(),
            bw.achieved_gbps(),
            bw.gbps(BwComponent::Read),
            bw.gbps(BwComponent::Write),
            bw.gbps(BwComponent::Precharge) + bw.gbps(BwComponent::Activate),
            bw.gbps(BwComponent::Constraints),
            bw.gbps(BwComponent::BankIdle),
            bw.gbps(BwComponent::Idle),
            r.avg_read_latency_ns(),
            r.latency_stack.ns(LatComponent::Queue),
            r.latency_stack.ns(LatComponent::WriteBurst),
            r.latency_stack.ns(LatComponent::PreAct),
            r.ctrl_stats.read_hit_rate(),
            r.ipc(),
            t0.elapsed(),
        );
    }

    for k in [GapKernel::Bfs, GapKernel::Cc] {
        let t0 = std::time::Instant::now();
        let row = fig9_kernel(k, &scale).expect("paper configuration is valid");
        println!(
            "fig9 {k}: measured8c={:.2} naive={:.2} (err {:.0}%) stack={:.2} (err {:.0}%) [{:?} wall]",
            row.measured_8c,
            row.naive,
            row.naive_error() * 100.0,
            row.stack,
            row.stack_error() * 100.0,
            t0.elapsed(),
        );
    }
}
