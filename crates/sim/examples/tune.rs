//! Internal calibration harness: prints bandwidth/latency for the key
//! configurations so model knobs can be tuned against the paper's shapes.

use dramstack_core::{BwComponent, LatComponent};
use dramstack_sim::{Simulator, SystemConfig};
use dramstack_workloads::SyntheticPattern;

fn run(label: &str, cores: usize, pattern: SyntheticPattern, us: f64) {
    let cfg = SystemConfig::paper_default(cores);
    let mut sim = Simulator::with_synthetic(cfg, pattern);
    let r = sim.run_for_us(us);
    let bw = &r.bandwidth_stack;
    println!(
        "{label:16} bw={:5.2} (r={:5.2} w={:5.2}) ref={:4.2} pre={:4.2} act={:4.2} con={:4.2} bidle={:5.2} idle={:5.2} | lat={:6.1}ns (q={:5.1} wb={:5.1} pa={:5.1}) hit={:4.2} ipc={:4.2}",
        bw.achieved_gbps(),
        bw.gbps(BwComponent::Read),
        bw.gbps(BwComponent::Write),
        bw.gbps(BwComponent::Refresh),
        bw.gbps(BwComponent::Precharge),
        bw.gbps(BwComponent::Activate),
        bw.gbps(BwComponent::Constraints),
        bw.gbps(BwComponent::BankIdle),
        bw.gbps(BwComponent::Idle),
        r.avg_read_latency_ns(),
        r.latency_stack.ns(LatComponent::Queue),
        r.latency_stack.ns(LatComponent::WriteBurst),
        r.latency_stack.ns(LatComponent::PreAct),
        r.ctrl_stats.read_hit_rate(),
        r.ipc(),
    );
}

fn main() {
    let us: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100.0);
    for c in [1, 2, 4, 8] {
        run(
            &format!("seq {c}c"),
            c,
            SyntheticPattern::sequential(0.0),
            us,
        );
    }
    for c in [1, 2, 4, 8] {
        run(&format!("rand {c}c"), c, SyntheticPattern::random(0.0), us);
    }
    for w in [10, 20, 50] {
        run(
            &format!("seq w{w} 1c"),
            1,
            SyntheticPattern::sequential(w as f64 / 100.0),
            us,
        );
    }
    for w in [10, 20, 50] {
        run(
            &format!("rand w{w} 1c"),
            1,
            SyntheticPattern::random(w as f64 / 100.0),
            us,
        );
    }
}
