//! Calibration for Fig. 4 (page policy) and Fig. 6 (bank indexing).

use dramstack_core::{BwComponent, LatComponent};
use dramstack_memctrl::{MappingScheme, PagePolicy};
use dramstack_sim::experiments::run_synthetic;
use dramstack_workloads::SyntheticPattern;

fn show(
    label: &str,
    cores: usize,
    p: SyntheticPattern,
    pol: PagePolicy,
    map: MappingScheme,
    us: f64,
) {
    let r = run_synthetic(cores, p, pol, map, us).expect("paper configuration is valid");
    let bw = &r.bandwidth_stack;
    println!(
        "{label:24} bw={:5.2} (r={:5.2} w={:5.2}) pre={:4.2} act={:4.2} con={:4.2} bidle={:5.2} idle={:5.2} | lat={:6.1}ns (q={:5.1} wb={:5.1} pa={:5.1}) hit={:4.2}",
        bw.achieved_gbps(),
        bw.gbps(BwComponent::Read),
        bw.gbps(BwComponent::Write),
        bw.gbps(BwComponent::Precharge),
        bw.gbps(BwComponent::Activate),
        bw.gbps(BwComponent::Constraints),
        bw.gbps(BwComponent::BankIdle),
        bw.gbps(BwComponent::Idle),
        r.avg_read_latency_ns(),
        r.latency_stack.ns(LatComponent::Queue),
        r.latency_stack.ns(LatComponent::WriteBurst),
        r.latency_stack.ns(LatComponent::PreAct),
        r.ctrl_stats.read_hit_rate(),
    );
}

fn main() {
    let us: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100.0);
    use MappingScheme::*;
    use PagePolicy::*;
    println!("--- fig4: open vs closed, 2 cores, read-only ---");
    show(
        "seq open",
        2,
        SyntheticPattern::sequential(0.0),
        Open,
        RowBankColumn,
        us,
    );
    show(
        "seq closed",
        2,
        SyntheticPattern::sequential(0.0),
        Closed,
        RowBankColumn,
        us,
    );
    show(
        "rand open",
        2,
        SyntheticPattern::random(0.0),
        Open,
        RowBankColumn,
        us,
    );
    show(
        "rand closed",
        2,
        SyntheticPattern::random(0.0),
        Closed,
        RowBankColumn,
        us,
    );
    println!("--- fig6: def vs interleaved ---");
    show(
        "seq w50 1c open def",
        1,
        SyntheticPattern::sequential(0.5),
        Open,
        RowBankColumn,
        us,
    );
    show(
        "seq w50 1c open int",
        1,
        SyntheticPattern::sequential(0.5),
        Open,
        CacheLineInterleaved,
        us,
    );
    show(
        "seq w0 2c closed def",
        2,
        SyntheticPattern::sequential(0.0),
        Closed,
        RowBankColumn,
        us,
    );
    show(
        "seq w0 2c closed int",
        2,
        SyntheticPattern::sequential(0.0),
        Closed,
        CacheLineInterleaved,
        us,
    );
}
