//! Versioned whole-simulator snapshots for crash-safe checkpoint/resume.
//!
//! A [`Snapshot`] captures everything a [`Simulator`](crate::Simulator)
//! needs to resume bit-identically: device/controller state per channel,
//! the cache hierarchy and cores, the workload RNG streams, the stack
//! samplers (including the open, partially filled window), the armed
//! auditors' bookkeeping, and the cycle counters. It deliberately does
//! *not* capture attachments (probes, telemetry, heartbeat, log sink,
//! profiling timers) or tuning knobs (fast-forward, busy engine) — those
//! belong to the process hosting the simulator, not to the simulated
//! machine, and are preserved on the restore target.
//!
//! Snapshots serialize to a versioned JSON blob via [`Snapshot::to_json`]
//! / [`Snapshot::from_json`]. The format is guarded by
//! [`SNAPSHOT_FORMAT_VERSION`]: any change to the serialized shape of any
//! captured component must bump it (a golden-fixture test fails loudly
//! otherwise), and loading a blob with a different version is a typed
//! [`SnapshotError::VersionMismatch`], never a silent misparse.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use dramstack_audit::AuditState;
use dramstack_core::{HistogramDelta, LatencyHistogram, SamplerDelta, SamplerState};
use dramstack_cpu::{CoreState, CycleStack, HierarchyDelta, HierarchyState};
use dramstack_dram::Cycle;
use dramstack_memctrl::CtrlSnapshot;

use crate::binary;
use crate::config::SystemConfig;

/// Version stamp embedded in every serialized snapshot.
///
/// Bump this whenever the serialized shape of [`Snapshot`] or any of its
/// component states changes, so stale blobs are rejected with
/// [`SnapshotError::VersionMismatch`] instead of being misread.
///
/// v2: cache ways serialize columnar (flat tag/LRU columns + valid/dirty
/// bitset words) instead of one map per way.
///
/// v3: delta checkpoints carry a sparse per-bucket latency-histogram
/// patch ([`HistogramDelta`]) instead of re-serializing the whole
/// histogram in every delta. Full snapshots still embed the complete
/// histogram and remain the oracle.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 3;

/// Version stamp of the binary `.dsnp` *container* (magic, string table,
/// section table — see [`crate::binary`]), independent of the embedded
/// tree's [`SNAPSHOT_FORMAT_VERSION`]. Bump when the container layout
/// itself changes.
pub const SNAPSHOT_BINARY_VERSION: u32 = 1;

/// Full machine state of a [`Simulator`](crate::Simulator) at a cycle
/// boundary, sufficient for bit-identical resume.
///
/// Produced by [`Simulator::snapshot`](crate::Simulator::snapshot),
/// consumed by [`Simulator::restore`](crate::Simulator::restore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_FORMAT_VERSION`] at capture time).
    pub version: u32,
    /// The configuration the simulator was built from. Restore targets
    /// must be built from an equal configuration.
    pub config: SystemConfig,
    /// The DRAM cycle the machine is parked at.
    pub dram_cycle: Cycle,
    /// Next cycle-stack window boundary.
    pub next_cycle_sample: Cycle,
    /// Per-core pipeline/MSHR/prefetcher state.
    pub cores: Vec<CoreState>,
    /// Per-core instruction-stream checkpoints (RNG state + position).
    pub streams: Vec<Vec<u64>>,
    /// Shared cache hierarchy (L1s, L2s, LLC, queues, in-flight reads).
    pub hierarchy: HierarchyState,
    /// Per-channel controller + device state.
    pub controllers: Vec<CtrlSnapshot>,
    /// Per-channel stack samplers, including the open window.
    pub samplers: Vec<SamplerState>,
    /// Per-channel shadow-auditor bookkeeping (`None` where unarmed).
    pub audits: Vec<Option<AuditState>>,
    /// Completed CPU cycle-stack windows not yet moved into a report.
    pub cycle_samples: Vec<CycleStack>,
    /// Running CPU cycle-stack total.
    pub cycle_total: CycleStack,
    /// DRAM read-latency histogram.
    pub histogram: LatencyHistogram,
}

impl Snapshot {
    /// Serializes to the versioned JSON blob.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Parses a snapshot from JSON, with typed errors: parse failures
    /// carry the byte offset of the first malformed token, and a version
    /// stamp other than [`SNAPSHOT_FORMAT_VERSION`] is rejected before
    /// any state is interpreted.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        // Check the version stamp first so a format change surfaces as
        // VersionMismatch, not as a confusing field-level parse error.
        let value: serde_json::Value =
            serde_json::from_str(text).map_err(|e| SnapshotError::Parse {
                msg: e.to_string(),
                byte: e.byte_offset(),
            })?;
        if let Some(v) = value.get("version").and_then(serde_json::Value::as_u64) {
            if v != u64::from(SNAPSHOT_FORMAT_VERSION) {
                return Err(SnapshotError::VersionMismatch {
                    expected: SNAPSHOT_FORMAT_VERSION,
                    got: v,
                });
            }
        }
        serde_json::from_value(&value).map_err(|e| SnapshotError::Parse {
            msg: e.to_string(),
            byte: e.byte_offset(),
        })
    }

    /// Serializes to the compact binary `.dsnp` container — the default
    /// on-disk checkpoint format (several times smaller and faster to
    /// encode than the JSON blob, describing the identical state).
    pub fn to_binary(&self) -> Vec<u8> {
        binary::encode(&self.to_value(), binary::KIND_FULL, SNAPSHOT_FORMAT_VERSION)
    }

    /// Parses a full snapshot from the binary container, with typed
    /// errors for every way a file can be wrong: foreign files
    /// ([`SnapshotError::BadMagic`]), container or format version skew,
    /// truncation (naming the section the data ran out in), structural
    /// corruption, and a delta file where a full snapshot was expected.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let d = binary::decode(bytes)?;
        if d.kind != binary::KIND_FULL {
            return Err(SnapshotError::Corrupt {
                msg: "expected a full snapshot, found a delta container".to_string(),
            });
        }
        if d.format_version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                expected: SNAPSHOT_FORMAT_VERSION,
                got: u64::from(d.format_version),
            });
        }
        Snapshot::from_value(&d.value).map_err(|e| SnapshotError::Corrupt { msg: e.to_string() })
    }

    /// Replays a delta captured against this snapshot's state, advancing
    /// `self` to the machine state at the delta's capture cycle.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::DeltaChainBroken`] when the delta was captured
    /// against a different base cycle than this snapshot is parked at,
    /// and [`SnapshotError::Corrupt`] when the delta does not fit this
    /// snapshot's shape (core/channel count or cache geometry).
    pub fn apply_delta(&mut self, delta: &SnapshotDelta) -> Result<(), SnapshotError> {
        if delta.base_cycle != self.dram_cycle {
            return Err(SnapshotError::DeltaChainBroken {
                expected: delta.base_cycle,
                got: self.dram_cycle,
            });
        }
        let corrupt = |msg: String| SnapshotError::Corrupt { msg };
        if delta.controllers.len() != self.controllers.len() {
            return Err(corrupt(format!(
                "delta covers {} channels, snapshot has {}",
                delta.controllers.len(),
                self.controllers.len()
            )));
        }
        if delta.samplers.len() != self.samplers.len() {
            return Err(corrupt(format!(
                "delta covers {} samplers, snapshot has {}",
                delta.samplers.len(),
                self.samplers.len()
            )));
        }
        if self.cycle_samples.len() as u64 != delta.cycle_samples_base_len {
            return Err(corrupt(format!(
                "delta expects a base with {} cycle windows, snapshot has {}",
                delta.cycle_samples_base_len,
                self.cycle_samples.len()
            )));
        }
        self.hierarchy
            .apply_delta(&delta.hierarchy)
            .map_err(corrupt)?;
        for (slot, d) in self.controllers.iter_mut().zip(&delta.controllers) {
            if let Some(c) = d {
                *slot = c.clone();
            }
        }
        for (s, d) in self.samplers.iter_mut().zip(&delta.samplers) {
            s.apply_delta(d).map_err(corrupt)?;
        }
        self.cycle_samples
            .extend(delta.cycle_samples_appended.iter().cloned());
        self.dram_cycle = delta.dram_cycle;
        self.next_cycle_sample = delta.next_cycle_sample;
        self.cores = delta.cores.clone();
        self.streams = delta.streams.clone();
        self.audits = delta.audits.clone();
        self.cycle_total = delta.cycle_total;
        self.histogram
            .apply_delta(&delta.histogram)
            .map_err(corrupt)?;
        Ok(())
    }
}

/// A periodic checkpoint serialized as a *delta*: only the state dirtied
/// since the previous checkpoint in the chain. The big members — cache
/// ways, sampler series, quiescent channels — shrink to their dirty
/// subset; the small ones (cores, streams, audits, totals) are captured
/// whole, which keeps delta capture simple while still cutting the blob
/// by orders of magnitude on typical workloads.
///
/// Deltas form a chain: a full base snapshot, then deltas with ascending
/// `seq`, each stamped with the `base_cycle` it applies on top of.
/// [`Snapshot::apply_delta`] refuses a link whose `base_cycle` does not
/// match, so a stale or misordered chain surfaces as a typed error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDelta {
    /// Format version ([`SNAPSHOT_FORMAT_VERSION`] at capture time).
    pub version: u32,
    /// Position in the chain (1 for the first delta after the base).
    pub seq: u64,
    /// The `dram_cycle` of the snapshot this delta applies on top of.
    pub base_cycle: Cycle,
    /// The DRAM cycle the machine is parked at after replay.
    pub dram_cycle: Cycle,
    /// Next cycle-stack window boundary.
    pub next_cycle_sample: Cycle,
    /// Per-core pipeline/MSHR/prefetcher state (small; captured whole).
    pub cores: Vec<CoreState>,
    /// Per-core instruction-stream checkpoints (small; captured whole).
    pub streams: Vec<Vec<u64>>,
    /// Cache-hierarchy patch: dirtied sets only.
    pub hierarchy: HierarchyDelta,
    /// Per-channel controller state; `None` where the channel provably
    /// did not move since the previous checkpoint.
    pub controllers: Vec<Option<CtrlSnapshot>>,
    /// Per-channel sampler patches: open window + appended windows only.
    pub samplers: Vec<SamplerDelta>,
    /// Per-channel shadow-auditor bookkeeping (`None` where unarmed).
    pub audits: Vec<Option<AuditState>>,
    /// Rolled CPU cycle windows in the base, for chain integrity.
    pub cycle_samples_base_len: u64,
    /// CPU cycle windows rolled since the previous checkpoint.
    pub cycle_samples_appended: Vec<CycleStack>,
    /// Running CPU cycle-stack total.
    pub cycle_total: CycleStack,
    /// Sparse read-latency-histogram patch: only the buckets that grew
    /// since the previous checkpoint (see [`HistogramDelta`]).
    pub histogram: HistogramDelta,
}

impl SnapshotDelta {
    /// Serializes to the compact binary `.dsnp` container (delta kind).
    pub fn to_binary(&self) -> Vec<u8> {
        binary::encode(
            &self.to_value(),
            binary::KIND_DELTA,
            SNAPSHOT_FORMAT_VERSION,
        )
    }

    /// Parses a delta from the binary container (same typed errors as
    /// [`Snapshot::from_binary`], plus a full container where a delta was
    /// expected is [`SnapshotError::Corrupt`]).
    pub fn from_binary(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let d = binary::decode(bytes)?;
        if d.kind != binary::KIND_DELTA {
            return Err(SnapshotError::Corrupt {
                msg: "expected a delta, found a full snapshot container".to_string(),
            });
        }
        if d.format_version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                expected: SNAPSHOT_FORMAT_VERSION,
                got: u64::from(d.format_version),
            });
        }
        SnapshotDelta::from_value(&d.value)
            .map_err(|e| SnapshotError::Corrupt { msg: e.to_string() })
    }
}

/// Typed failures from snapshot capture, serialization, or restore.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The blob was written by a different snapshot format version.
    VersionMismatch {
        /// The version this build understands.
        expected: u32,
        /// The version found in the blob.
        got: u64,
    },
    /// The restore target was built from a different [`SystemConfig`]
    /// than the snapshot captures.
    ConfigMismatch,
    /// A core's instruction stream does not support checkpointing
    /// (custom `InstrStream` impls without `checkpoint`).
    StreamUnsupported {
        /// Index of the offending core.
        core: usize,
    },
    /// A core's instruction stream rejected the checkpoint words.
    StreamRestoreFailed {
        /// Index of the offending core.
        core: usize,
    },
    /// The JSON blob is malformed or does not describe a snapshot.
    Parse {
        /// Parser message.
        msg: String,
        /// Byte offset of the first malformed token, when known.
        byte: Option<usize>,
    },
    /// The file does not start with the binary container magic — it is
    /// not a `.dsnp` snapshot at all.
    BadMagic,
    /// The binary *container* layout version differs (the embedded
    /// tree's format version is [`SnapshotError::VersionMismatch`]).
    BinaryVersionMismatch {
        /// The container version this build reads.
        expected: u32,
        /// The container version found in the file.
        got: u32,
    },
    /// The binary container ends mid-data (e.g. a write cut short by a
    /// crash).
    Truncated {
        /// The section the data ran out in (`header` for the preamble).
        section: String,
    },
    /// The binary container is structurally damaged, or a decoded tree
    /// does not describe the expected snapshot/delta shape.
    Corrupt {
        /// What was wrong.
        msg: String,
    },
    /// A delta was applied to (or a chain replayed from) a base parked
    /// at a different cycle than the delta was captured against.
    DeltaChainBroken {
        /// The base cycle the delta expects.
        expected: Cycle,
        /// The cycle the base snapshot is actually parked at.
        got: Cycle,
    },
    /// A delta capture was requested with no base snapshot taken first,
    /// or a delta chain on disk has no readable base.
    DeltaBaseMissing,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::VersionMismatch { expected, got } => write!(
                f,
                "snapshot format version mismatch: this build reads v{expected}, blob is v{got}"
            ),
            SnapshotError::ConfigMismatch => {
                write!(f, "snapshot was captured under a different system config")
            }
            SnapshotError::StreamUnsupported { core } => write!(
                f,
                "core {core}'s instruction stream does not support checkpointing"
            ),
            SnapshotError::StreamRestoreFailed { core } => write!(
                f,
                "core {core}'s instruction stream rejected the checkpoint data"
            ),
            SnapshotError::Parse { msg, byte } => match byte {
                Some(b) => write!(f, "malformed snapshot JSON at byte {b}: {msg}"),
                None => write!(f, "malformed snapshot JSON: {msg}"),
            },
            SnapshotError::BadMagic => {
                write!(f, "not a binary snapshot: missing DSNP container magic")
            }
            SnapshotError::BinaryVersionMismatch { expected, got } => write!(
                f,
                "binary container version mismatch: this build reads v{expected}, file is v{got}"
            ),
            SnapshotError::Truncated { section } => {
                write!(f, "binary snapshot truncated in section `{section}`")
            }
            SnapshotError::Corrupt { msg } => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::DeltaChainBroken { expected, got } => write!(
                f,
                "delta chain broken: delta was captured against base cycle {expected}, \
                 base is parked at {got}"
            ),
            SnapshotError::DeltaBaseMissing => {
                write!(f, "delta requested with no base snapshot")
            }
        }
    }
}

impl Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_mismatch_is_typed() {
        let text = r#"{"version": 99}"#;
        match Snapshot::from_json(text) {
            Err(SnapshotError::VersionMismatch { expected, got }) => {
                assert_eq!(expected, SNAPSHOT_FORMAT_VERSION);
                assert_eq!(got, 99);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn parse_error_carries_byte_offset() {
        let text = "{\"version\": 1, !!!}";
        match Snapshot::from_json(text) {
            Err(SnapshotError::Parse { byte, .. }) => assert!(byte.is_some()),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn display_messages_are_informative() {
        let e = SnapshotError::VersionMismatch {
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("v1"));
        assert!(e.to_string().contains("v2"));
        let e = SnapshotError::Parse {
            msg: "bad token".into(),
            byte: Some(17),
        };
        assert!(e.to_string().contains("byte 17"));
    }
}
