//! Versioned whole-simulator snapshots for crash-safe checkpoint/resume.
//!
//! A [`Snapshot`] captures everything a [`Simulator`](crate::Simulator)
//! needs to resume bit-identically: device/controller state per channel,
//! the cache hierarchy and cores, the workload RNG streams, the stack
//! samplers (including the open, partially filled window), the armed
//! auditors' bookkeeping, and the cycle counters. It deliberately does
//! *not* capture attachments (probes, telemetry, heartbeat, log sink,
//! profiling timers) or tuning knobs (fast-forward, busy engine) — those
//! belong to the process hosting the simulator, not to the simulated
//! machine, and are preserved on the restore target.
//!
//! Snapshots serialize to a versioned JSON blob via [`Snapshot::to_json`]
//! / [`Snapshot::from_json`]. The format is guarded by
//! [`SNAPSHOT_FORMAT_VERSION`]: any change to the serialized shape of any
//! captured component must bump it (a golden-fixture test fails loudly
//! otherwise), and loading a blob with a different version is a typed
//! [`SnapshotError::VersionMismatch`], never a silent misparse.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use dramstack_audit::AuditState;
use dramstack_core::{LatencyHistogram, SamplerState};
use dramstack_cpu::{CoreState, CycleStack, HierarchyState};
use dramstack_dram::Cycle;
use dramstack_memctrl::CtrlSnapshot;

use crate::config::SystemConfig;

/// Version stamp embedded in every serialized snapshot.
///
/// Bump this whenever the serialized shape of [`Snapshot`] or any of its
/// component states changes, so stale blobs are rejected with
/// [`SnapshotError::VersionMismatch`] instead of being misread.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Full machine state of a [`Simulator`](crate::Simulator) at a cycle
/// boundary, sufficient for bit-identical resume.
///
/// Produced by [`Simulator::snapshot`](crate::Simulator::snapshot),
/// consumed by [`Simulator::restore`](crate::Simulator::restore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_FORMAT_VERSION`] at capture time).
    pub version: u32,
    /// The configuration the simulator was built from. Restore targets
    /// must be built from an equal configuration.
    pub config: SystemConfig,
    /// The DRAM cycle the machine is parked at.
    pub dram_cycle: Cycle,
    /// Next cycle-stack window boundary.
    pub next_cycle_sample: Cycle,
    /// Per-core pipeline/MSHR/prefetcher state.
    pub cores: Vec<CoreState>,
    /// Per-core instruction-stream checkpoints (RNG state + position).
    pub streams: Vec<Vec<u64>>,
    /// Shared cache hierarchy (L1s, L2s, LLC, queues, in-flight reads).
    pub hierarchy: HierarchyState,
    /// Per-channel controller + device state.
    pub controllers: Vec<CtrlSnapshot>,
    /// Per-channel stack samplers, including the open window.
    pub samplers: Vec<SamplerState>,
    /// Per-channel shadow-auditor bookkeeping (`None` where unarmed).
    pub audits: Vec<Option<AuditState>>,
    /// Completed CPU cycle-stack windows not yet moved into a report.
    pub cycle_samples: Vec<CycleStack>,
    /// Running CPU cycle-stack total.
    pub cycle_total: CycleStack,
    /// DRAM read-latency histogram.
    pub histogram: LatencyHistogram,
}

impl Snapshot {
    /// Serializes to the versioned JSON blob.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Parses a snapshot from JSON, with typed errors: parse failures
    /// carry the byte offset of the first malformed token, and a version
    /// stamp other than [`SNAPSHOT_FORMAT_VERSION`] is rejected before
    /// any state is interpreted.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        // Check the version stamp first so a format change surfaces as
        // VersionMismatch, not as a confusing field-level parse error.
        let value: serde_json::Value =
            serde_json::from_str(text).map_err(|e| SnapshotError::Parse {
                msg: e.to_string(),
                byte: e.byte_offset(),
            })?;
        if let Some(v) = value.get("version").and_then(serde_json::Value::as_u64) {
            if v != u64::from(SNAPSHOT_FORMAT_VERSION) {
                return Err(SnapshotError::VersionMismatch {
                    expected: SNAPSHOT_FORMAT_VERSION,
                    got: v,
                });
            }
        }
        serde_json::from_value(&value).map_err(|e| SnapshotError::Parse {
            msg: e.to_string(),
            byte: e.byte_offset(),
        })
    }
}

/// Typed failures from snapshot capture, serialization, or restore.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The blob was written by a different snapshot format version.
    VersionMismatch {
        /// The version this build understands.
        expected: u32,
        /// The version found in the blob.
        got: u64,
    },
    /// The restore target was built from a different [`SystemConfig`]
    /// than the snapshot captures.
    ConfigMismatch,
    /// A core's instruction stream does not support checkpointing
    /// (custom `InstrStream` impls without `checkpoint`).
    StreamUnsupported {
        /// Index of the offending core.
        core: usize,
    },
    /// A core's instruction stream rejected the checkpoint words.
    StreamRestoreFailed {
        /// Index of the offending core.
        core: usize,
    },
    /// The JSON blob is malformed or does not describe a snapshot.
    Parse {
        /// Parser message.
        msg: String,
        /// Byte offset of the first malformed token, when known.
        byte: Option<usize>,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::VersionMismatch { expected, got } => write!(
                f,
                "snapshot format version mismatch: this build reads v{expected}, blob is v{got}"
            ),
            SnapshotError::ConfigMismatch => {
                write!(f, "snapshot was captured under a different system config")
            }
            SnapshotError::StreamUnsupported { core } => write!(
                f,
                "core {core}'s instruction stream does not support checkpointing"
            ),
            SnapshotError::StreamRestoreFailed { core } => write!(
                f,
                "core {core}'s instruction stream rejected the checkpoint data"
            ),
            SnapshotError::Parse { msg, byte } => match byte {
                Some(b) => write!(f, "malformed snapshot JSON at byte {b}: {msg}"),
                None => write!(f, "malformed snapshot JSON: {msg}"),
            },
        }
    }
}

impl Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_mismatch_is_typed() {
        let text = r#"{"version": 99}"#;
        match Snapshot::from_json(text) {
            Err(SnapshotError::VersionMismatch { expected, got }) => {
                assert_eq!(expected, SNAPSHOT_FORMAT_VERSION);
                assert_eq!(got, 99);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn parse_error_carries_byte_offset() {
        let text = "{\"version\": 1, !!!}";
        match Snapshot::from_json(text) {
            Err(SnapshotError::Parse { byte, .. }) => assert!(byte.is_some()),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn display_messages_are_informative() {
        let e = SnapshotError::VersionMismatch {
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("v1"));
        assert!(e.to_string().contains("v2"));
        let e = SnapshotError::Parse {
            msg: "bad token".into(),
            byte: Some(17),
        };
        assert!(e.to_string().contains("byte 17"));
    }
}
