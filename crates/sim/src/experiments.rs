//! Drivers for every experiment (figure) in the paper.
//!
//! Each function reproduces the configuration sweep behind one figure and
//! returns structured rows; the `dramstack-bench` crate renders them as
//! tables/CSV/SVG. Sizes are parameterized by [`ExperimentScale`] so the
//! same code serves fast CI checks and full figure regeneration.

use serde::{Deserialize, Serialize};

use dramstack_core::{predict_bandwidth_naive, predict_bandwidth_stack, LatencyStack};
use dramstack_dram::Cycle;
use dramstack_memctrl::{MappingScheme, PagePolicy};
use dramstack_workloads::{GapConfig, GapKernel, Graph, SyntheticPattern};

use crate::campaign::{job_key, Campaign};
use crate::ckpt::SnapshotFormat;
use crate::config::{ConfigError, SystemConfig};
use crate::parallel;
use crate::report::SimReport;
use crate::system::Simulator;

/// Experiment sizing: simulated duration for synthetic steady-state runs
/// and graph size for the GAP kernels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Simulated microseconds per synthetic configuration.
    pub synth_us: f64,
    /// Kronecker graph scale (`2^scale` vertices).
    pub graph_scale: u32,
    /// Separate (smaller) scale for triangle counting, whose
    /// intersection work grows as `m^1.5`.
    pub tc_graph_scale: u32,
    /// Kronecker degree.
    pub graph_degree: u32,
    /// Safety cap on DRAM cycles for trace runs.
    pub max_cycles: Cycle,
    /// GAP kernel size knobs.
    pub gap: GapConfig,
}

impl ExperimentScale {
    /// Figure-regeneration size (used by `cargo bench` and the `fig*`
    /// binaries). The graph's ~5 MB footprint is several times the
    /// GAP-scaled 1 MB LLC, keeping the kernels memory-bound as in the
    /// paper.
    pub fn full() -> Self {
        ExperimentScale {
            synth_us: 250.0,
            graph_scale: 16,
            tc_graph_scale: 14,
            graph_degree: 16,
            max_cycles: 400_000_000,
            gap: GapConfig {
                pr_iterations: 2,
                ..GapConfig::default()
            },
        }
    }

    /// Small size for tests.
    pub fn quick() -> Self {
        ExperimentScale {
            synth_us: 25.0,
            graph_scale: 9,
            tc_graph_scale: 8,
            graph_degree: 8,
            max_cycles: 10_000_000,
            gap: GapConfig {
                pr_iterations: 2,
                ..GapConfig::default()
            },
        }
    }

    /// The evaluation graph for GAP runs.
    pub fn build_graph(&self) -> Graph {
        Graph::kronecker(self.graph_scale, self.graph_degree, GRAPH_SEED)
    }

    /// The (smaller) evaluation graph for triangle counting.
    pub fn build_tc_graph(&self) -> Graph {
        Graph::kronecker(self.tc_graph_scale, self.graph_degree, GRAPH_SEED)
    }

    /// The graph a given kernel is evaluated on.
    pub fn graph_for(&self, kernel: GapKernel) -> Graph {
        if kernel == GapKernel::Tc {
            self.build_tc_graph()
        } else {
            self.build_graph()
        }
    }
}

const GRAPH_SEED: u64 = 0x6A9_2022;

/// Runs one synthetic configuration.
///
/// # Errors
///
/// Returns a [`ConfigError`] (e.g. zero cores) instead of panicking —
/// experiment drivers are the user-facing entry points.
pub fn run_synthetic(
    cores: usize,
    pattern: SyntheticPattern,
    policy: PagePolicy,
    mapping: MappingScheme,
    us: f64,
) -> Result<SimReport, ConfigError> {
    let mut cfg = SystemConfig::paper_default(cores);
    cfg.ctrl.page_policy = policy;
    cfg.ctrl.mapping = mapping;
    cfg.validate()?;
    Ok(Simulator::with_synthetic(cfg, pattern).run_for_us(us))
}

/// Runs one GAP kernel to completion.
///
/// # Errors
///
/// Returns a [`ConfigError`] for an invalid configuration.
#[allow(clippy::too_many_arguments)]
pub fn run_gap(
    kernel: GapKernel,
    graph: &Graph,
    cores: usize,
    policy: PagePolicy,
    mapping: MappingScheme,
    write_queue: usize,
    gap_cfg: &GapConfig,
    max_cycles: Cycle,
) -> Result<SimReport, ConfigError> {
    let mut cfg = SystemConfig::paper_gap(cores);
    cfg.ctrl.page_policy = policy;
    cfg.ctrl.mapping = mapping;
    cfg.ctrl = cfg.ctrl.with_write_queue(write_queue);
    // Finer sampling for the through-time figures (2 µs windows).
    cfg.sample_period = 2400;
    cfg.validate()?;
    let traces = kernel.trace(graph, cores, gap_cfg);
    Ok(Simulator::with_traces(cfg, traces).run_to_completion(max_cycles))
}

/// One bar of Figs. 2–4/6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthRow {
    /// Human-readable configuration label (e.g. `seq 4c`).
    pub label: String,
    /// Full simulation report (bandwidth + latency stacks inside).
    pub report: SimReport,
}

/// Fig. 2: read-only sequential/random, 1–8 cores.
///
/// # Errors
///
/// Returns the first [`ConfigError`] any run hit.
pub fn fig2(scale: &ExperimentScale) -> Result<Vec<SynthRow>, ConfigError> {
    let mut jobs = Vec::new();
    for (name, pattern) in [
        ("seq", SyntheticPattern::sequential(0.0)),
        ("rand", SyntheticPattern::random(0.0)),
    ] {
        for cores in [1usize, 2, 4, 8] {
            jobs.push((format!("{name} {cores}c"), cores, pattern));
        }
    }
    parallel::map(jobs, |(label, cores, pattern)| {
        run_synthetic(
            cores,
            pattern,
            PagePolicy::Open,
            MappingScheme::RowBankColumn,
            scale.synth_us,
        )
        .map(|report| SynthRow { label, report })
    })
    .into_iter()
    .collect()
}

/// Fig. 3: store fraction 0/10/20/50 % on one core.
///
/// # Errors
///
/// Returns the first [`ConfigError`] any run hit.
pub fn fig3(scale: &ExperimentScale) -> Result<Vec<SynthRow>, ConfigError> {
    let mut jobs = Vec::new();
    for name in ["seq", "rand"] {
        for pct in [0u32, 10, 20, 50] {
            let frac = f64::from(pct) / 100.0;
            let pattern = if name == "seq" {
                SyntheticPattern::sequential(frac)
            } else {
                SyntheticPattern::random(frac)
            };
            jobs.push((format!("{name} w{pct}"), pattern));
        }
    }
    parallel::map(jobs, |(label, pattern)| {
        run_synthetic(
            1,
            pattern,
            PagePolicy::Open,
            MappingScheme::RowBankColumn,
            scale.synth_us,
        )
        .map(|report| SynthRow { label, report })
    })
    .into_iter()
    .collect()
}

/// Fig. 4: open vs closed page policy, read-only, 2 cores.
///
/// # Errors
///
/// Returns the first [`ConfigError`] any run hit.
pub fn fig4(scale: &ExperimentScale) -> Result<Vec<SynthRow>, ConfigError> {
    let mut jobs = Vec::new();
    for (name, pattern) in [
        ("seq", SyntheticPattern::sequential(0.0)),
        ("rand", SyntheticPattern::random(0.0)),
    ] {
        for (pname, policy) in [("open", PagePolicy::Open), ("closed", PagePolicy::Closed)] {
            jobs.push((format!("{name} {pname}"), pattern, policy));
        }
    }
    parallel::map(jobs, |(label, pattern, policy)| {
        run_synthetic(
            2,
            pattern,
            policy,
            MappingScheme::RowBankColumn,
            scale.synth_us,
        )
        .map(|report| SynthRow { label, report })
    })
    .into_iter()
    .collect()
}

/// Fig. 6: default vs cache-line-interleaved indexing for the two
/// high-queueing cases.
///
/// # Errors
///
/// Returns the first [`ConfigError`] any run hit.
pub fn fig6(scale: &ExperimentScale) -> Result<Vec<SynthRow>, ConfigError> {
    let mut jobs = Vec::new();
    for (mname, mapping) in [
        ("def", MappingScheme::RowBankColumn),
        ("int", MappingScheme::CacheLineInterleaved),
    ] {
        // Case 1: sequential, 50 % stores, 1 core, open page.
        jobs.push((
            format!("seq w50 1c open {mname}"),
            1usize,
            SyntheticPattern::sequential(0.5),
            PagePolicy::Open,
            mapping,
        ));
        // Case 2: sequential, read-only, 2 cores, closed page.
        jobs.push((
            format!("seq w0 2c closed {mname}"),
            2usize,
            SyntheticPattern::sequential(0.0),
            PagePolicy::Closed,
            mapping,
        ));
    }
    parallel::map(jobs, |(label, cores, pattern, policy, mapping)| {
        run_synthetic(cores, pattern, policy, mapping, scale.synth_us)
            .map(|report| SynthRow { label, report })
    })
    .into_iter()
    .collect()
}

/// Fig. 7: through-time cycle/bandwidth/latency stacks for bfs on 8 cores
/// (closed page, as the paper uses for GAP).
///
/// # Errors
///
/// Returns a [`ConfigError`] for an invalid configuration.
pub fn fig7(scale: &ExperimentScale) -> Result<SimReport, ConfigError> {
    let g = scale.build_graph();
    run_gap(
        GapKernel::Bfs,
        &g,
        8,
        PagePolicy::Closed,
        MappingScheme::RowBankColumn,
        32,
        &scale.gap,
        scale.max_cycles,
    )
}

/// One bar of Fig. 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Configuration label (e.g. `bfs 8c closed def`).
    pub label: String,
    /// Aggregate latency stack.
    pub latency: LatencyStack,
    /// Achieved bandwidth (context for the latency numbers).
    pub achieved_gbps: f64,
    /// Read row-hit rate (the paper quotes 41 % vs 8 % for bfs def/int).
    pub page_hit_rate: f64,
}

/// Fig. 8: latency stacks for bfs 8c (default / interleaved / 128-entry
/// write queue) and tc 1c (default / interleaved, closed page; plus the
/// open-page variant the text mentions).
///
/// # Errors
///
/// Returns the first [`ConfigError`] any run hit.
pub fn fig8(scale: &ExperimentScale) -> Result<Vec<Fig8Row>, ConfigError> {
    let g = scale.build_graph();
    let g_tc = scale.build_tc_graph();
    type Job = (
        &'static str,
        GapKernel,
        usize,
        PagePolicy,
        MappingScheme,
        usize,
    );
    let jobs: Vec<Job> = vec![
        (
            "bfs 8c closed def",
            GapKernel::Bfs,
            8,
            PagePolicy::Closed,
            MappingScheme::RowBankColumn,
            32,
        ),
        (
            "bfs 8c closed int",
            GapKernel::Bfs,
            8,
            PagePolicy::Closed,
            MappingScheme::CacheLineInterleaved,
            32,
        ),
        (
            "bfs 8c closed wq128",
            GapKernel::Bfs,
            8,
            PagePolicy::Closed,
            MappingScheme::RowBankColumn,
            128,
        ),
        (
            "tc 1c closed def",
            GapKernel::Tc,
            1,
            PagePolicy::Closed,
            MappingScheme::RowBankColumn,
            32,
        ),
        (
            "tc 1c closed int",
            GapKernel::Tc,
            1,
            PagePolicy::Closed,
            MappingScheme::CacheLineInterleaved,
            32,
        ),
        (
            "tc 1c open def",
            GapKernel::Tc,
            1,
            PagePolicy::Open,
            MappingScheme::RowBankColumn,
            32,
        ),
    ];
    parallel::map(jobs, |(label, kernel, cores, policy, mapping, wq)| {
        let graph = if kernel == GapKernel::Tc { &g_tc } else { &g };
        run_gap(
            kernel,
            graph,
            cores,
            policy,
            mapping,
            wq,
            &scale.gap,
            scale.max_cycles,
        )
        .map(|r| Fig8Row {
            label: label.to_string(),
            latency: r.latency_stack,
            achieved_gbps: r.achieved_gbps(),
            page_hit_rate: r.ctrl_stats.page_hit_rate(),
        })
    })
    .into_iter()
    .collect()
}

/// One point of a configuration sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Pattern name (`seq`/`rand`).
    pub pattern: String,
    /// Core count.
    pub cores: usize,
    /// Page policy.
    pub policy: PagePolicy,
    /// Address mapping.
    pub mapping: MappingScheme,
    /// The run's report.
    pub report: SimReport,
}

/// Sweeps the cross product of cores × policies × mappings for both
/// synthetic patterns — the grid behind "which configuration is best for
/// this workload?" questions. Runs `len(cores) × len(policies) ×
/// len(mappings) × 2` simulations.
///
/// # Errors
///
/// Every grid point is validated *before* the parallel fan-out, so a bad
/// sweep axis (e.g. zero cores) fails fast with a [`ConfigError`] instead
/// of burning worker time first.
pub fn sweep_synthetic(
    cores: &[usize],
    policies: &[PagePolicy],
    mappings: &[MappingScheme],
    store_fraction: f64,
    us: f64,
) -> Result<Vec<SweepPoint>, ConfigError> {
    for &n in cores {
        SystemConfig::paper_default(n).validate()?;
    }
    let mut jobs = Vec::new();
    for (name, pattern) in [
        ("seq", SyntheticPattern::sequential(store_fraction)),
        ("rand", SyntheticPattern::random(store_fraction)),
    ] {
        for &n in cores {
            for &policy in policies {
                for &mapping in mappings {
                    jobs.push((name, pattern, n, policy, mapping));
                }
            }
        }
    }
    parallel::map(jobs, |(name, pattern, n, policy, mapping)| {
        run_synthetic(n, pattern, policy, mapping, us).map(|report| SweepPoint {
            pattern: name.to_string(),
            cores: n,
            policy,
            mapping,
            report,
        })
    })
    .into_iter()
    .collect()
}

/// Checkpoint policy for [`sweep_synthetic_supervised`] grid points.
///
/// `every == 0` disables checkpointing even when a [`Campaign`] is
/// attached. `format`/`delta` pick the on-disk chain layout; deltas are
/// only meaningful for [`SnapshotFormat::Binary`] and are silently
/// ignored for JSON (which always writes full snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCheckpointing {
    /// Checkpoint every this many DRAM cycles (`0` disables).
    pub every: Cycle,
    /// On-disk snapshot encoding for checkpoint files.
    pub format: SnapshotFormat,
    /// Serialize periodic checkpoints as deltas against the last base.
    pub delta: bool,
}

impl SweepCheckpointing {
    /// Checkpointing disabled.
    pub fn off() -> Self {
        Self {
            every: 0,
            format: SnapshotFormat::Binary,
            delta: true,
        }
    }

    /// Binary delta chain every `every` cycles — the fast default.
    pub fn every(every: Cycle) -> Self {
        Self {
            every,
            format: SnapshotFormat::Binary,
            delta: true,
        }
    }
}

/// Fault-injection knobs for [`sweep_synthetic_supervised`] — the chaos
/// half of the crash-safety harness, proving panic isolation and the
/// watchdog end to end (CI runs a sweep with one of each injected).
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepInjection {
    /// Panic inside the grid point with this input-order index.
    pub panic_at: Option<usize>,
    /// Hang (sleep forever, never pulse) inside this grid point.
    pub hang_at: Option<usize>,
}

/// Outcome of a supervised, optionally campaign-backed sweep.
#[derive(Debug)]
pub struct SupervisedSweep {
    /// One slot per grid point in input order; `None` where the job was
    /// lost to a panic or watchdog kill.
    pub points: Vec<Option<SweepPoint>>,
    /// Grid points loaded from the campaign manifest instead of re-run.
    pub skipped: usize,
    /// Typed failure report (indices are grid input-order positions).
    pub failures: parallel::SweepFailures,
}

#[derive(Clone)]
struct SweepJob {
    grid_idx: usize,
    name: String,
    pattern: SyntheticPattern,
    cores: usize,
    policy: PagePolicy,
    mapping: MappingScheme,
    cfg: SystemConfig,
    key: String,
    label: String,
}

/// [`sweep_synthetic`] hardened for long campaigns: every grid point
/// runs under [`parallel::supervised_map`] (panic isolation, watchdog,
/// bounded retry), and with a [`Campaign`] attached the sweep becomes
/// resumable — with `resume` set, finished points are loaded from the
/// manifest instead of re-run and interrupted points restore from their
/// latest checkpoint; either way, in-flight points checkpoint every
/// `ckpt.every` cycles — binary delta chains by default, see
/// [`SweepCheckpointing`] — and completions are recorded incrementally.
///
/// Never panics and never loses healthy results: the returned
/// [`SupervisedSweep`] carries every completed point in input order plus
/// a typed failure report for the rest.
///
/// # Errors
///
/// Like [`sweep_synthetic`], the grid is validated before any fan-out.
#[allow(clippy::too_many_arguments)]
pub fn sweep_synthetic_supervised(
    cores: &[usize],
    policies: &[PagePolicy],
    mappings: &[MappingScheme],
    store_fraction: f64,
    us: f64,
    campaign: Option<&Campaign>,
    ckpt: SweepCheckpointing,
    resume: bool,
    sup: &parallel::SupervisorConfig,
    inject: SweepInjection,
) -> Result<SupervisedSweep, ConfigError> {
    for &n in cores {
        SystemConfig::paper_default(n).validate()?;
    }
    let mut grid = Vec::new();
    for (name, pattern) in [
        ("seq", SyntheticPattern::sequential(store_fraction)),
        ("rand", SyntheticPattern::random(store_fraction)),
    ] {
        for &n in cores {
            for &policy in policies {
                for &mapping in mappings {
                    let mut cfg = SystemConfig::paper_default(n);
                    cfg.ctrl.page_policy = policy;
                    cfg.ctrl.mapping = mapping;
                    cfg.validate()?;
                    // The key must pin everything that shapes the result:
                    // the config hash covers cores/policy/mapping, the
                    // label adds pattern, duration and store mix.
                    let label =
                        format!("{name}-{n}c-{policy:?}-{mapping:?}-{us}us-{store_fraction}st");
                    let key = job_key(&cfg, &label);
                    grid.push(SweepJob {
                        grid_idx: grid.len(),
                        name: name.to_string(),
                        pattern,
                        cores: n,
                        policy,
                        mapping,
                        cfg,
                        key,
                        label,
                    });
                }
            }
        }
    }

    let mut points: Vec<Option<SweepPoint>> = vec![None; grid.len()];
    let mut skipped = 0usize;
    let mut pending = Vec::new();
    for job in grid {
        let recorded = if resume {
            campaign.and_then(|c| c.load_report(&job.key).ok().flatten())
        } else {
            None
        };
        match recorded {
            Some(report) => {
                points[job.grid_idx] = Some(SweepPoint {
                    pattern: job.name,
                    cores: job.cores,
                    policy: job.policy,
                    mapping: job.mapping,
                    report,
                });
                skipped += 1;
            }
            None => pending.push(job),
        }
    }

    let campaign = campaign.cloned();
    let pending_indices: Vec<usize> = pending.iter().map(|j| j.grid_idx).collect();
    let outcome = parallel::supervised_map(pending, sup, move |pulse, job: SweepJob| {
        if crate::ckpt::interrupted() {
            // A termination request landed before this point started (or
            // this is the supervisor retrying a point that aborted on the
            // request). Die before touching the chain on disk: starting
            // over would overwrite the deeper checkpoint already flushed.
            panic!("termination requested before job {} started", job.grid_idx);
        }
        if inject.panic_at == Some(job.grid_idx) {
            panic!("injected panic in sweep job {}", job.grid_idx);
        }
        if inject.hang_at == Some(job.grid_idx) {
            loop {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        }
        let mut sim = Simulator::with_synthetic(job.cfg.clone(), job.pattern);
        let end = job.cfg.us_to_cycles(us);
        if resume {
            // Resume an interrupted point from the deepest checkpoint we
            // can reconstruct — binary base + delta chain first, then the
            // legacy JSON snapshot; a stale or incompatible checkpoint
            // just restarts the point.
            if let Some(c) = &campaign {
                if let Some(loaded) = c.load_checkpoint_latest(&job.key) {
                    let _ = sim.restore(&loaded.snapshot);
                }
            }
        }
        let report = match &campaign {
            Some(c) if ckpt.every > 0 => {
                let mut chain = c
                    .open_chain(&job.key, ckpt.format, ckpt.delta)
                    .expect("campaign checkpoint dir is writable");
                // Manual boundary loop rather than `advance_checkpointed`:
                // delta capture needs `&mut Simulator` to advance its
                // dirty-tracking marks, which the `&Snapshot` callback
                // can't provide. Boundaries land on exact multiples of
                // `every`, so results stay bit-identical either way.
                let every = ckpt.every;
                let mut next = (sim.now() / every + 1) * every;
                while sim.now() < end {
                    sim.advance_to_cycle(end.min(next));
                    if crate::ckpt::interrupted() {
                        // Termination request (the CLI's SIGTERM handler
                        // sets the flag): flush one final checkpoint so
                        // `--resume` continues from right here, then
                        // abort through the supervisor's panic isolation
                        // — an interrupted point must never be recorded
                        // as done in the manifest.
                        let _ = chain.checkpoint(&mut sim);
                        let _ = chain.finish();
                        panic!("termination requested: checkpointed at cycle {}", sim.now());
                    }
                    if sim.now() == next {
                        pulse.set_progress(sim.now());
                        let _ = chain.checkpoint(&mut sim);
                        next += every;
                    }
                }
                // Surface nothing: a checkpoint I/O failure must not take
                // down a healthy grid point, the report is still good.
                let _ = chain.finish();
                sim.report()
            }
            _ => {
                sim.advance_to_cycle(end);
                pulse.set_progress(end);
                sim.report()
            }
        };
        if let Some(c) = &campaign {
            let _ = c.record_done(&job.key, &job.label, &report);
        }
        SweepPoint {
            pattern: job.name,
            cores: job.cores,
            policy: job.policy,
            mapping: job.mapping,
            report,
        }
    });

    let mut failures = parallel::SweepFailures::default();
    for (outcome, grid_idx) in outcome.outcomes.into_iter().zip(pending_indices) {
        match outcome {
            parallel::JobOutcome::Ok(p) => points[grid_idx] = Some(p),
            parallel::JobOutcome::Retried { result, attempts } => {
                points[grid_idx] = Some(result);
                failures.retried.push((grid_idx, attempts));
            }
            parallel::JobOutcome::Panicked { message, .. } => {
                failures.panicked.push((grid_idx, message));
            }
            parallel::JobOutcome::TimedOut { .. } => failures.timed_out.push(grid_idx),
        }
    }
    Ok(SupervisedSweep {
        points,
        skipped,
        failures,
    })
}

/// The sweep point with the highest achieved bandwidth for a pattern.
pub fn best_of<'a>(points: &'a [SweepPoint], pattern: &str) -> Option<&'a SweepPoint> {
    points
        .iter()
        .filter(|p| p.pattern == pattern)
        .max_by(|a, b| {
            a.report
                .achieved_gbps()
                .partial_cmp(&b.report.achieved_gbps())
                .expect("bandwidths are finite")
        })
}

/// One bar group of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Kernel.
    pub kernel: GapKernel,
    /// Measured 8-core bandwidth (GB/s).
    pub measured_8c: f64,
    /// Naive 1c→8c prediction (GB/s).
    pub naive: f64,
    /// Stack-based 1c→8c prediction (GB/s).
    pub stack: f64,
}

impl Fig9Row {
    /// Relative error of the naive prediction.
    pub fn naive_error(&self) -> f64 {
        (self.naive - self.measured_8c).abs() / self.measured_8c
    }

    /// Relative error of the stack-based prediction.
    pub fn stack_error(&self) -> f64 {
        (self.stack - self.measured_8c).abs() / self.measured_8c
    }
}

/// Fig. 9: measured vs extrapolated 8-core bandwidth for the GAP kernels.
/// (tc runs with the open policy, the others closed, per Section VIII.)
///
/// # Errors
///
/// Returns the first [`ConfigError`] any run hit.
pub fn fig9(scale: &ExperimentScale) -> Result<Vec<Fig9Row>, ConfigError> {
    parallel::map(GapKernel::ALL.to_vec(), |k| fig9_kernel(k, scale))
        .into_iter()
        .collect()
}

/// One kernel of Fig. 9 (usable alone for quick checks).
///
/// # Errors
///
/// Returns a [`ConfigError`] for an invalid configuration.
pub fn fig9_kernel(kernel: GapKernel, scale: &ExperimentScale) -> Result<Fig9Row, ConfigError> {
    let g = scale.graph_for(kernel);
    let policy = if kernel == GapKernel::Tc {
        PagePolicy::Open
    } else {
        PagePolicy::Closed
    };
    let mut reports = parallel::map(vec![1usize, 8], |cores| {
        run_gap(
            kernel,
            &g,
            cores,
            policy,
            MappingScheme::RowBankColumn,
            32,
            &scale.gap,
            scale.max_cycles,
        )
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let eight = reports.pop().expect("8-core run");
    let one = reports.pop().expect("1-core run");
    let samples: Vec<_> = one.samples.iter().map(|s| s.bandwidth.clone()).collect();
    Ok(Fig9Row {
        kernel,
        measured_8c: eight.achieved_gbps(),
        naive: predict_bandwidth_naive(&samples, 8.0),
        stack: predict_bandwidth_stack(&samples, 8.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_core::BwComponent;

    #[test]
    fn fig2_shapes_hold_at_quick_scale() {
        let scale = ExperimentScale::quick();
        let rows = fig2(&scale).unwrap();
        assert_eq!(rows.len(), 8);
        let bw = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .unwrap()
                .report
                .achieved_gbps()
        };
        // Sequential beats random at every core count.
        for c in [1, 2, 4, 8] {
            assert!(
                bw(&format!("seq {c}c")) > bw(&format!("rand {c}c")),
                "seq vs rand at {c} cores"
            );
        }
        // Bandwidth grows with cores.
        assert!(bw("seq 4c") > 1.5 * bw("seq 1c"));
        assert!(bw("rand 8c") > bw("rand 1c"));
    }

    #[test]
    fn fig9_single_kernel_predictions_are_sane() {
        let scale = ExperimentScale::quick();
        let row = fig9_kernel(GapKernel::Cc, &scale).unwrap();
        assert!(row.measured_8c > 0.0);
        assert!(row.naive > 0.0);
        assert!(row.stack > 0.0);
        assert!(
            row.stack <= row.naive + 1e-9,
            "stack prediction never exceeds naive"
        );
    }

    #[test]
    fn sweep_covers_the_grid_and_best_of_picks_sanely() {
        let points = sweep_synthetic(
            &[1, 2],
            &[PagePolicy::Open, PagePolicy::Closed],
            &[MappingScheme::RowBankColumn],
            0.0,
            5.0,
        )
        .unwrap();
        assert_eq!(points.len(), 2 * 2 * 2);
        let best_seq = best_of(&points, "seq").unwrap();
        // For the read-only sequential pattern the open policy wins.
        assert_eq!(best_seq.policy, PagePolicy::Open);
        assert_eq!(best_seq.cores, 2);
        assert!(best_of(&points, "nope").is_none());
    }

    #[test]
    fn parallel_sweep_matches_serial_order_and_results() {
        // The sweep fans out over worker threads; results must be
        // bit-identical to an inline serial loop over the same grid, in
        // the same order (modulo `perf`, which records wall-clock time).
        let points = sweep_synthetic(
            &[1, 2],
            &[PagePolicy::Open],
            &[MappingScheme::RowBankColumn],
            0.0,
            5.0,
        )
        .unwrap();
        let mut expect = Vec::new();
        for (name, pattern) in [
            ("seq", SyntheticPattern::sequential(0.0)),
            ("rand", SyntheticPattern::random(0.0)),
        ] {
            for n in [1usize, 2] {
                let report = run_synthetic(
                    n,
                    pattern,
                    PagePolicy::Open,
                    MappingScheme::RowBankColumn,
                    5.0,
                )
                .unwrap();
                expect.push((name, n, report.strip_perf()));
            }
        }
        assert_eq!(points.len(), expect.len());
        for (p, (name, n, r)) in points.iter().zip(&expect) {
            assert_eq!(&p.pattern, name);
            assert_eq!(p.cores, *n);
            assert_eq!(&p.report.strip_perf(), r);
        }
    }

    #[test]
    fn invalid_configurations_fail_fast_with_typed_errors() {
        // A zero-core sweep axis is rejected before any worker spawns.
        let e = sweep_synthetic(
            &[0],
            &[PagePolicy::Open],
            &[MappingScheme::RowBankColumn],
            0.0,
            1.0,
        )
        .unwrap_err();
        assert_eq!(e, ConfigError::NoCores);
        assert!(run_synthetic(
            0,
            SyntheticPattern::sequential(0.0),
            PagePolicy::Open,
            MappingScheme::RowBankColumn,
            1.0,
        )
        .is_err());
    }

    #[test]
    fn random_pattern_has_preact_component() {
        let scale = ExperimentScale::quick();
        let r = run_synthetic(
            1,
            SyntheticPattern::random(0.0),
            PagePolicy::Open,
            MappingScheme::RowBankColumn,
            scale.synth_us,
        )
        .unwrap();
        let preact = r.bandwidth_stack.gbps(BwComponent::Precharge)
            + r.bandwidth_stack.gbps(BwComponent::Activate);
        assert!(preact > 0.1, "random pattern must show pre/act: {preact}");
        // Sequential has essentially none.
        let s = run_synthetic(
            1,
            SyntheticPattern::sequential(0.0),
            PagePolicy::Open,
            MappingScheme::RowBankColumn,
            scale.synth_us,
        )
        .unwrap();
        let s_preact = s.bandwidth_stack.gbps(BwComponent::Precharge)
            + s.bandwidth_stack.gbps(BwComponent::Activate);
        assert!(s_preact < preact, "seq {s_preact} < rand {preact}");
        assert!(s.ctrl_stats.read_hit_rate() > 0.9, "sequential page hits");
    }
}
