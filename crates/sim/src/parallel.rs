//! A minimal scoped-thread work-queue for running independent
//! simulations in parallel, plus a supervised variant for crash-safe
//! sweeps.
//!
//! Every figure driver in [`crate::experiments`] is a map over an
//! embarrassingly parallel job list: each job builds its own
//! [`Simulator`](crate::Simulator), so jobs share no mutable state.
//! [`map`] fans such a list out over `std::thread::scope` workers pulling
//! from a shared queue, and writes each result into the slot matching its
//! input index — the output order is always the input order, independent
//! of scheduling, so parallel sweeps are bit-identical to serial ones.
//! Each job runs under `catch_unwind`, so one panicking job never loses
//! its siblings' finished slots: the map completes every job first and
//! re-raises the first panic when the scope joins.
//!
//! [`supervised_map`] is the crash-safe variant for long campaigns: jobs
//! run on detached attempt threads under a per-job watchdog (wall-clock
//! deadline, no-progress stall detection via [`JobPulse`], optional
//! progress budget), panicking jobs are retried with exponential backoff,
//! hung jobs are abandoned, and the sweep always returns — every healthy
//! result in input order plus a typed [`JobOutcome`] for each failure.
//!
//! No thread pool or external dependencies: threads live for one call
//! (abandoned attempt threads for at most their job's lifetime), the
//! queue is a mutexed counter, and mutex poisoning is recovered via
//! [`PoisonError::into_inner`] — a panic elsewhere never turns into a
//! second panic here.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Default worker count: the `DRAMSTACK_THREADS` environment variable
/// when set to a positive integer, otherwise the machine's available
/// parallelism (1 if unknown).
pub fn available_threads() -> usize {
    if let Ok(v) = std::env::var("DRAMSTACK_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`available_threads`] workers, preserving
/// input order in the output.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    map_with_threads(items, available_threads(), f)
}

/// Maps `f` over `items` on at most `threads` workers, preserving input
/// order in the output. `threads <= 1` (or a single item) runs serially
/// on the calling thread.
///
/// A panicking job does not abort the map: every other job still runs to
/// completion, then the first panic (in input order) is re-raised on the
/// caller. Use [`supervised_map`] to capture panics as values instead.
pub fn map_with_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    type Caught<R> = Result<R, Box<dyn Any + Send>>;
    let queue: Mutex<std::vec::IntoIter<T>> = Mutex::new(items.into_iter());
    let next_index = Mutex::new(0usize);
    let slots: Vec<Mutex<Option<Caught<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Pop the next (index, item) pair under one critical
                // section so indices and items stay in lock-step.
                let (idx, item) = {
                    let mut iter = queue.lock().unwrap_or_else(PoisonError::into_inner);
                    let Some(item) = iter.next() else {
                        return;
                    };
                    let mut ni = next_index.lock().unwrap_or_else(PoisonError::into_inner);
                    let idx = *ni;
                    *ni += 1;
                    (idx, item)
                };
                let result = catch_unwind(AssertUnwindSafe(|| f(item)));
                *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    let mut results = Vec::with_capacity(n);
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    for s in slots {
        match s
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .expect("every job ran exactly once")
        {
            Ok(r) => results.push(r),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    results
}

/// Liveness/progress signal handed to each supervised job.
///
/// The watchdog in [`supervised_map`] reads it between polls: call
/// [`beat`](Self::beat) (or [`set_progress`](Self::set_progress)) from
/// inside long-running work so a stall timeout can distinguish "slow but
/// alive" from "hung". A job that never pulses is still covered by the
/// wall-clock deadline.
#[derive(Debug, Clone, Default)]
pub struct JobPulse {
    inner: Arc<PulseInner>,
}

#[derive(Debug, Default)]
struct PulseInner {
    beats: AtomicU64,
    progress: AtomicU64,
}

impl JobPulse {
    /// Signals "still alive".
    pub fn beat(&self) {
        self.inner.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Reports absolute progress (e.g. simulated cycles) and beats.
    pub fn set_progress(&self, units: u64) {
        self.inner.progress.store(units, Ordering::Relaxed);
        self.beat();
    }

    /// Total beats observed so far.
    pub fn beats(&self) -> u64 {
        self.inner.beats.load(Ordering::Relaxed)
    }

    /// Latest reported progress value.
    pub fn progress(&self) -> u64 {
        self.inner.progress.load(Ordering::Relaxed)
    }
}

/// Watchdog and retry policy for [`supervised_map`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker threads (`0` ⇒ [`available_threads`]).
    pub threads: usize,
    /// Per-attempt wall-clock deadline; `None` disables it.
    pub deadline: Option<Duration>,
    /// No-progress watchdog: an attempt whose [`JobPulse`] does not beat
    /// for this long is declared hung. Only enable for jobs that pulse.
    pub stall_timeout: Option<Duration>,
    /// Progress ceiling (in [`JobPulse::set_progress`] units, e.g.
    /// simulated cycles): an attempt reporting more than this is declared
    /// runaway and killed like a hang. `None` disables it.
    pub progress_budget: Option<u64>,
    /// Extra attempts after a panicking first attempt (hangs are never
    /// retried — the stuck thread is abandoned, not recovered).
    pub max_retries: u32,
    /// Base backoff slept before retry `k` (doubled per attempt).
    pub retry_backoff: Duration,
    /// Watchdog poll interval.
    pub poll: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            threads: 0,
            deadline: None,
            stall_timeout: None,
            progress_budget: None,
            max_retries: 0,
            retry_backoff: Duration::from_millis(50),
            poll: Duration::from_millis(20),
        }
    }
}

/// What became of one supervised job.
#[derive(Debug)]
pub enum JobOutcome<R> {
    /// Finished on the first attempt.
    Ok(R),
    /// Finished after one or more panicking attempts.
    Retried {
        /// The successful attempt's result.
        result: R,
        /// Total attempts spent (≥ 2).
        attempts: u32,
    },
    /// Every attempt panicked; the last panic message is kept.
    Panicked {
        /// Panic payload rendered as text.
        message: String,
        /// Total attempts spent.
        attempts: u32,
    },
    /// The attempt hit the deadline, stalled, or blew the progress
    /// budget; its thread was abandoned.
    TimedOut {
        /// Wall-clock time spent waiting on the final attempt.
        waited: Duration,
        /// Total attempts spent.
        attempts: u32,
    },
}

impl<R> JobOutcome<R> {
    /// The result, if the job produced one.
    pub fn result(&self) -> Option<&R> {
        match self {
            JobOutcome::Ok(r) | JobOutcome::Retried { result: r, .. } => Some(r),
            _ => None,
        }
    }

    /// Consumes the outcome into its result, if any.
    pub fn into_result(self) -> Option<R> {
        match self {
            JobOutcome::Ok(r) | JobOutcome::Retried { result: r, .. } => Some(r),
            _ => None,
        }
    }

    /// Whether the job produced a result (first try or retried).
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_) | JobOutcome::Retried { .. })
    }
}

/// Failure summary of a supervised sweep, indexed by input position.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepFailures {
    /// Jobs whose every attempt panicked: `(input index, panic message)`.
    pub panicked: Vec<(usize, String)>,
    /// Jobs abandoned by the watchdog: input indices.
    pub timed_out: Vec<usize>,
    /// Jobs that succeeded only after retries: `(input index, attempts)`.
    pub retried: Vec<(usize, u32)>,
}

impl SweepFailures {
    /// True when no job was lost (retried-but-successful jobs don't
    /// count as losses).
    pub fn none_lost(&self) -> bool {
        self.panicked.is_empty() && self.timed_out.is_empty()
    }
}

impl std::fmt::Display for SweepFailures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} panicked, {} timed out, {} retried",
            self.panicked.len(),
            self.timed_out.len(),
            self.retried.len()
        )
    }
}

/// Everything a supervised sweep produced: one [`JobOutcome`] per input
/// item, in input order.
#[derive(Debug)]
pub struct SweepOutcome<R> {
    /// Per-job outcomes, index-aligned with the input.
    pub outcomes: Vec<JobOutcome<R>>,
}

impl<R> SweepOutcome<R> {
    /// Builds the failure summary.
    pub fn failures(&self) -> SweepFailures {
        let mut f = SweepFailures::default();
        for (i, o) in self.outcomes.iter().enumerate() {
            match o {
                JobOutcome::Ok(_) => {}
                JobOutcome::Retried { attempts, .. } => f.retried.push((i, *attempts)),
                JobOutcome::Panicked { message, .. } => f.panicked.push((i, message.clone())),
                JobOutcome::TimedOut { .. } => f.timed_out.push(i),
            }
        }
        f
    }

    /// Whether every job produced a result.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(JobOutcome::is_ok)
    }

    /// Salvages the sweep: every completed slot (in input order, `None`
    /// where the job was lost) plus the failure report.
    pub fn salvage(self) -> (Vec<Option<R>>, SweepFailures) {
        let failures = self.failures();
        let results = self
            .outcomes
            .into_iter()
            .map(JobOutcome::into_result)
            .collect();
        (results, failures)
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `items` with per-job panic isolation, watchdog
/// supervision and bounded retry; never panics and never loses a slot.
///
/// Each attempt runs on a *detached* thread feeding a channel, so a hung
/// attempt can be abandoned (the thread is leaked by design — it holds
/// only its own simulator) while the supervisor moves on. Panics inside
/// `f` are caught and retried up to `cfg.max_retries` times with
/// exponential backoff; watchdog kills (deadline / stall / progress
/// budget) are terminal for that job. Results come back in input order
/// as [`JobOutcome`]s. Panic messages from failed attempts still reach
/// stderr via the default panic hook, which keeps crash forensics in the
/// captured logs.
///
/// `T: Clone` is required so a panicked job's input survives for retry;
/// the `'static` bounds let attempt threads outlive the call when
/// abandoned.
pub fn supervised_map<T, R, F>(items: Vec<T>, cfg: &SupervisorConfig, f: F) -> SweepOutcome<R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(JobPulse, T) -> R + Send + Sync + 'static,
{
    let n = items.len();
    if n == 0 {
        return SweepOutcome {
            outcomes: Vec::new(),
        };
    }
    let threads = if cfg.threads == 0 {
        available_threads()
    } else {
        cfg.threads
    };
    let workers = threads.min(n).max(1);
    let f = Arc::new(f);
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<JobOutcome<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let (idx, item) = {
                    let mut q = queue.lock().unwrap_or_else(PoisonError::into_inner);
                    match q.pop_front() {
                        Some(job) => job,
                        None => return,
                    }
                };
                let outcome = supervise_one(cfg, &f, item);
                *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
            });
        }
    });
    let outcomes = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or(JobOutcome::Panicked {
                    message: "supervisor lost the job".to_string(),
                    attempts: 0,
                })
        })
        .collect();
    SweepOutcome { outcomes }
}

/// Supervises a single job: same panic isolation, watchdog and retry
/// machinery as [`supervised_map`], for callers that schedule jobs one
/// at a time (e.g. a long-running service worker pool). The calling
/// thread blocks until the job reaches a terminal [`JobOutcome`]; the
/// attempt itself runs detached so a hang can be abandoned.
pub fn supervise<T, R, F>(cfg: &SupervisorConfig, item: T, f: F) -> JobOutcome<R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(JobPulse, T) -> R + Send + Sync + 'static,
{
    supervise_one(cfg, &Arc::new(f), item)
}

/// Runs one job to a terminal [`JobOutcome`]: attempt loop with retry
/// for panics, watchdog kill for hangs.
fn supervise_one<T, R, F>(cfg: &SupervisorConfig, f: &Arc<F>, item: T) -> JobOutcome<R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(JobPulse, T) -> R + Send + Sync + 'static,
{
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let pulse = JobPulse::default();
        let (tx, rx) = mpsc::channel::<Result<R, String>>();
        {
            let f = Arc::clone(f);
            let item = item.clone();
            let job_pulse = pulse.clone();
            // Detached on purpose: a hung attempt must be abandonable.
            std::thread::spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| f(job_pulse, item)));
                let _ = tx.send(result.map_err(|p| panic_message(p.as_ref())));
            });
        }
        let attempt_start = Instant::now();
        let mut last_beat = pulse.beats();
        let mut last_change = Instant::now();
        // The watchdog: poll the channel, checking liveness in between.
        let verdict: Option<Result<R, String>> = loop {
            match rx.recv_timeout(cfg.poll) {
                Ok(res) => break Some(res),
                Err(RecvTimeoutError::Disconnected) => {
                    break Some(Err("job thread died without reporting".to_string()));
                }
                Err(RecvTimeoutError::Timeout) => {
                    let beats = pulse.beats();
                    if beats != last_beat {
                        last_beat = beats;
                        last_change = Instant::now();
                    }
                    let dead = cfg.deadline.is_some_and(|d| attempt_start.elapsed() >= d)
                        || cfg
                            .stall_timeout
                            .is_some_and(|s| last_change.elapsed() >= s)
                        || cfg.progress_budget.is_some_and(|b| pulse.progress() > b);
                    if dead {
                        break None;
                    }
                }
            }
        };
        match verdict {
            None => {
                return JobOutcome::TimedOut {
                    waited: attempt_start.elapsed(),
                    attempts,
                };
            }
            Some(Ok(result)) => {
                return if attempts == 1 {
                    JobOutcome::Ok(result)
                } else {
                    JobOutcome::Retried { result, attempts }
                };
            }
            Some(Err(message)) => {
                if attempts > cfg.max_retries {
                    return JobOutcome::Panicked { message, attempts };
                }
                let exp = (attempts - 1).min(16);
                std::thread::sleep(cfg.retry_backoff.saturating_mul(1 << exp));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parallel_map_matches_serial_and_preserves_order() {
        let items: Vec<u64> = (0..57).collect();
        let serial = map_with_threads(items.clone(), 1, |x| x * x + 1);
        let parallel = map_with_threads(items, 4, |x| x * x + 1);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[10], 101);
    }

    #[test]
    fn uneven_job_durations_do_not_reorder_results() {
        // Early jobs sleep longest, so later jobs finish first; the
        // output must still be in input order.
        let items: Vec<u64> = (0..16).collect();
        let out = map_with_threads(items, 8, |x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = map_with_threads(vec![1, 2, 3], 64, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with_threads(empty, 4, |x| x).is_empty());
        assert_eq!(map_with_threads(vec![7], 4, |x| x * 2), vec![14]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn map_panic_completes_siblings_then_propagates() {
        let completed = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&completed);
        let result = catch_unwind(AssertUnwindSafe(|| {
            map_with_threads((0..8).collect::<Vec<u32>>(), 4, move |x| {
                if x == 3 {
                    panic!("job 3 exploded");
                }
                c.fetch_add(1, Ordering::SeqCst);
                x
            })
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // Every non-panicking job still ran to completion.
        assert_eq!(completed.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn supervised_map_isolates_panics_and_keeps_order() {
        let cfg = SupervisorConfig::default();
        let out = supervised_map((0..10u64).collect(), &cfg, |_pulse, x| {
            if x == 4 {
                panic!("injected panic in job {x}");
            }
            x * 2
        });
        assert_eq!(out.outcomes.len(), 10);
        let failures = out.failures();
        assert_eq!(failures.panicked.len(), 1);
        assert_eq!(failures.panicked[0].0, 4);
        assert!(failures.panicked[0].1.contains("injected panic"));
        assert!(failures.timed_out.is_empty());
        let (results, _) = out.salvage();
        for (i, r) in results.iter().enumerate() {
            if i == 4 {
                assert!(r.is_none());
            } else {
                assert_eq!(*r, Some(i as u64 * 2));
            }
        }
    }

    #[test]
    fn supervised_map_times_out_hung_jobs_and_salvages_the_rest() {
        let cfg = SupervisorConfig {
            threads: 4,
            deadline: Some(Duration::from_millis(150)),
            poll: Duration::from_millis(10),
            ..SupervisorConfig::default()
        };
        let out = supervised_map((0..6u64).collect(), &cfg, |_pulse, x| {
            if x == 2 {
                // Hang well past the deadline; the thread is abandoned.
                std::thread::sleep(Duration::from_secs(30));
            }
            x + 100
        });
        let failures = out.failures();
        assert_eq!(failures.timed_out, vec![2]);
        assert!(failures.panicked.is_empty());
        let (results, _) = out.salvage();
        assert_eq!(results[0], Some(100));
        assert_eq!(results[2], None);
        assert_eq!(results[5], Some(105));
    }

    #[test]
    fn supervised_map_retries_panics_with_backoff() {
        let tries = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&tries);
        let cfg = SupervisorConfig {
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            ..SupervisorConfig::default()
        };
        let out = supervised_map(vec![1u32], &cfg, move |_pulse, x| {
            // Fail the first two attempts, succeed on the third.
            if t.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("flaky");
            }
            x * 10
        });
        match &out.outcomes[0] {
            JobOutcome::Retried { result, attempts } => {
                assert_eq!(*result, 10);
                assert_eq!(*attempts, 3);
            }
            other => panic!("expected Retried, got {other:?}"),
        }
        assert_eq!(out.failures().retried, vec![(0, 3)]);
    }

    #[test]
    fn stall_watchdog_kills_jobs_that_stop_pulsing() {
        let cfg = SupervisorConfig {
            stall_timeout: Some(Duration::from_millis(120)),
            poll: Duration::from_millis(10),
            ..SupervisorConfig::default()
        };
        let out = supervised_map(vec![0u32, 1], &cfg, |pulse, x| {
            if x == 1 {
                // Pulse for a while, then go silent (a livelock).
                for _ in 0..5 {
                    pulse.beat();
                    std::thread::sleep(Duration::from_millis(10));
                }
                std::thread::sleep(Duration::from_secs(30));
            }
            x
        });
        let failures = out.failures();
        assert_eq!(failures.timed_out, vec![1]);
        assert!(out.outcomes[0].is_ok());
    }

    #[test]
    fn progress_budget_kills_runaway_jobs() {
        let cfg = SupervisorConfig {
            progress_budget: Some(1_000),
            poll: Duration::from_millis(5),
            ..SupervisorConfig::default()
        };
        let out = supervised_map(vec![0u32], &cfg, |pulse, _x| {
            // A runaway loop reporting ever-growing progress.
            let mut cycles = 0u64;
            loop {
                cycles += 500;
                pulse.set_progress(cycles);
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        assert_eq!(out.failures().timed_out, vec![0]);
    }

    #[test]
    fn supervised_map_empty_input() {
        let cfg = SupervisorConfig::default();
        let out: SweepOutcome<u32> = supervised_map(Vec::<u32>::new(), &cfg, |_p, x| x);
        assert!(out.outcomes.is_empty());
        assert!(out.all_ok());
        assert!(out.failures().none_lost());
    }
}
