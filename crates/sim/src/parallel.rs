//! A minimal scoped-thread work-queue for running independent
//! simulations in parallel.
//!
//! Every figure driver in [`crate::experiments`] is a map over an
//! embarrassingly parallel job list: each job builds its own
//! [`Simulator`](crate::Simulator), so jobs share no mutable state.
//! [`map`] fans such a list out over `std::thread::scope` workers pulling
//! from a shared queue, and writes each result into the slot matching its
//! input index — the output order is always the input order, independent
//! of scheduling, so parallel sweeps are bit-identical to serial ones.
//!
//! No thread pool, channels or external dependencies: threads live for
//! one call, the queue is a mutexed counter, and a panicking job aborts
//! the whole map (propagated when the scope joins).

use std::sync::Mutex;

/// Default worker count: the `DRAMSTACK_THREADS` environment variable
/// when set to a positive integer, otherwise the machine's available
/// parallelism (1 if unknown).
pub fn available_threads() -> usize {
    if let Ok(v) = std::env::var("DRAMSTACK_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`available_threads`] workers, preserving
/// input order in the output.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    map_with_threads(items, available_threads(), f)
}

/// Maps `f` over `items` on at most `threads` workers, preserving input
/// order in the output. `threads <= 1` (or a single item) runs serially
/// on the calling thread.
pub fn map_with_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<std::vec::IntoIter<T>> = Mutex::new(items.into_iter());
    let next_index = Mutex::new(0usize);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Pop the next (index, item) pair under one critical
                // section so indices and items stay in lock-step.
                let (idx, item) = {
                    let mut iter = queue.lock().expect("queue poisoned");
                    let Some(item) = iter.next() else {
                        return;
                    };
                    let mut ni = next_index.lock().expect("index poisoned");
                    let idx = *ni;
                    *ni += 1;
                    (idx, item)
                };
                let result = f(item);
                *slots[idx].lock().expect("slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("every job ran exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_matches_serial_and_preserves_order() {
        let items: Vec<u64> = (0..57).collect();
        let serial = map_with_threads(items.clone(), 1, |x| x * x + 1);
        let parallel = map_with_threads(items, 4, |x| x * x + 1);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[10], 101);
    }

    #[test]
    fn uneven_job_durations_do_not_reorder_results() {
        // Early jobs sleep longest, so later jobs finish first; the
        // output must still be in input order.
        let items: Vec<u64> = (0..16).collect();
        let out = map_with_threads(items, 8, |x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = map_with_threads(vec![1, 2, 3], 64, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with_threads(empty, 4, |x| x).is_empty());
        assert_eq!(map_with_threads(vec![7], 4, |x| x * 2), vec![14]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
