//! The checkpoint pipeline: format selection, chained base+delta file
//! sets, and the background writer thread.
//!
//! A [`CheckpointChain`] owns the on-disk checkpoint of one job. Each
//! [`checkpoint`](CheckpointChain::checkpoint) call does the *fast,
//! synchronous* part on the simulation thread — capturing state and
//! encoding it to bytes — and hands the buffer to a [`CheckpointWriter`]
//! whose background thread does the atomic tmp+rename I/O. The channel
//! holds one pending buffer (double buffering): the simulation encodes
//! checkpoint N+1 while the writer flushes checkpoint N, and blocks only
//! if the disk falls two checkpoints behind.
//!
//! In delta mode the chain is a full base snapshot plus numbered delta
//! files; every [`REBASE_EVERY`] deltas the chain re-bases with a fresh
//! full snapshot. Ordering makes every crash window safe: the new base
//! replaces the old one atomically *before* the writer unlinks the stale
//! deltas, and a stale delta that survives a crash fails the
//! `base_cycle` chain check on load, so [`load_latest`] falls back to
//! the newest complete prefix.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use crate::snapshot::{Snapshot, SnapshotError};
use crate::system::Simulator;

/// Cooperative termination flag, polled by checkpointed run loops at
/// checkpoint boundaries. A signal handler (or any thread) sets it via
/// [`request_interrupt`]; the simulation thread then flushes one final
/// checkpoint and stops instead of being killed mid-write. The flag is
/// process-wide and sticky — callers that want to survive an interrupt
/// must [`clear_interrupt`] once they have handled it.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Which signal requested the interrupt (0 = none / not signal-driven).
/// Lets the CLI exit with the conventional `128 + signal` code — 143 for
/// SIGTERM, 130 for SIGINT — after the cooperative shutdown finished.
static INTERRUPT_SIGNAL: AtomicI32 = AtomicI32::new(0);

/// Requests a cooperative stop at the next checkpoint boundary.
/// Async-signal-safe: a single atomic store.
pub fn request_interrupt() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// [`request_interrupt`] plus the signal number that triggered it, for
/// signal handlers (SIGTERM = 15, SIGINT = 2). Async-signal-safe: two
/// atomic stores.
pub fn request_interrupt_signal(signal: i32) {
    INTERRUPT_SIGNAL.store(signal, Ordering::SeqCst);
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// True once [`request_interrupt`] has fired and nobody cleared it.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// The signal behind the pending interrupt, if it came from a signal
/// handler via [`request_interrupt_signal`].
pub fn interrupt_signal() -> Option<i32> {
    match INTERRUPT_SIGNAL.load(Ordering::SeqCst) {
        0 => None,
        s => Some(s),
    }
}

/// Re-arms the process for another run after an interrupt was handled.
pub fn clear_interrupt() {
    INTERRUPTED.store(false, Ordering::SeqCst);
    INTERRUPT_SIGNAL.store(0, Ordering::SeqCst);
}

/// On-disk checkpoint encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotFormat {
    /// Compact binary `.dsnp` container (the default).
    #[default]
    Binary,
    /// Pretty-printed JSON blob (the golden-fixture format; several
    /// times larger and slower, kept as the oracle and for inspection).
    Json,
}

impl SnapshotFormat {
    /// Parses a `--snapshot-format` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "binary" => Some(SnapshotFormat::Binary),
            "json" => Some(SnapshotFormat::Json),
            _ => None,
        }
    }
}

impl fmt::Display for SnapshotFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SnapshotFormat::Binary => "binary",
            SnapshotFormat::Json => "json",
        })
    }
}

/// A checkpoint failure: either the simulator could not capture state or
/// the writer thread reported an I/O error.
#[derive(Debug)]
pub enum CkptError {
    /// Capture/serialization failed.
    Snapshot(SnapshotError),
    /// The background writer (or a cleanup) hit the filesystem.
    Io(io::Error),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Snapshot(e) => write!(f, "checkpoint capture failed: {e}"),
            CkptError::Io(e) => write!(f, "checkpoint write failed: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<SnapshotError> for CkptError {
    fn from(e: SnapshotError) -> Self {
        CkptError::Snapshot(e)
    }
}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Background writer
// ---------------------------------------------------------------------------

struct WriteJob {
    path: PathBuf,
    bytes: Vec<u8>,
    /// Unlinked *after* `path` is atomically in place (stale-delta
    /// cleanup on rebase; removal failures are ignored — stale files are
    /// harmless by the chain check).
    then_remove: Vec<PathBuf>,
}

/// Background checkpoint writer: a thread that performs atomic
/// write-to-tmp-then-rename I/O off the simulation thread.
///
/// The submission channel holds one buffer, so at most two checkpoints
/// are ever outstanding (one queued, one being written); a third
/// [`submit`](Self::submit) blocks — backpressure instead of unbounded
/// memory. The first I/O error is kept and surfaced by
/// [`finish`](Self::finish) (subsequent jobs are drained, not written).
/// Dropping the writer joins the thread after flushing the queue.
#[derive(Debug)]
pub struct CheckpointWriter {
    tx: Option<SyncSender<WriteJob>>,
    handle: Option<JoinHandle<io::Result<()>>>,
}

fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

fn writer_loop(rx: Receiver<WriteJob>) -> io::Result<()> {
    let mut first_err: Option<io::Error> = None;
    for job in rx {
        if first_err.is_some() {
            continue; // drain without writing so submitters never block on a dead disk
        }
        match write_atomic(&job.path, &job.bytes) {
            Ok(()) => {
                for p in &job.then_remove {
                    let _ = fs::remove_file(p);
                }
            }
            Err(e) => first_err = Some(e),
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

impl CheckpointWriter {
    /// Spawns the writer thread.
    pub fn new() -> Self {
        let (tx, rx) = sync_channel::<WriteJob>(1);
        let handle = std::thread::Builder::new()
            .name("ckpt-writer".to_string())
            .spawn(move || writer_loop(rx))
            .expect("spawn checkpoint writer thread");
        CheckpointWriter {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    fn submit_job(&self, job: WriteJob) -> io::Result<()> {
        self.tx
            .as_ref()
            .expect("writer channel open until drop")
            .send(job)
            .map_err(|_| io::Error::other("checkpoint writer thread is gone"))
    }

    /// Queues `bytes` to be written to `path` atomically (tmp + rename).
    /// Blocks only when a previous write is still in flight *and* one
    /// more is already queued.
    pub fn submit(&self, path: PathBuf, bytes: Vec<u8>) -> io::Result<()> {
        self.submit_job(WriteJob {
            path,
            bytes,
            then_remove: Vec::new(),
        })
    }

    /// Flushes the queue, joins the thread, and surfaces the first I/O
    /// error any write hit.
    pub fn finish(mut self) -> io::Result<()> {
        self.join()
    }

    fn join(&mut self) -> io::Result<()> {
        drop(self.tx.take());
        match self.handle.take() {
            Some(h) => h
                .join()
                .map_err(|_| io::Error::other("checkpoint writer panicked"))?,
            None => Ok(()),
        }
    }
}

impl Default for CheckpointWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for CheckpointWriter {
    fn drop(&mut self) {
        let _ = self.join();
    }
}

// ---------------------------------------------------------------------------
// Chain management
// ---------------------------------------------------------------------------

/// A fresh full base replaces delta accumulation after this many deltas,
/// bounding both resume replay time and stale-delta disk growth.
pub const REBASE_EVERY: u64 = 8;

fn json_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("ckpt-{key}.json"))
}

fn base_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("ckpt-{key}.base.dsnp"))
}

fn delta_path(dir: &Path, key: &str, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{key}.d{seq}.dsnp"))
}

/// The on-disk checkpoint of one job: format choice, the base+delta file
/// set, and the background writer. See the module docs for the pipeline
/// and crash-safety story.
#[derive(Debug)]
pub struct CheckpointChain {
    dir: PathBuf,
    key: String,
    format: SnapshotFormat,
    delta_mode: bool,
    writer: CheckpointWriter,
    deltas_since_base: u64,
    has_base: bool,
}

impl CheckpointChain {
    /// Creates a chain writing `ckpt-<key>.*` files under `dir` (created
    /// if absent). `delta_mode` only applies to the binary format: JSON
    /// checkpoints are always full snapshots (the oracle path).
    ///
    /// # Errors
    ///
    /// Returns the error from creating `dir`.
    pub fn create(
        dir: &Path,
        key: &str,
        format: SnapshotFormat,
        delta_mode: bool,
    ) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(CheckpointChain {
            dir: dir.to_path_buf(),
            key: key.to_string(),
            format,
            delta_mode: delta_mode && format == SnapshotFormat::Binary,
            writer: CheckpointWriter::new(),
            deltas_since_base: 0,
            has_base: false,
        })
    }

    /// The job key this chain checkpoints.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Captures and queues one checkpoint of `sim`. Returns the encoded
    /// blob size in bytes.
    ///
    /// In delta mode the first call (and every [`REBASE_EVERY`]-th
    /// thereafter) writes a full base; the rest write deltas of only the
    /// state dirtied since the previous checkpoint.
    ///
    /// # Errors
    ///
    /// Capture errors ([`SnapshotError`]) and writer-thread failures.
    pub fn checkpoint(&mut self, sim: &mut Simulator) -> Result<usize, CkptError> {
        match self.format {
            SnapshotFormat::Json => {
                let snap = sim.snapshot()?;
                let bytes = snap.to_json().into_bytes();
                let n = bytes.len();
                self.writer.submit(json_path(&self.dir, &self.key), bytes)?;
                Ok(n)
            }
            SnapshotFormat::Binary if !self.delta_mode => {
                let snap = sim.snapshot()?;
                let bytes = snap.to_binary();
                let n = bytes.len();
                self.writer.submit(base_path(&self.dir, &self.key), bytes)?;
                Ok(n)
            }
            SnapshotFormat::Binary => {
                if !self.has_base || self.deltas_since_base >= REBASE_EVERY {
                    let snap = sim.snapshot_base()?;
                    let bytes = snap.to_binary();
                    let n = bytes.len();
                    // Stale deltas are unlinked only after the new base
                    // has atomically replaced the old one; any survivor
                    // of a crash in between fails the chain check.
                    let mut stale: Vec<PathBuf> = (1..=self.deltas_since_base)
                        .map(|seq| delta_path(&self.dir, &self.key, seq))
                        .collect();
                    if !self.has_base {
                        // A killed predecessor may have left a deeper
                        // chain. Those deltas become unreadable the
                        // moment this base lands (their `base_cycle` no
                        // longer matches), so sweep them up too.
                        let prefix = format!("ckpt-{}.d", self.key);
                        if let Ok(entries) = fs::read_dir(&self.dir) {
                            for e in entries.flatten() {
                                let name = e.file_name();
                                let Some(n) = name.to_str() else { continue };
                                if n.starts_with(&prefix) && n.ends_with(".dsnp") {
                                    stale.push(e.path());
                                }
                            }
                        }
                        stale.sort();
                        stale.dedup();
                    }
                    self.writer.submit_job(WriteJob {
                        path: base_path(&self.dir, &self.key),
                        bytes,
                        then_remove: stale,
                    })?;
                    self.has_base = true;
                    self.deltas_since_base = 0;
                    Ok(n)
                } else {
                    let delta = sim.snapshot_delta()?;
                    let bytes = delta.to_binary();
                    let n = bytes.len();
                    self.writer
                        .submit(delta_path(&self.dir, &self.key, delta.seq), bytes)?;
                    self.deltas_since_base = delta.seq;
                    Ok(n)
                }
            }
        }
    }

    /// Flushes all queued writes and joins the writer thread, surfacing
    /// the first I/O error.
    pub fn finish(self) -> io::Result<()> {
        self.writer.finish()
    }
}

/// Removes every checkpoint file of `key` under `dir` — the JSON blob,
/// the binary base, all deltas, and half-written `.tmp` files. Called
/// when a job completes. Missing files are fine; other I/O errors are
/// ignored (a leftover checkpoint is re-cleared on the next run).
pub fn clear(dir: &Path, key: &str) {
    let _ = fs::remove_file(json_path(dir, key));
    let _ = fs::remove_file(base_path(dir, key));
    let prefix = format!("ckpt-{key}.");
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(&prefix)
            && (name.ends_with(".dsnp") || name.ends_with(".tmp") || name.ends_with(".json"))
        {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// A checkpoint recovered from disk by [`load_latest`].
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// The reconstructed machine state.
    pub snapshot: Snapshot,
    /// Where it came from.
    pub format: SnapshotFormat,
    /// Deltas replayed on top of the base (0 for a full snapshot).
    pub deltas_applied: u64,
}

/// Loads the most advanced complete checkpoint of `key` under `dir`.
///
/// Tries the binary chain first: the base snapshot plus deltas replayed
/// in sequence order, stopping at the first missing, corrupt, truncated,
/// or chain-broken delta — everything up to that point is a complete,
/// consistent checkpoint (a torn tail never poisons the prefix). If the
/// binary base itself is unreadable, falls back to the JSON blob.
/// Returns `None` when no complete checkpoint exists in either format.
pub fn load_latest(dir: &Path, key: &str) -> Option<LoadedCheckpoint> {
    if let Some(loaded) = load_binary_chain(dir, key) {
        return Some(loaded);
    }
    let text = fs::read_to_string(json_path(dir, key)).ok()?;
    let snapshot = Snapshot::from_json(&text).ok()?;
    Some(LoadedCheckpoint {
        snapshot,
        format: SnapshotFormat::Json,
        deltas_applied: 0,
    })
}

fn load_binary_chain(dir: &Path, key: &str) -> Option<LoadedCheckpoint> {
    let bytes = fs::read(base_path(dir, key)).ok()?;
    let mut snapshot = Snapshot::from_binary(&bytes).ok()?;
    let mut deltas_applied = 0;
    for seq in 1.. {
        let Ok(bytes) = fs::read(delta_path(dir, key, seq)) else {
            break;
        };
        let Ok(delta) = crate::snapshot::SnapshotDelta::from_binary(&bytes) else {
            break;
        };
        if snapshot.apply_delta(&delta).is_err() {
            break;
        }
        deltas_applied = seq;
    }
    Some(LoadedCheckpoint {
        snapshot,
        format: SnapshotFormat::Binary,
        deltas_applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parses_and_displays() {
        assert_eq!(
            SnapshotFormat::parse("binary"),
            Some(SnapshotFormat::Binary)
        );
        assert_eq!(SnapshotFormat::parse("json"), Some(SnapshotFormat::Json));
        assert_eq!(SnapshotFormat::parse("yaml"), None);
        assert_eq!(SnapshotFormat::Binary.to_string(), "binary");
        assert_eq!(SnapshotFormat::default(), SnapshotFormat::Binary);
    }

    #[test]
    fn writer_lands_files_atomically_and_in_order() {
        let dir = std::env::temp_dir().join(format!("dsnp-writer-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let w = CheckpointWriter::new();
        for i in 0..16u32 {
            w.submit(dir.join("blob"), format!("gen {i}").into_bytes())
                .unwrap();
        }
        w.finish().unwrap();
        assert_eq!(fs::read_to_string(dir.join("blob")).unwrap(), "gen 15");
        assert!(!dir.join("blob.tmp").exists(), "tmp file was renamed away");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_surfaces_io_error_on_finish() {
        let w = CheckpointWriter::new();
        w.submit(
            PathBuf::from("/nonexistent-dir-for-sure/blob"),
            vec![1, 2, 3],
        )
        .unwrap();
        assert!(w.finish().is_err());
    }
}
