//! Resumable experiment campaigns: a config-hash-keyed completion
//! manifest plus on-disk checkpoints and reports.
//!
//! A [`Campaign`] wraps a checkpoint directory. Each job (one simulator
//! configuration + label) is identified by [`job_key`] — an FNV-1a hash
//! of the canonical JSON encoding of its [`SystemConfig`] plus the label
//! — and owns three artifacts inside the directory:
//!
//! * `manifest.json` entry — marks the job finished and names its report;
//! * `report-<key>.json` — the finished job's [`SimReport`];
//! * `ckpt-<key>.json` — the latest [`Snapshot`] of an in-flight job
//!   (removed once the job finishes).
//!
//! A re-invoked sweep opens the same directory, skips every job whose
//! manifest entry is `done`, restores interrupted jobs from their
//! checkpoint, and picks up where the killed process stopped. All file
//! writes go through a temp-file + rename so a crash mid-write never
//! corrupts an existing artifact, and the manifest is updated under a
//! lock so parallel sweep workers can record completions concurrently.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use crate::config::SystemConfig;
use crate::report::{load_report, ReportLoadError, SimReport};
use crate::snapshot::{Snapshot, SnapshotError};

/// Version stamp of the manifest file format.
pub const MANIFEST_VERSION: u32 = 1;

/// Name of the manifest file inside a campaign directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Stable job identity: FNV-1a over the canonical JSON encoding of the
/// configuration plus the job label, rendered as 16 hex digits. Equal
/// config + label ⇒ equal key across processes and runs.
pub fn job_key(cfg: &SystemConfig, label: &str) -> String {
    let canon = serde_json::to_string(cfg).unwrap_or_default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canon.bytes().chain(label.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ManifestEntry {
    key: String,
    label: String,
    done: bool,
    report: String,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    jobs: Vec<ManifestEntry>,
}

impl Manifest {
    fn fresh() -> Self {
        Manifest {
            version: MANIFEST_VERSION,
            jobs: Vec::new(),
        }
    }

    fn find(&self, key: &str) -> Option<&ManifestEntry> {
        let idx = self
            .jobs
            .binary_search_by(|e| e.key.as_str().cmp(key))
            .ok()?;
        Some(&self.jobs[idx])
    }

    fn upsert(&mut self, entry: ManifestEntry) {
        match self
            .jobs
            .binary_search_by(|e| e.key.as_str().cmp(entry.key.as_str()))
        {
            Ok(idx) => self.jobs[idx] = entry,
            Err(idx) => self.jobs.insert(idx, entry),
        }
    }
}

/// Typed failures from campaign bookkeeping.
#[derive(Debug)]
pub enum CampaignError {
    /// A file or directory operation failed.
    Io {
        /// Path that failed.
        path: String,
        /// The underlying I/O error.
        err: io::Error,
    },
    /// The manifest file exists but is malformed or from a different
    /// manifest version.
    Manifest {
        /// Path of the offending manifest.
        path: String,
        /// What went wrong.
        msg: String,
    },
    /// A checkpoint file exists but could not be parsed or is from a
    /// different snapshot format version.
    Checkpoint {
        /// Path of the offending checkpoint.
        path: String,
        /// The underlying snapshot error.
        err: SnapshotError,
    },
    /// A recorded report file could not be loaded.
    Report(ReportLoadError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io { path, err } => write!(f, "{path}: {err}"),
            CampaignError::Manifest { path, msg } => write!(f, "{path}: {msg}"),
            CampaignError::Checkpoint { path, err } => write!(f, "{path}: {err}"),
            CampaignError::Report(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ReportLoadError> for CampaignError {
    fn from(e: ReportLoadError) -> Self {
        CampaignError::Report(e)
    }
}

/// A checkpoint directory with its completion manifest.
///
/// Cheap to clone — clones share the in-memory manifest behind a lock,
/// so sweep workers can record completions from parallel threads while
/// the manifest file on disk stays consistent (every record rewrites it
/// atomically under the lock).
#[derive(Debug, Clone)]
pub struct Campaign {
    dir: PathBuf,
    manifest: Arc<Mutex<Manifest>>,
}

impl Campaign {
    /// Opens (or initializes) the campaign at `dir`, creating the
    /// directory if needed and loading an existing manifest.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Campaign, CampaignError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|err| CampaignError::Io {
            path: dir.display().to_string(),
            err,
        })?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest = if manifest_path.exists() {
            let text = fs::read_to_string(&manifest_path).map_err(|err| CampaignError::Io {
                path: manifest_path.display().to_string(),
                err,
            })?;
            let m: Manifest = serde_json::from_str(&text).map_err(|e| CampaignError::Manifest {
                path: manifest_path.display().to_string(),
                msg: match e.byte_offset() {
                    Some(b) => format!("malformed manifest at byte {b}: {e}"),
                    None => format!("malformed manifest: {e}"),
                },
            })?;
            if m.version != MANIFEST_VERSION {
                return Err(CampaignError::Manifest {
                    path: manifest_path.display().to_string(),
                    msg: format!(
                        "manifest version mismatch: this build reads v{MANIFEST_VERSION}, \
                         file is v{}",
                        m.version
                    ),
                });
            }
            m
        } else {
            Manifest::fresh()
        };
        Ok(Campaign {
            dir,
            manifest: Arc::new(Mutex::new(manifest)),
        })
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether the job is already recorded as finished.
    pub fn is_done(&self, key: &str) -> bool {
        let m = self.manifest.lock().unwrap_or_else(PoisonError::into_inner);
        m.find(key).is_some_and(|e| e.done)
    }

    /// Number of jobs recorded as finished.
    pub fn jobs_done(&self) -> usize {
        let m = self.manifest.lock().unwrap_or_else(PoisonError::into_inner);
        m.jobs.iter().filter(|e| e.done).count()
    }

    /// Loads the recorded report of a finished job, or `None` if the job
    /// is not recorded as done.
    pub fn load_report(&self, key: &str) -> Result<Option<SimReport>, CampaignError> {
        let report_file = {
            let m = self.manifest.lock().unwrap_or_else(PoisonError::into_inner);
            match m.find(key) {
                Some(e) if e.done => e.report.clone(),
                _ => return Ok(None),
            }
        };
        let path = self.dir.join(report_file);
        Ok(Some(load_report(&path.display().to_string())?))
    }

    /// Records a job as finished: writes its report, marks the manifest
    /// entry done, and removes any leftover checkpoint.
    pub fn record_done(
        &self,
        key: &str,
        label: &str,
        report: &SimReport,
    ) -> Result<(), CampaignError> {
        let report_file = format!("report-{key}.json");
        let json = report.to_json().map_err(|e| CampaignError::Manifest {
            path: report_file.clone(),
            msg: format!("report serialization failed: {e}"),
        })?;
        self.write_atomic(&self.dir.join(&report_file), &json)?;
        {
            let mut m = self.manifest.lock().unwrap_or_else(PoisonError::into_inner);
            m.upsert(ManifestEntry {
                key: key.to_string(),
                label: label.to_string(),
                done: true,
                report: report_file,
            });
            let text = serde_json::to_string_pretty(&*m).map_err(|e| CampaignError::Manifest {
                path: MANIFEST_FILE.to_string(),
                msg: format!("manifest serialization failed: {e}"),
            })?;
            self.write_atomic(&self.dir.join(MANIFEST_FILE), &text)?;
        }
        self.clear_checkpoint(key);
        Ok(())
    }

    /// Persists an in-flight job's checkpoint (temp-file + rename, so an
    /// interrupt mid-write leaves the previous checkpoint intact).
    pub fn save_checkpoint(&self, key: &str, snap: &Snapshot) -> Result<(), CampaignError> {
        self.write_atomic(&self.checkpoint_path(key), &snap.to_json())
    }

    /// Loads the most advanced complete checkpoint of a job in *any*
    /// format: the binary base+delta chain first (replayed up to the
    /// last complete link), falling back to the JSON blob. Unreadable or
    /// torn files are skipped, never fatal — `None` means nothing usable
    /// exists.
    pub fn load_checkpoint_latest(&self, key: &str) -> Option<crate::ckpt::LoadedCheckpoint> {
        crate::ckpt::load_latest(&self.dir, key)
    }

    /// Opens a [`CheckpointChain`](crate::ckpt::CheckpointChain) writing
    /// this job's checkpoints into the campaign directory.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the campaign directory.
    pub fn open_chain(
        &self,
        key: &str,
        format: crate::ckpt::SnapshotFormat,
        delta_mode: bool,
    ) -> Result<crate::ckpt::CheckpointChain, CampaignError> {
        crate::ckpt::CheckpointChain::create(&self.dir, key, format, delta_mode).map_err(|err| {
            CampaignError::Io {
                path: self.dir.display().to_string(),
                err,
            }
        })
    }

    /// Loads an in-flight job's latest checkpoint, or `None` if it has
    /// none on disk.
    pub fn load_checkpoint(&self, key: &str) -> Result<Option<Snapshot>, CampaignError> {
        let path = self.checkpoint_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(err) => {
                return Err(CampaignError::Io {
                    path: path.display().to_string(),
                    err,
                })
            }
        };
        Snapshot::from_json(&text)
            .map(Some)
            .map_err(|err| CampaignError::Checkpoint {
                path: path.display().to_string(),
                err,
            })
    }

    /// Removes a job's checkpoint files (every format: JSON blob, binary
    /// base, delta chain, torn `.tmp` leftovers) if present.
    pub fn clear_checkpoint(&self, key: &str) {
        crate::ckpt::clear(&self.dir, key);
    }

    fn checkpoint_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("ckpt-{key}.json"))
    }

    fn write_atomic(&self, path: &Path, text: &str) -> Result<(), CampaignError> {
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, text).map_err(|err| CampaignError::Io {
            path: tmp.display().to_string(),
            err,
        })?;
        fs::rename(&tmp, path).map_err(|err| CampaignError::Io {
            path: path.display().to_string(),
            err,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dramstack-campaign-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn job_key_is_stable_and_label_sensitive() {
        let cfg = SystemConfig::paper_default(2);
        let a = job_key(&cfg, "seq");
        assert_eq!(a, job_key(&cfg, "seq"));
        assert_ne!(a, job_key(&cfg, "rand"));
        assert_ne!(a, job_key(&SystemConfig::paper_default(4), "seq"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn manifest_roundtrip_and_done_tracking() {
        let dir = temp_dir("manifest");
        let campaign = Campaign::open(&dir).unwrap();
        let cfg = SystemConfig::paper_default(1);
        let key = job_key(&cfg, "t");
        assert!(!campaign.is_done(&key));

        let report = crate::Simulator::with_synthetic(
            cfg,
            dramstack_workloads::SyntheticPattern::sequential(0.0),
        )
        .run_for_us(2.0);
        campaign.record_done(&key, "t", &report).unwrap();
        assert!(campaign.is_done(&key));
        assert_eq!(campaign.jobs_done(), 1);

        // A fresh handle on the same directory sees the completion and
        // loads the identical report back.
        let reopened = Campaign::open(&dir).unwrap();
        assert!(reopened.is_done(&key));
        let loaded = reopened.load_report(&key).unwrap().unwrap();
        assert_eq!(loaded.strip_perf(), report.strip_perf());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST_FILE), "{not json").unwrap();
        match Campaign::open(&dir) {
            Err(CampaignError::Manifest { msg, .. }) => assert!(msg.contains("byte")),
            other => panic!("expected Manifest error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_none_not_error() {
        let dir = temp_dir("ckpt");
        let campaign = Campaign::open(&dir).unwrap();
        assert!(campaign.load_checkpoint("deadbeef").unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
