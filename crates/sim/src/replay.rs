//! Memory-request trace replay: build stacks for a recorded stream of
//! reads/writes without modeling cores at all.
//!
//! This is the "bring your own trace" mode: anything that can produce
//! `(cycle, R/W, address)` records — a binary-instrumentation tool, an
//! accelerator model, another simulator — can be analyzed with bandwidth
//! and latency stacks. Arrival cycles are *earliest* arrivals: if a queue
//! is full, the request (and everything behind it, per program order)
//! waits.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use dramstack_core::{LatencyStack, StackSampler, TimeSample};
use dramstack_dram::{Cycle, CycleView};
use dramstack_memctrl::{CtrlConfig, MemoryController};

use dramstack_core::through_time::{aggregate_bandwidth, aggregate_latency};
use dramstack_core::BandwidthStack;

/// One memory request of a replayable trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Earliest cycle the request may arrive at the controller.
    pub at: Cycle,
    /// Write (true) or read (false).
    pub write: bool,
    /// Physical byte address.
    pub addr: u64,
}

impl fmt::Display for MemRequest {
    /// Line format: `cycle R|W 0xADDR`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {:#x}",
            self.at,
            if self.write { 'W' } else { 'R' },
            self.addr
        )
    }
}

impl FromStr for MemRequest {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split_whitespace();
        let at: Cycle = it
            .next()
            .ok_or("missing cycle")?
            .parse()
            .map_err(|e| format!("cycle: {e}"))?;
        let write = match it.next().ok_or("missing kind")? {
            "R" | "r" => false,
            "W" | "w" => true,
            other => return Err(format!("kind must be R or W, got `{other}`")),
        };
        let addr_s = it.next().ok_or("missing address")?;
        let addr = if let Some(hex) = addr_s
            .strip_prefix("0x")
            .or_else(|| addr_s.strip_prefix("0X"))
        {
            u64::from_str_radix(hex, 16).map_err(|e| format!("address: {e}"))?
        } else {
            addr_s.parse().map_err(|e| format!("address: {e}"))?
        };
        Ok(MemRequest { at, write, addr })
    }
}

/// A trace line that failed to parse, with enough context to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number in the input text.
    pub line: usize,
    /// The offending line, verbatim (trimmed).
    pub content: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace line {}: {} (`{}`)",
            self.line, self.reason, self.content
        )
    }
}

impl std::error::Error for TraceParseError {}

/// Why a trace replay failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A line failed to parse (strict mode).
    Parse(TraceParseError),
    /// The trace is not sorted by arrival cycle.
    Unsorted {
        /// 1-based index of the first out-of-order record.
        record: usize,
    },
    /// The replay exceeded its cycle budget without draining.
    DidNotDrain {
        /// The budget that was exceeded.
        max_cycles: Cycle,
        /// Requests fed to the controller before giving up.
        fed: usize,
        /// Requests in the trace.
        total: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Parse(e) => e.fmt(f),
            ReplayError::Unsorted { record } => {
                write!(f, "trace not sorted by cycle at record {record}")
            }
            ReplayError::DidNotDrain {
                max_cycles,
                fed,
                total,
            } => write!(
                f,
                "replay did not drain within {max_cycles} cycles ({fed} of {total} requests fed)"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TraceParseError> for ReplayError {
    fn from(e: TraceParseError) -> Self {
        ReplayError::Parse(e)
    }
}

/// A parsed request trace, plus what lossy recovery dropped.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedTrace {
    /// The well-formed requests, in input order.
    pub requests: Vec<MemRequest>,
    /// Malformed lines skipped (always 0 in strict mode).
    pub skipped: u64,
}

/// Parses a request trace (one request per line, `#` comments allowed).
///
/// With `skip_malformed`, unparsable lines are counted and skipped
/// instead of failing the whole trace — the lossy-recovery mode for
/// real-world trace files with the odd corrupt record. Strict mode
/// (`skip_malformed == false`) stops at the first bad line.
///
/// # Errors
///
/// In strict mode, returns a [`TraceParseError`] locating the first
/// malformed line; never errors in lossy mode.
pub fn parse_trace(text: &str, skip_malformed: bool) -> Result<ParsedTrace, TraceParseError> {
    let mut out = ParsedTrace::default();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.parse() {
            Ok(r) => out.requests.push(r),
            Err(_) if skip_malformed => out.skipped += 1,
            Err(reason) => {
                return Err(TraceParseError {
                    line: i + 1,
                    content: line.to_string(),
                    reason,
                })
            }
        }
    }
    Ok(out)
}

/// Parses a request trace strictly (every line must be well-formed).
///
/// # Errors
///
/// Returns a [`TraceParseError`] locating the offending line.
pub fn parse_requests(text: &str) -> Result<Vec<MemRequest>, TraceParseError> {
    parse_trace(text, false).map(|t| t.requests)
}

/// Serializes a request trace.
pub fn write_requests(reqs: &[MemRequest]) -> String {
    let mut out = String::new();
    for r in reqs {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

/// Result of replaying a request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Aggregate bandwidth stack.
    pub bandwidth_stack: BandwidthStack,
    /// Aggregate latency stack over the reads.
    pub latency_stack: LatencyStack,
    /// Through-time samples.
    pub samples: Vec<TimeSample>,
    /// Cycle the last request completed.
    pub finished_at: Cycle,
    /// Reads completed.
    pub reads: u64,
    /// Writes performed.
    pub writes: u64,
}

/// Replays `reqs` (sorted by arrival) through a controller.
///
/// # Example
///
/// ```
/// use dramstack_sim::replay::{parse_requests, replay_requests};
/// use dramstack_memctrl::CtrlConfig;
///
/// let trace = "0 R 0x0\n10 R 0x40\n20 W 0x2000\n";
/// let reqs = parse_requests(trace)?;
/// let result = replay_requests(&reqs, CtrlConfig::paper_default(), 1_000, 100_000)?;
/// assert_eq!(result.reads, 2);
/// assert_eq!(result.writes, 1);
/// # Ok::<(), dramstack_sim::replay::ReplayError>(())
/// ```
///
/// # Errors
///
/// Returns a [`ReplayError`] if the trace is unsorted or the replay
/// exceeds `max_cycles` without draining.
pub fn replay_requests(
    reqs: &[MemRequest],
    cfg: CtrlConfig,
    sample_period: Cycle,
    max_cycles: Cycle,
) -> Result<ReplayResult, ReplayError> {
    for (i, w) in reqs.windows(2).enumerate() {
        if w[1].at < w[0].at {
            return Err(ReplayError::Unsorted { record: i + 1 });
        }
    }
    let peak = cfg.device.peak_bandwidth_gbps();
    let cycle_ns = cfg.device.timing.cycle_ns();
    let mut ctrl = MemoryController::new(cfg);
    let mut view = CycleView::idle(ctrl.total_banks());
    let mut sampler = StackSampler::new(ctrl.total_banks(), peak, cycle_ns, sample_period);
    let mut next = 0usize;
    let mut now: Cycle = 0;
    let (mut reads, mut writes) = (0u64, 0u64);
    while next < reqs.len() || !ctrl.is_idle() {
        if now >= max_cycles {
            return Err(ReplayError::DidNotDrain {
                max_cycles,
                fed: next,
                total: reqs.len(),
            });
        }
        // Feed all due requests, preserving order; stall on a full queue.
        while next < reqs.len() && reqs[next].at <= now {
            let r = reqs[next];
            if r.write {
                if !ctrl.can_accept_write() {
                    break;
                }
                ctrl.enqueue_write(r.addr);
                writes += 1;
            } else {
                if !ctrl.can_accept_read() {
                    break;
                }
                ctrl.enqueue_read(r.addr, next as u64);
                reads += 1;
            }
            next += 1;
        }
        ctrl.tick(now, &mut view);
        sampler.account(&view);
        for c in ctrl.drain_completions() {
            sampler.add_read(&c.breakdown);
        }
        now += 1;
    }
    let samples = sampler.finish();
    let bandwidth_stack =
        aggregate_bandwidth(&samples).unwrap_or_else(|| BandwidthStack::empty(peak));
    let latency_stack = aggregate_latency(&samples);
    Ok(ReplayResult {
        bandwidth_stack,
        latency_stack,
        samples,
        finished_at: now,
        reads,
        writes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_core::BwComponent;

    #[test]
    fn request_line_roundtrip() {
        let r = MemRequest {
            at: 120,
            write: true,
            addr: 0x00DE_ADC0,
        };
        let line = r.to_string();
        assert_eq!(line.parse::<MemRequest>().unwrap(), r);
        // Decimal addresses parse too.
        let r2: MemRequest = "5 R 4096".parse().unwrap();
        assert_eq!(
            r2,
            MemRequest {
                at: 5,
                write: false,
                addr: 4096
            }
        );
        assert!("x R 0".parse::<MemRequest>().is_err());
        assert!("1 Q 0".parse::<MemRequest>().is_err());
        assert!("1 R".parse::<MemRequest>().is_err());
    }

    #[test]
    fn parse_requests_with_comments() {
        let text = "# trace\n0 R 0x0\n\n10 W 0x40\n";
        let reqs = parse_requests(text).unwrap();
        assert_eq!(reqs.len(), 2);
        assert!(parse_requests("0 R 0x0\nbroken").is_err());
    }

    #[test]
    fn strict_parse_locates_the_malformed_line() {
        let text = "# header\n0 R 0x0\n10 Q 0x40\n20 W 0x80\n";
        let e = parse_requests(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.content, "10 Q 0x40");
        assert!(e.reason.contains("R or W"), "{e}");
        // Display carries the full context for log lines.
        let msg = e.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("10 Q 0x40"), "{msg}");
    }

    #[test]
    fn lossy_parse_skips_and_counts_malformed_lines() {
        let text = "0 R 0x0\ngarbage\n10 Q 0x40\n20 W 0x80\n30 R zz\n";
        let t = parse_trace(text, true).unwrap();
        assert_eq!(t.requests.len(), 2);
        assert_eq!(t.skipped, 3);
        assert_eq!(t.requests[1].at, 20);
        // Strict mode on the same text fails at the first bad line.
        assert_eq!(parse_trace(text, false).unwrap_err().line, 2);
        // A clean trace skips nothing in either mode.
        assert_eq!(parse_trace("0 R 0x0\n", true).unwrap().skipped, 0);
    }

    #[test]
    fn replay_simple_reads() {
        let reqs: Vec<MemRequest> = (0..50)
            .map(|i| MemRequest {
                at: i * 12,
                write: false,
                addr: i * 64,
            })
            .collect();
        let result = replay_requests(&reqs, CtrlConfig::paper_default(), 1_000, 1_000_000).unwrap();
        assert_eq!(result.reads, 50);
        assert_eq!(result.writes, 0);
        assert_eq!(result.latency_stack.reads, 50);
        assert!(result.bandwidth_stack.gbps(BwComponent::Read) > 0.0);
        assert!(result.bandwidth_stack.is_consistent());
        assert!(!result.samples.is_empty());
    }

    #[test]
    fn replay_mixed_reads_and_writes() {
        let mut reqs = Vec::new();
        for i in 0..200u64 {
            reqs.push(MemRequest {
                at: i * 5,
                write: i % 3 == 0,
                addr: (i * 7919 * 64) % (1 << 28),
            });
        }
        let result = replay_requests(&reqs, CtrlConfig::paper_default(), 2_000, 5_000_000).unwrap();
        assert_eq!(result.reads + result.writes, 200);
        assert!(result.bandwidth_stack.gbps(BwComponent::Write) > 0.0);
    }

    #[test]
    fn unsorted_trace_is_rejected() {
        let reqs = vec![
            MemRequest {
                at: 10,
                write: false,
                addr: 0,
            },
            MemRequest {
                at: 5,
                write: false,
                addr: 64,
            },
        ];
        let e = replay_requests(&reqs, CtrlConfig::paper_default(), 1_000, 10_000).unwrap_err();
        assert_eq!(e, ReplayError::Unsorted { record: 1 });
        assert!(e.to_string().contains("not sorted"), "{e}");
    }

    #[test]
    fn overrunning_the_cycle_budget_is_a_typed_error() {
        let reqs: Vec<MemRequest> = (0..50)
            .map(|i| MemRequest {
                at: 0,
                write: false,
                addr: i * 4096,
            })
            .collect();
        match replay_requests(&reqs, CtrlConfig::paper_default(), 1_000, 10).unwrap_err() {
            ReplayError::DidNotDrain {
                max_cycles: 10,
                fed,
                total: 50,
            } => assert!(fed <= 50),
            other => panic!("expected DidNotDrain, got {other:?}"),
        }
    }

    #[test]
    fn backpressure_preserves_program_order() {
        // A burst far larger than the read queue must still complete, with
        // arrivals stalled rather than dropped.
        let reqs: Vec<MemRequest> = (0..500)
            .map(|i| MemRequest {
                at: 0,
                write: false,
                addr: i * 4096,
            })
            .collect();
        let result =
            replay_requests(&reqs, CtrlConfig::paper_default(), 10_000, 10_000_000).unwrap();
        assert_eq!(result.reads, 500);
    }
}
