//! Self-describing simulation jobs: a JSON-parseable [`JobSpec`], a
//! cooperative cancellation token and a slice-wise [`run_job`] driver.
//!
//! This is the unit of work the `dramstack serve` daemon schedules on its
//! worker pool, but it is service-agnostic: anything that wants to run a
//! synthetic configuration with cooperative cancellation, a wall-clock
//! deadline, optional live telemetry and checkpoint-on-cancel can use it.
//! The driver advances the simulator in small cycle slices so cancel and
//! deadline checks land within milliseconds, while keeping results
//! bit-identical (modulo `perf` timings) to a straight
//! [`run_synthetic`](crate::experiments::run_synthetic) call — the
//! fast-forward paths clamp to the slice horizon exactly like they clamp
//! to checkpoint boundaries.

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Serialize, Value};

use dramstack_dram::Cycle;
use dramstack_memctrl::{MappingScheme, PagePolicy};
use dramstack_workloads::SyntheticPattern;

use crate::ckpt::{CheckpointChain, SnapshotFormat};
use crate::config::{ConfigError, SystemConfig};
use crate::parallel::JobPulse;
use crate::report::SimReport;
use crate::system::Simulator;
use crate::telemetry::Telemetry;

/// Cycles simulated between cancel/deadline polls. Small enough that a
/// cancellation lands within a few milliseconds of wall time, large
/// enough that polling cost is unmeasurable next to simulation work.
const SLICE_CYCLES: Cycle = 24_000;

/// One synthetic simulation job, as submitted over the wire.
///
/// All fields have serving-friendly defaults; [`JobSpec::from_json`]
/// fills in whatever the request body omits and rejects anything it does
/// not understand with a typed message (so a service can answer 400
/// instead of guessing).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobSpec {
    /// Traffic pattern: `"seq"` or `"rand"`.
    pub pattern: String,
    /// Core count (≥ 1).
    pub cores: usize,
    /// Store fraction in `[0, 1]`.
    pub stores: f64,
    /// Simulated microseconds (> 0).
    pub us: f64,
    /// Page policy: `"open"` or `"closed"`.
    pub policy: String,
    /// Address mapping: `"default"`, `"interleaved"` or `"xor"`.
    pub mapping: String,
    /// Fault injection: panic immediately (supervision tests).
    pub inject_panic: bool,
    /// Fault injection: hang without progress (watchdog tests).
    pub inject_hang: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            pattern: "seq".to_string(),
            cores: 1,
            stores: 0.0,
            us: 20.0,
            policy: "open".to_string(),
            mapping: "default".to_string(),
            inject_panic: false,
            inject_hang: false,
        }
    }
}

impl JobSpec {
    /// Parses a JSON object, defaulting omitted fields and rejecting
    /// unknown keys and mistyped values with a human-readable message.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field (or of the JSON syntax
    /// error) — suitable for echoing back in a 400 response.
    pub fn from_json(text: &str) -> Result<JobSpec, String> {
        let value: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let Value::Map(entries) = value else {
            return Err("job spec must be a JSON object".to_string());
        };
        let mut spec = JobSpec::default();
        for (key, v) in &entries {
            match key.as_str() {
                "pattern" => spec.pattern = expect_str(key, v)?,
                "cores" => spec.cores = expect_count(key, v)?,
                "stores" => spec.stores = expect_f64(key, v)?,
                "us" => spec.us = expect_f64(key, v)?,
                "policy" => spec.policy = expect_str(key, v)?,
                "mapping" => spec.mapping = expect_str(key, v)?,
                "inject_panic" => spec.inject_panic = expect_bool(key, v)?,
                "inject_hang" => spec.inject_hang = expect_bool(key, v)?,
                other => return Err(format!("unknown field `{other}`")),
            }
        }
        Ok(spec)
    }

    /// Serializes the spec for job-status responses.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Resolves the string-typed fields into simulator inputs, validating
    /// everything the simulator would otherwise panic on.
    ///
    /// # Errors
    ///
    /// A description of the first invalid field.
    pub fn resolve(&self) -> Result<(SystemConfig, SyntheticPattern), String> {
        if !(0.0..=1.0).contains(&self.stores) {
            return Err(format!("stores must be in [0, 1], got {}", self.stores));
        }
        if !self.us.is_finite() || self.us <= 0.0 {
            return Err(format!("us must be positive, got {}", self.us));
        }
        let pattern = match self.pattern.as_str() {
            "seq" => SyntheticPattern::sequential(self.stores),
            "rand" => SyntheticPattern::random(self.stores),
            other => return Err(format!("unknown pattern `{other}` (want seq|rand)")),
        };
        let policy = match self.policy.as_str() {
            "open" => PagePolicy::Open,
            "closed" => PagePolicy::Closed,
            other => return Err(format!("unknown policy `{other}` (want open|closed)")),
        };
        let mapping = match self.mapping.as_str() {
            "def" | "default" => MappingScheme::RowBankColumn,
            "int" | "interleaved" => MappingScheme::CacheLineInterleaved,
            "xor" | "permutation" => MappingScheme::PermutationXor,
            other => {
                return Err(format!(
                    "unknown mapping `{other}` (want default|interleaved|xor)"
                ))
            }
        };
        let mut cfg = SystemConfig::paper_default(self.cores);
        cfg.ctrl.page_policy = policy;
        cfg.ctrl.mapping = mapping;
        cfg.validate().map_err(|e| e.to_string())?;
        Ok((cfg, pattern))
    }
}

fn expect_str(key: &str, v: &Value) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(format!("field `{key}` must be a string")),
    }
}

fn expect_bool(key: &str, v: &Value) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("field `{key}` must be a boolean")),
    }
}

fn expect_f64(key: &str, v: &Value) -> Result<f64, String> {
    match v {
        Value::Float(f) => Ok(*f),
        Value::Int(i) => Ok(*i as f64),
        _ => Err(format!("field `{key}` must be a number")),
    }
}

fn expect_count(key: &str, v: &Value) -> Result<usize, String> {
    match v {
        Value::Int(i) if *i > 0 => {
            usize::try_from(*i).map_err(|_| format!("field `{key}` is out of range"))
        }
        _ => Err(format!("field `{key}` must be a positive integer")),
    }
}

/// A clone-able cooperative cancellation token. Cancelling is sticky and
/// idempotent; [`run_job`] polls it every [`SLICE_CYCLES`] cycles.
#[derive(Debug, Clone, Default)]
pub struct JobCancel(Arc<AtomicBool>);

impl JobCancel {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; safe from any thread, any number of times.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once [`cancel`](Self::cancel) has fired.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Where [`run_job`] checkpoints a cancelled job so it can be resumed
/// later with [`load_latest`](crate::ckpt::load_latest).
#[derive(Debug, Clone)]
pub struct JobCheckpoint {
    /// Checkpoint directory (created if absent).
    pub dir: PathBuf,
    /// Job key — becomes the `ckpt-<key>.*` file stem.
    pub key: String,
}

/// Per-run knobs for [`run_job`] that are consumed by the run (built
/// fresh for every supervised attempt).
#[derive(Debug, Default)]
pub struct JobOptions {
    /// Wall-clock budget for this attempt; exceeded ⇒
    /// [`JobError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Telemetry to attach (e.g. with a streaming sink installed).
    pub telemetry: Option<Telemetry>,
    /// If set, a cancelled run checkpoints here before returning.
    pub checkpoint: Option<JobCheckpoint>,
}

/// Why a job did not produce a report.
#[derive(Debug)]
pub enum JobError {
    /// The spec did not resolve to a runnable configuration.
    Spec(String),
    /// The resolved configuration failed validation.
    Config(ConfigError),
    /// The cancellation token fired; `checkpointed` says whether state
    /// was saved for resume.
    Cancelled {
        /// DRAM cycle the run had reached.
        cycle: Cycle,
        /// True if a checkpoint was written (a [`JobCheckpoint`] was
        /// configured and the write succeeded).
        checkpointed: bool,
    },
    /// The attempt outlived its wall-clock budget.
    DeadlineExceeded {
        /// DRAM cycle the run had reached.
        cycle: Cycle,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Spec(msg) => write!(f, "invalid job spec: {msg}"),
            JobError::Config(e) => write!(f, "invalid configuration: {e}"),
            JobError::Cancelled {
                cycle,
                checkpointed,
            } => write!(
                f,
                "cancelled at cycle {cycle} ({})",
                if *checkpointed {
                    "checkpointed"
                } else {
                    "not checkpointed"
                }
            ),
            JobError::DeadlineExceeded { cycle } => {
                write!(f, "deadline exceeded at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Runs one job to completion, cancellation or deadline.
///
/// Advances the simulator in [`SLICE_CYCLES`] slices; after each slice it
/// reports progress on `pulse` (so a supervising watchdog sees liveness),
/// polls `cancel`, and checks the wall-clock deadline. Slicing never
/// changes results: a completed job's report is bit-identical (modulo
/// `perf`) to an unsliced [`run_synthetic`](crate::experiments::run_synthetic)
/// of the same spec.
///
/// The `inject_panic` / `inject_hang` spec knobs deliberately misbehave
/// *inside* the job so supervision layers can be tested end to end:
/// a panic unwinds immediately; a hang spins without pulsing until the
/// watchdog abandons it (it still honors `cancel`, so abandoned hang
/// threads can be reclaimed on drain instead of leaking forever).
///
/// # Errors
///
/// [`JobError`] — invalid spec/config, cancelled, or over deadline.
pub fn run_job(
    spec: &JobSpec,
    pulse: &JobPulse,
    cancel: &JobCancel,
    opts: JobOptions,
) -> Result<SimReport, JobError> {
    let (cfg, pattern) = spec.resolve().map_err(JobError::Spec)?;
    if spec.inject_panic {
        panic!("injected failure: job requested inject_panic");
    }
    if spec.inject_hang {
        // No pulse beats on purpose — the supervisor's stall watchdog
        // must fire. Honoring cancel keeps the abandoned thread from
        // outliving a drain.
        loop {
            if cancel.is_cancelled() {
                return Err(JobError::Cancelled {
                    cycle: 0,
                    checkpointed: false,
                });
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    let horizon = cfg.us_to_cycles(spec.us);
    let mut sim = Simulator::with_synthetic(cfg, pattern);
    if let Some(t) = opts.telemetry {
        sim.attach_telemetry(t);
    }
    let end = sim.now() + horizon;
    let started = Instant::now();
    while sim.now() < end {
        let target = end.min(sim.now() + SLICE_CYCLES);
        sim.advance_to_cycle(target);
        pulse.set_progress(sim.now());
        if cancel.is_cancelled() {
            let checkpointed = match &opts.checkpoint {
                Some(c) => checkpoint_cancelled(&mut sim, c),
                None => false,
            };
            return Err(JobError::Cancelled {
                cycle: sim.now(),
                checkpointed,
            });
        }
        if let Some(budget) = opts.deadline {
            if started.elapsed() >= budget {
                return Err(JobError::DeadlineExceeded { cycle: sim.now() });
            }
        }
    }
    Ok(sim.report())
}

/// Best-effort checkpoint of a cancelled run; failure to save must not
/// turn a clean cancellation into a crash.
fn checkpoint_cancelled(sim: &mut Simulator, c: &JobCheckpoint) -> bool {
    let Ok(mut chain) = CheckpointChain::create(&c.dir, &c.key, SnapshotFormat::Binary, true)
    else {
        return false;
    };
    if chain.checkpoint(sim).is_err() {
        return false;
    }
    chain.finish().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ckpt::load_latest;
    use crate::experiments::run_synthetic;

    #[test]
    fn from_json_defaults_and_overrides() {
        let spec = JobSpec::from_json("{}").unwrap();
        assert_eq!(spec, JobSpec::default());

        let spec =
            JobSpec::from_json(r#"{"pattern":"rand","cores":4,"stores":0.3,"us":5}"#).unwrap();
        assert_eq!(spec.pattern, "rand");
        assert_eq!(spec.cores, 4);
        assert!((spec.stores - 0.3).abs() < 1e-12);
        assert!((spec.us - 5.0).abs() < 1e-12);
        assert_eq!(spec.policy, "open");
    }

    #[test]
    fn from_json_rejects_garbage_with_typed_messages() {
        let err = JobSpec::from_json("not json").unwrap_err();
        assert!(err.contains("invalid JSON"), "{err}");
        let err = JobSpec::from_json("[1,2]").unwrap_err();
        assert!(err.contains("must be a JSON object"), "{err}");
        let err = JobSpec::from_json(r#"{"corse":2}"#).unwrap_err();
        assert!(err.contains("unknown field `corse`"), "{err}");
        let err = JobSpec::from_json(r#"{"cores":"two"}"#).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
        let err = JobSpec::from_json(r#"{"cores":0}"#).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
    }

    #[test]
    fn resolve_rejects_out_of_range_fields() {
        let mut spec = JobSpec {
            stores: 1.5,
            ..JobSpec::default()
        };
        assert!(spec.resolve().unwrap_err().contains("stores"));
        spec.stores = 0.0;
        spec.us = 0.0;
        assert!(spec.resolve().unwrap_err().contains("us must be positive"));
        spec.us = 1.0;
        spec.pattern = "zigzag".to_string();
        assert!(spec.resolve().unwrap_err().contains("unknown pattern"));
    }

    #[test]
    fn run_job_matches_direct_run_bit_identically() {
        let spec = JobSpec {
            pattern: "rand".to_string(),
            cores: 2,
            stores: 0.2,
            us: 5.0,
            ..JobSpec::default()
        };
        let pulse = JobPulse::default();
        let report = run_job(&spec, &pulse, &JobCancel::new(), JobOptions::default()).unwrap();
        let direct = run_synthetic(
            2,
            dramstack_workloads::SyntheticPattern::random(0.2),
            PagePolicy::Open,
            MappingScheme::RowBankColumn,
            5.0,
        )
        .unwrap();
        assert_eq!(report.strip_perf(), direct.strip_perf());
        assert!(pulse.progress() > 0);
    }

    #[test]
    fn cancellation_is_prompt_and_checkpoints_for_resume() {
        let dir = std::env::temp_dir().join(format!(
            "dramstack-jobs-cancel-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let spec = JobSpec {
            us: 10_000.0, // far more than we will simulate
            ..JobSpec::default()
        };
        let cancel = JobCancel::new();
        cancel.cancel(); // fires on the first slice boundary
        let err = run_job(
            &spec,
            &JobPulse::default(),
            &cancel,
            JobOptions {
                checkpoint: Some(JobCheckpoint {
                    dir: dir.clone(),
                    key: "cancelled".to_string(),
                }),
                ..JobOptions::default()
            },
        )
        .unwrap_err();
        match err {
            JobError::Cancelled {
                cycle,
                checkpointed,
            } => {
                assert!(cycle > 0);
                assert!(checkpointed);
            }
            other => panic!("expected Cancelled, got {other}"),
        }
        let loaded = load_latest(&dir, "cancelled").expect("checkpoint written");
        assert!(loaded.snapshot.dram_cycle > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadline_is_enforced() {
        let spec = JobSpec {
            us: 10_000.0,
            ..JobSpec::default()
        };
        let err = run_job(
            &spec,
            &JobPulse::default(),
            &JobCancel::new(),
            JobOptions {
                deadline: Some(Duration::from_millis(0)),
                ..JobOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, JobError::DeadlineExceeded { .. }), "{err}");
    }
}
