//! Live stack telemetry: the streaming layer between the simulator's
//! sample windows and the outside world.
//!
//! A [`Telemetry`] instance attached via
//! [`Simulator::enable_telemetry`](crate::Simulator::enable_telemetry)
//! receives every completed sample window as it rolls (including windows
//! rolled inside the idle fast-forward). It
//!
//! * retains a bounded-memory [`StackSeries`] of [`TimeSample`]s (pairwise
//!   downsampling keeps arbitrarily long runs resident),
//! * runs a live [`Advisor`] so the current bottleneck class is known
//!   while the simulation runs,
//! * streams one JSON-lines record per window to an optional writer,
//! * writes a Prometheus-style text exposition snapshot on demand or
//!   every N windows, and
//! * fans each window out to any number of [`TelemetrySink`]s (the live
//!   terminal dashboard is one).
//!
//! Telemetry is an observer: it reads windows the sampler produced and
//! never touches simulation state, so runs are bit-identical with or
//! without it attached (asserted in `tests/telemetry.rs`).

use std::io::Write;

use dramstack_core::{BwComponent, LatComponent, TimeSample};
use dramstack_obs::{Advisor, AdvisorConfig, BottleneckClass, StackSeries, WindowObservation};

/// How much the telemetry layer retains and how often it writes.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Ring capacity of the retained window series (rounded down to
    /// even; the ring downsamples pairwise when full).
    pub series_capacity: usize,
    /// Write a Prometheus snapshot every N published windows (0 = only
    /// on demand / at end of run).
    pub prom_every_windows: u64,
    /// Advisor thresholds used for the *live* classification (the report
    /// always re-runs the advisor over the full series with defaults).
    pub advisor: AdvisorConfig,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            series_capacity: 256,
            prom_every_windows: 0,
            advisor: AdvisorConfig::default(),
        }
    }
}

/// A consumer of published sample windows (e.g. the live dashboard).
///
/// `Send` so a [`Telemetry`] (and the simulator carrying it) can move
/// across threads — the serve worker pool hands jobs, telemetry
/// attached, to supervised attempt threads.
pub trait TelemetrySink: Send {
    /// One system-level sample window, already aggregated over channels,
    /// with its advisor projection and the advisor's current sustained
    /// bottleneck (if any).
    fn window(
        &mut self,
        index: u64,
        sample: &TimeSample,
        obs: &WindowObservation,
        current: Option<BottleneckClass>,
    );

    /// The run ended; flush any buffered output.
    fn finish(&mut self) {}
}

/// The streaming telemetry state attached to a [`Simulator`](crate::Simulator).
pub struct Telemetry {
    cfg: TelemetryConfig,
    series: StackSeries<TimeSample>,
    advisor: Advisor,
    windows: u64,
    last: Option<WindowObservation>,
    jsonl: Option<Box<dyn Write + Send>>,
    prom: Option<Box<dyn Write + Send>>,
    sinks: Vec<Box<dyn TelemetrySink>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("windows", &self.windows)
            .field("series_len", &self.series.len())
            .field("jsonl", &self.jsonl.is_some())
            .field("prom", &self.prom.is_some())
            .field("sinks", &self.sinks.len())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Telemetry with the given retention/write policy and no writers.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            series: StackSeries::new(cfg.series_capacity.max(2)),
            advisor: Advisor::new(cfg.advisor),
            cfg,
            windows: 0,
            last: None,
            jsonl: None,
            prom: None,
            sinks: Vec::new(),
        }
    }

    /// Streams one JSON object per published window to `w`.
    pub fn with_jsonl(mut self, w: Box<dyn Write + Send>) -> Self {
        self.jsonl = Some(w);
        self
    }

    /// Writes the Prometheus text exposition to `w` — every
    /// `prom_every_windows` windows and once at end of run. Each snapshot
    /// overwrites from the writer's current position; pass a fresh file
    /// (or use [`Simulator::telemetry`](crate::Simulator::telemetry) and
    /// [`prometheus_snapshot`](Self::prometheus_snapshot) to render on
    /// demand instead).
    pub fn with_prometheus(mut self, w: Box<dyn Write + Send>) -> Self {
        self.prom = Some(w);
        self
    }

    /// Adds a window consumer (e.g. the live dashboard adapter).
    pub fn add_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.sinks.push(sink);
    }

    /// The retained (possibly downsampled) window series.
    pub fn series(&self) -> &StackSeries<TimeSample> {
        &self.series
    }

    /// Windows published so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// The most recent window's advisor projection.
    pub fn last_observation(&self) -> Option<&WindowObservation> {
        self.last.as_ref()
    }

    /// The advisor's currently sustained bottleneck class, if any.
    pub fn current_diagnosis(&self) -> Option<BottleneckClass> {
        self.advisor.current()
    }

    /// Ingests one system-level sample window. Called by the simulator's
    /// drive loop whenever a sampler window rolls.
    pub(crate) fn publish(&mut self, sample: &TimeSample) {
        let obs = sample.observation();
        self.advisor.observe(&obs);
        let current = self.advisor.current();
        let index = self.windows;
        self.windows += 1;
        if let Some(w) = &mut self.jsonl {
            let record = jsonl_record(index, sample, &obs, current);
            // Best-effort: telemetry must never kill the simulation.
            let _ = writeln!(w, "{record}");
        }
        for sink in &mut self.sinks {
            sink.window(index, sample, &obs, current);
        }
        self.series.push(sample.clone());
        self.last = Some(obs);
        if self.cfg.prom_every_windows > 0
            && self.windows.is_multiple_of(self.cfg.prom_every_windows)
        {
            self.write_prometheus();
        }
    }

    /// Feeds a window sample from outside the simulator drive loop.
    /// Lets a service aggregate windows from many jobs into one shared
    /// [`Telemetry`] whose [`prometheus_snapshot`](Self::prometheus_snapshot)
    /// covers the whole fleet.
    pub fn ingest_window(&mut self, sample: &TimeSample) {
        self.publish(sample);
    }

    /// Renders the Prometheus-style text exposition of the current state:
    /// aggregate stack shares over the retained series, last-window
    /// gauges, and run counters.
    pub fn prometheus_snapshot(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP dramstack_windows_total Sample windows published\n");
        out.push_str("# TYPE dramstack_windows_total counter\n");
        out.push_str(&format!("dramstack_windows_total {}\n", self.windows));

        // Aggregate over everything retained (buckets plus the pending
        // partial bucket) — downsampling conserves all of these.
        let mut agg: Option<TimeSample> = None;
        for s in self.series.buckets().iter().chain(self.series.pending()) {
            match &mut agg {
                Some(a) => {
                    use dramstack_obs::WindowMerge;
                    a.merge_window(s);
                }
                None => agg = Some(s.clone()),
            }
        }
        if let Some(a) = agg {
            out.push_str("# HELP dramstack_bw_share Aggregate bandwidth-stack share of peak\n");
            out.push_str("# TYPE dramstack_bw_share gauge\n");
            for c in BwComponent::ALL {
                out.push_str(&format!(
                    "dramstack_bw_share{{component=\"{}\"}} {:.6}\n",
                    c.label(),
                    a.bandwidth.fraction(c)
                ));
            }
            out.push_str("# HELP dramstack_achieved_gbps Aggregate achieved bandwidth\n");
            out.push_str("# TYPE dramstack_achieved_gbps gauge\n");
            out.push_str(&format!(
                "dramstack_achieved_gbps {:.6}\n",
                a.bandwidth.achieved_gbps()
            ));
            out.push_str("# HELP dramstack_lat_ns Aggregate latency-stack component, ns\n");
            out.push_str("# TYPE dramstack_lat_ns gauge\n");
            for c in LatComponent::ALL {
                out.push_str(&format!(
                    "dramstack_lat_ns{{component=\"{}\"}} {:.6}\n",
                    c.label(),
                    a.latency.ns(c)
                ));
            }
            out.push_str("# HELP dramstack_reads_total Reads completed in retained windows\n");
            out.push_str("# TYPE dramstack_reads_total counter\n");
            out.push_str(&format!("dramstack_reads_total {}\n", a.latency.reads));
        }
        if let Some(obs) = &self.last {
            out.push_str("# HELP dramstack_row_hit_rate Last-window row-buffer hit rate\n");
            out.push_str("# TYPE dramstack_row_hit_rate gauge\n");
            out.push_str(&format!("dramstack_row_hit_rate {:.6}\n", obs.row_hit_rate));
            out.push_str("# HELP dramstack_read_queue_depth Last-window mean read-queue depth\n");
            out.push_str("# TYPE dramstack_read_queue_depth gauge\n");
            out.push_str(&format!(
                "dramstack_read_queue_depth {:.6}\n",
                obs.mean_read_queue_depth
            ));
        }
        out.push_str("# HELP dramstack_bottleneck Current sustained bottleneck (1 = active)\n");
        out.push_str("# TYPE dramstack_bottleneck gauge\n");
        for c in BottleneckClass::ALL {
            let active = self.advisor.current() == Some(c);
            out.push_str(&format!(
                "dramstack_bottleneck{{class=\"{}\"}} {}\n",
                c.name(),
                u8::from(active)
            ));
        }
        out
    }

    fn write_prometheus(&mut self) {
        let snap = self.prometheus_snapshot();
        if let Some(w) = &mut self.prom {
            let _ = w.write_all(snap.as_bytes());
            let _ = w.flush();
        }
    }

    /// End of run: final Prometheus snapshot, flush JSONL, finish sinks.
    pub(crate) fn finish_run(&mut self) {
        self.write_prometheus();
        if let Some(w) = &mut self.jsonl {
            let _ = w.flush();
        }
        for sink in &mut self.sinks {
            sink.finish();
        }
    }
}

/// One JSON-lines record: flat scalars plus labeled share objects, so
/// `jq` consumers need no knowledge of the stack component order.
pub fn jsonl_record(
    index: u64,
    sample: &TimeSample,
    obs: &WindowObservation,
    current: Option<BottleneckClass>,
) -> String {
    use serde::Value;
    let bw: Vec<(String, Value)> = BwComponent::ALL
        .iter()
        .map(|&c| {
            (
                c.label().to_string(),
                Value::Float(sample.bandwidth.fraction(c)),
            )
        })
        .collect();
    let lat: Vec<(String, Value)> = LatComponent::ALL
        .iter()
        .map(|&c| (c.label().to_string(), Value::Float(sample.latency.ns(c))))
        .collect();
    let record = Value::Map(vec![
        ("window".into(), Value::Int(i128::from(index))),
        (
            "start_cycle".into(),
            Value::Int(i128::from(sample.start_cycle)),
        ),
        ("cycles".into(), Value::Int(i128::from(sample.cycles))),
        (
            "achieved_gbps".into(),
            Value::Float(sample.bandwidth.achieved_gbps()),
        ),
        (
            "peak_gbps".into(),
            Value::Float(sample.bandwidth.peak_gbps()),
        ),
        ("bw_share".into(), Value::Map(bw)),
        ("lat_ns".into(), Value::Map(lat)),
        ("reads".into(), Value::Int(i128::from(sample.latency.reads))),
        ("row_hit_rate".into(), Value::Float(obs.row_hit_rate)),
        (
            "read_queue_depth".into(),
            Value::Float(obs.mean_read_queue_depth),
        ),
        ("drain_occupancy".into(), Value::Float(obs.drain_occupancy)),
        (
            "bottleneck".into(),
            match current {
                Some(c) => Value::Str(c.name().to_string()),
                None => Value::Null,
            },
        ),
    ]);
    serde_json::to_string(&record).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A Write that appends into a shared buffer the test can read back.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample(start: u64) -> TimeSample {
        use dramstack_dram::{BurstKind, CycleView};
        let mut s = dramstack_core::StackSampler::new(16, 19.2, 0.8333, 100);
        let mut busy = CycleView::idle(16);
        busy.bus = Some(BurstKind::Read);
        for _ in 0..100 {
            s.account(&busy);
        }
        let mut out = s.finish().remove(0);
        out.start_cycle = start;
        out
    }

    #[test]
    fn jsonl_stream_is_one_valid_object_per_window() {
        let buf = Shared::default();
        let mut t = Telemetry::new(TelemetryConfig::default()).with_jsonl(Box::new(buf.clone()));
        for i in 0..5 {
            t.publish(&sample(i * 100));
        }
        t.finish_run();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (i, l) in lines.iter().enumerate() {
            let v: serde::Value = serde_json::from_str(l).expect("valid JSON line");
            assert_eq!(
                v.get("window").and_then(serde::Value::as_u64),
                Some(i as u64)
            );
            let read_share = v
                .get("bw_share")
                .and_then(|m| m.get("read"))
                .and_then(serde::Value::as_f64)
                .expect("bw_share.read present");
            assert!(read_share > 0.9);
            assert_eq!(v.get("cycles").and_then(serde::Value::as_u64), Some(100));
        }
    }

    #[test]
    fn prometheus_snapshot_has_all_series() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        for i in 0..3 {
            t.publish(&sample(i * 100));
        }
        let snap = t.prometheus_snapshot();
        assert!(snap.contains("dramstack_windows_total 3"));
        for c in BwComponent::ALL {
            assert!(
                snap.contains(&format!(
                    "dramstack_bw_share{{component=\"{}\"}}",
                    c.label()
                )),
                "missing {c:?} in:\n{snap}"
            );
        }
        for c in LatComponent::ALL {
            assert!(snap.contains(&format!("dramstack_lat_ns{{component=\"{}\"}}", c.label())));
        }
        assert!(snap.contains("dramstack_bottleneck{class=\"saturated\"}"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for l in snap.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = l.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad exposition line: {l}");
        }
    }

    #[test]
    fn periodic_prometheus_writes_fire_every_n_windows() {
        let buf = Shared::default();
        let cfg = TelemetryConfig {
            prom_every_windows: 2,
            ..TelemetryConfig::default()
        };
        let mut t = Telemetry::new(cfg).with_prometheus(Box::new(buf.clone()));
        for i in 0..4 {
            t.publish(&sample(i * 100));
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        // Two periodic snapshots (after windows 2 and 4).
        assert_eq!(text.matches("dramstack_windows_total 2").count(), 1);
        assert_eq!(text.matches("dramstack_windows_total 4").count(), 1);
    }

    #[test]
    fn series_is_bounded_and_conserves_cycles() {
        let cfg = TelemetryConfig {
            series_capacity: 8,
            ..TelemetryConfig::default()
        };
        let mut t = Telemetry::new(cfg);
        for i in 0..100 {
            t.publish(&sample(i * 100));
        }
        assert!(t.series().len() <= 8);
        assert_eq!(t.series().total_pushed(), 100);
        let cycles: u64 = t
            .series()
            .buckets()
            .iter()
            .chain(t.series().pending())
            .map(|s| s.cycles)
            .sum();
        assert_eq!(cycles, 100 * 100);
    }

    #[test]
    fn sinks_see_every_window_and_finish() {
        struct Probe(Arc<Mutex<(u64, bool)>>);
        impl TelemetrySink for Probe {
            fn window(
                &mut self,
                _i: u64,
                _s: &TimeSample,
                _o: &WindowObservation,
                _c: Option<BottleneckClass>,
            ) {
                self.0.lock().unwrap().0 += 1;
            }
            fn finish(&mut self) {
                self.0.lock().unwrap().1 = true;
            }
        }
        let state = Arc::new(Mutex::new((0, false)));
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.add_sink(Box::new(Probe(Arc::clone(&state))));
        for i in 0..7 {
            t.publish(&sample(i * 100));
        }
        t.finish_run();
        let s = state.lock().unwrap();
        assert_eq!(s.0, 7);
        assert!(s.1);
    }

    #[test]
    fn saturated_windows_surface_a_live_diagnosis() {
        // All-read windows are fully saturated; after the hysteresis the
        // advisor's live classification must say so.
        let mut t = Telemetry::new(TelemetryConfig::default());
        for i in 0..6 {
            t.publish(&sample(i * 100));
        }
        assert_eq!(t.current_diagnosis(), Some(BottleneckClass::Saturated));
        assert!(t.last_observation().is_some());
    }
}
