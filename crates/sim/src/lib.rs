//! Full-system closed-loop simulator and the paper's experiment harness.
//!
//! Wires together the workspace crates — cores and caches
//! (`dramstack-cpu`), memory controller (`dramstack-memctrl`), the DRAM
//! device (`dramstack-dram`) and the stack accounting (`dramstack-core`) —
//! into one cycle-driven simulation, plus ready-made drivers for every
//! figure of the paper in [`experiments`].
//!
//! # Example
//!
//! ```
//! use dramstack_sim::{Simulator, SystemConfig};
//! use dramstack_workloads::SyntheticPattern;
//!
//! let cfg = SystemConfig::paper_default(1);
//! let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
//! let report = sim.run_for_us(20.0);
//! assert!(report.achieved_gbps() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod binary;
pub mod campaign;
pub mod ckpt;
mod config;
pub mod experiments;
pub mod jobs;
pub mod parallel;
pub mod replay;
mod report;
mod snapshot;
mod system;
pub mod telemetry;

pub use campaign::{job_key, Campaign, CampaignError};
pub use ckpt::{
    clear_interrupt, interrupt_signal, interrupted, request_interrupt, request_interrupt_signal,
    CheckpointChain, CheckpointWriter, SnapshotFormat,
};
pub use config::{ConfigError, SystemConfig};
pub use experiments::SweepCheckpointing;
pub use jobs::{run_job, JobCancel, JobCheckpoint, JobError, JobOptions, JobSpec};
pub use report::{diff_reports, load_report, ReportLoadError, SimReport};
pub use snapshot::{
    Snapshot, SnapshotDelta, SnapshotError, SNAPSHOT_BINARY_VERSION, SNAPSHOT_FORMAT_VERSION,
};
pub use system::Simulator;
pub use telemetry::{Telemetry, TelemetryConfig, TelemetrySink};
